"""Golden-trace regression tests against the committed figure CSVs.

``results/figures/*.csv`` are the artefacts the paper-comparison tables in
EXPERIMENTS.md were written from.  These tests re-run small slices of the
configurations behind two of them and compare against the committed
numbers, so a refactor that silently drifts the reproduction's results
fails here rather than in a future figure regeneration.

The committed artefacts were produced by the quick-scale benchmark
configuration: sweeps at ``sim_time=15 s`` over seeds 1–3, cwnd traces at
``window_=32, sim_time=10 s, seed=1`` (see ``benchmarks/``).  Tolerances
are the CSVs' own rounding (3–6 decimal places) plus a hair of float
slack — the simulator is deterministic, so anything beyond that is drift.
"""

from pathlib import Path

import pytest

from repro.experiments import (
    ScenarioConfig,
    SweepConfig,
    fig_cwnd_traces,
    read_multi_series_csv,
    read_sweep_csv,
    run_chain,
)

FIGURES = Path(__file__).resolve().parents[2] / "results" / "figures"

GOLDEN_SWEEP = FIGURES / "fig5.8_sweep_w4.csv"
GOLDEN_TRACES = FIGURES / "fig5_cwnd_traces_4hop.csv"

#: Configuration the committed quick-scale sweep artefacts were run with.
SWEEP_CONFIG = SweepConfig(hops=(4, 8, 16), seeds=(1, 2, 3), sim_time=15.0)


def golden(path):
    if not path.exists():  # pragma: no cover - partial checkouts only
        pytest.skip(f"golden artefact {path.name} not present")
    return path


@pytest.mark.parametrize("variant", ["muzha", "newreno"])
def test_sweep_goodput_matches_committed_fig5_8(variant):
    """Re-run the window_=4, 4-hop grid point behind Fig 5.8 and compare
    every aggregated metric against the committed CSV."""
    sweep = read_sweep_csv(golden(GOLDEN_SWEEP))
    assert sweep.window == 4
    point = sweep.points[(variant, 4)]
    assert point.samples == len(SWEEP_CONFIG.seeds)

    goodputs, retransmits, timeouts = [], [], []
    for seed in SWEEP_CONFIG.seeds:
        config = ScenarioConfig(
            sim_time=SWEEP_CONFIG.sim_time, seed=seed, window=sweep.window
        )
        flow = run_chain(4, [variant], config=config).flows[0]
        goodputs.append(flow.goodput_kbps)
        retransmits.append(float(flow.retransmits))
        timeouts.append(float(flow.timeouts))

    mean = sum(goodputs) / len(goodputs)
    assert mean == pytest.approx(point.goodput_kbps, abs=0.01), (
        f"{variant}: goodput drifted from committed Fig 5.8 "
        f"({mean:.3f} vs {point.goodput_kbps:.3f} kbps)"
    )
    assert sum(retransmits) / len(retransmits) == pytest.approx(
        point.retransmits, abs=0.01
    )
    assert sum(timeouts) / len(timeouts) == pytest.approx(point.timeouts, abs=0.01)


def test_sweep_artefact_is_internally_consistent():
    """The committed grid has every (variant, hops) point, positive
    goodput, and goodput falling monotonically with hop count."""
    sweep = read_sweep_csv(golden(GOLDEN_SWEEP))
    for variant in sweep.variants:
        series = sweep.goodput_series(variant)
        assert len(series) == len(sweep.hops)
        assert all(goodput > 0 for _, goodput in series)
        assert series == sorted(series, key=lambda p: -p[1]), (
            f"{variant}: committed goodput is not monotone in hops"
        )


@pytest.mark.parametrize("variant", ["muzha", "vegas"])
def test_cwnd_trace_matches_committed_4hop_figure(variant):
    """Re-run the Figs 5.2–5.7 single-flow trace on the 4-hop chain and
    compare the whole committed time series point-by-point."""
    committed = read_multi_series_csv(golden(GOLDEN_TRACES))
    assert variant in committed

    traces = fig_cwnd_traces(4, variants=(variant,), window=32,
                             sim_time=10.0, seed=1)
    fresh = traces[variant]
    want = committed[variant]
    assert len(fresh) == len(want), (
        f"{variant}: trace has {len(fresh)} window changes, committed figure "
        f"has {len(want)}"
    )
    for (t_new, v_new), (t_old, v_old) in zip(fresh, want):
        assert t_new == pytest.approx(t_old, abs=2e-6)
        assert v_new == pytest.approx(v_old, abs=2e-6)


def test_cwnd_trace_artefact_has_all_paper_variants():
    committed = read_multi_series_csv(golden(GOLDEN_TRACES))
    assert set(committed) == {"muzha", "newreno", "sack", "vegas"}
    for variant, series in committed.items():
        assert series[0][1] == pytest.approx(1.0), (
            f"{variant}: committed trace does not start at cwnd=1"
        )
