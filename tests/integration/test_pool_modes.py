"""Execution-backend equivalence for the campaign engine.

The warm-worker pool (PR 5) must be a pure performance change: for the
same grid and base seed, the ``warm``, ``per-attempt``, and ``inproc``
backends have to produce byte-identical results — same canonical metric
bytes per (scenario, replication), same campaign fingerprint — because
every unit's seed is derived in ``plan_campaign`` before dispatch, making
worker assignment, batching, and completion order invisible.

That contract is checked twice: on a clean grid and on a grid running
under an injected fault plan (a relay crash mid-transfer), since fault
injection exercises the RNG-heavy recovery paths where hidden
cross-worker state would first show up.  Finally, ``verify_manifest``
must replay pool-produced manifests just as well as in-process ones.
"""

import pytest

from repro.experiments import (
    ScenarioConfig,
    chain_grid,
    run_campaign,
    verify_manifest,
)
from repro.faults import FaultEvent, FaultPlan

POOL_MODES = ("inproc", "per-attempt", "warm")


def clean_grid():
    config = ScenarioConfig(sim_time=1.0, window=4)
    return chain_grid(["muzha", "newreno"], [2, 3], config=config)


def faulted_grid():
    plan = FaultPlan(events=(
        FaultEvent(time=0.3, kind="node_crash", node=1, duration=0.3),
    ))
    config = ScenarioConfig(sim_time=1.0, window=4, faults=plan)
    return chain_grid(["muzha", "newreno"], [2], config=config)


def by_identity(result):
    return {
        (r.run.scenario, r.run.replication): r.metrics_bytes()
        for r in result.records
    }


@pytest.fixture(scope="module")
def inproc_clean():
    return run_campaign(clean_grid(), replications=2, jobs=1, pool_mode="inproc")


@pytest.fixture(scope="module")
def inproc_faulted():
    return run_campaign(faulted_grid(), replications=2, jobs=1, pool_mode="inproc")


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt"])
def test_pool_modes_are_byte_identical_on_a_clean_grid(inproc_clean, pool_mode):
    pooled = run_campaign(
        clean_grid(), replications=2, jobs=2, pool_mode=pool_mode
    )
    assert pooled.complete
    assert by_identity(pooled) == by_identity(inproc_clean)
    assert pooled.fingerprint() == inproc_clean.fingerprint()


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt"])
def test_pool_modes_are_byte_identical_under_a_fault_plan(
    inproc_faulted, pool_mode
):
    pooled = run_campaign(
        faulted_grid(), replications=2, jobs=2, pool_mode=pool_mode
    )
    assert pooled.complete
    assert by_identity(pooled) == by_identity(inproc_faulted)
    assert pooled.fingerprint() == inproc_faulted.fingerprint()


def test_warm_pool_manifests_replay_via_verify_manifest(inproc_clean):
    """Provenance manifests from warm workers pass the strong replay check,
    and carry the same result digest the in-process backend records."""
    pooled = run_campaign(clean_grid(), replications=2, jobs=2, pool_mode="warm")
    record = pooled.records[0]
    assert record.manifest is not None
    assert verify_manifest(record.manifest)

    inproc_digests = {
        (r.run.scenario, r.run.replication): r.manifest["result_digest"]
        for r in inproc_clean.records
    }
    for r in pooled.records:
        assert r.manifest["result_digest"] == (
            inproc_digests[(r.run.scenario, r.run.replication)]
        )
