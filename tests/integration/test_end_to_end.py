"""Integration tests: full stack (PHY + MAC + routing + TCP) end to end."""

import pytest

from repro.experiments import ScenarioConfig, run_chain
from repro.routing import install_aodv_routing, install_static_routing
from repro.topology import build_chain
from repro.traffic import start_ftp
from repro.transport import known_variants


@pytest.mark.parametrize("variant", ["tahoe", "reno", "newreno", "sack", "vegas", "muzha"])
def test_every_variant_moves_data_over_a_chain(variant):
    result = run_chain(3, [variant], config=ScenarioConfig(sim_time=8.0, seed=1))
    flow = result.flows[0]
    assert flow.delivered_packets > 20, f"{variant} barely moved data"
    assert flow.goodput_kbps > 50.0


@pytest.mark.parametrize("routing", ["static", "aodv"])
def test_routing_choices_both_work(routing):
    result = run_chain(
        4, ["newreno"], config=ScenarioConfig(sim_time=8.0, seed=2, routing=routing)
    )
    assert result.flows[0].goodput_kbps > 50.0


def test_longer_chains_deliver_less(seed=1):
    """The headline monotonicity of Figs 5.8-5.10."""
    goodputs = []
    for hops in (2, 8, 16):
        result = run_chain(hops, ["newreno"], config=ScenarioConfig(sim_time=10.0, seed=seed))
        goodputs.append(result.flows[0].goodput_kbps)
    assert goodputs[0] > goodputs[1] > goodputs[2]


def test_deliveries_are_in_order_and_complete():
    net = build_chain(3, seed=3)
    install_static_routing(net.nodes, net.channel)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", max_packets=50)
    net.sim.run(until=20.0)
    assert flow.sink.delivered_packets == 50
    assert flow.sink.rcv_nxt == 50
    assert flow.sender.finished


def test_two_flows_share_a_chain():
    result = run_chain(
        3, ["newreno", "newreno"], config=ScenarioConfig(sim_time=10.0, seed=1)
    )
    for flow in result.flows:
        assert flow.goodput_kbps > 20.0
    assert result.fairness > 0.5


def test_determinism_same_seed_same_results():
    a = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=6.0, seed=7))
    b = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=6.0, seed=7))
    assert a.flows[0].goodput_kbps == b.flows[0].goodput_kbps
    assert a.flows[0].cwnd_trace == b.flows[0].cwnd_trace


def test_different_seeds_differ():
    a = run_chain(4, ["newreno"], config=ScenarioConfig(sim_time=6.0, seed=1))
    b = run_chain(4, ["newreno"], config=ScenarioConfig(sim_time=6.0, seed=2))
    assert a.flows[0].cwnd_trace != b.flows[0].cwnd_trace


def test_aodv_discovery_then_data_flows_quickly():
    net = build_chain(6, seed=4)
    protocols = install_aodv_routing(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno")
    net.sim.run(until=2.0)
    assert flow.sink.delivered_packets > 5
    assert protocols[0].next_hop(6) == 1


def test_mac_level_accounting_consistent():
    net = build_chain(2, seed=5)
    install_static_routing(net.nodes, net.channel)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", max_packets=30)
    net.sim.run(until=20.0)
    src_mac = net.nodes[0].mac.counters
    relay = net.nodes[1]
    # every TCP data packet the source put on the air was either delivered
    # (and forwarded) or dropped at the MAC
    assert src_mac.data_tx >= 30
    assert relay.counters.forwarded >= 30
