"""Policy-tagged campaigns: cacheability, determinism, and manifest replay.

A ``ScenarioConfig`` that names an advice policy must flow through the
campaign engine exactly like any other config knob: the policy choice is
part of the scenario identity (different policies ⇒ different digests),
two runs of the same policy-tagged grid are byte-identical, and
``verify_manifest`` can replay a policy-tagged record from its manifest
alone — the acceptance check for the policy layer's provenance story.
"""

from repro.experiments import (
    ScenarioConfig,
    chain_grid,
    run_campaign,
    verify_manifest,
)


def grid(policy, policy_params=None):
    config = ScenarioConfig(
        sim_time=1.0, window=4, policy=policy, policy_params=policy_params
    )
    return chain_grid(["muzha"], [2], config=config)


def test_policy_tagged_manifest_replays_via_verify_manifest():
    result = run_campaign(grid("hysteresis"), replications=1, jobs=1)
    assert result.complete
    record = result.records[0]
    assert record.manifest is not None
    assert record.manifest["config"]["policy"] == "hysteresis"
    assert verify_manifest(record.manifest)


def test_policy_tagged_campaign_is_reproducible():
    first = run_campaign(grid("hysteresis"), replications=2, jobs=1)
    second = run_campaign(grid("hysteresis"), replications=2, jobs=1)
    assert first.fingerprint() == second.fingerprint()


def test_policy_choice_is_part_of_the_scenario_identity():
    fuzzy = run_campaign(grid("fuzzy"), replications=1, jobs=1)
    hysteresis = run_campaign(grid("hysteresis"), replications=1, jobs=1)
    assert fuzzy.fingerprint() != hysteresis.fingerprint()


def test_policy_params_reach_the_routers():
    """Custom hysteresis parameters survive the campaign config round-trip
    (an impossible sustain threshold keeps every router pinned GREEN, so
    the per-state metrics show only GREEN samples)."""
    tuned = run_campaign(
        grid(
            "hysteresis",
            {
                "queue_yellow": 1e9,
                "queue_red": 1e9,
                "occ_yellow": 2.0,
                "occ_soft_red": 2.0,
            },
        ),
        replications=1,
        jobs=1,
    )
    snapshot = tuned.records[0].metrics["metrics"]
    series = snapshot["counters"]["drai.state_samples"]
    states = {label.split("state=")[1] for label in series}
    assert states == {"GREEN"}
