"""Graceful shutdown and resume under real signals.

A mid-flight ``repro-muzha campaign`` receiving SIGTERM must drain, leave
no orphan worker processes behind, write a valid resumable journal, exit
with the distinct "interrupted, resumable" status (3) — and a subsequent
``--resume`` must execute exactly the remainder and land on a fingerprint
byte-identical to an uninterrupted run.  Exercised against all three pool
backends.

Timing is made deterministic with the :data:`BARRIER_ENV` hook: the
worker executing the chosen unit touches ``<base>.ready`` and blocks
until ``<base>.go`` appears, giving the test a guaranteed mid-campaign
moment to deliver the signal at.  For the pooled backends the barrier is
never released — the drain deadline expires and the blocked units become
the remainder; for ``inproc`` (where the barrier blocks the coordinator
itself) it is released right after the signal so the drain can finish.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments import BARRIER_ENV, replay_journal
from repro.obs.validate import validate_journal_file

SRC = str(Path(repro.__file__).resolve().parents[1])

#: 2 scenarios x 2 replications = 4 units, small enough to stay fast.
TOTAL_UNITS = 4
BASE_ARGS = [
    "--variants", "newreno", "--hops", "2", "3", "--replications", "2",
    "--time", "0.5", "--window", "4", "--seed", "7", "--quiet",
]

#: (pool_mode, jobs, barrier unit index).  inproc executes in index order,
#: so the barrier sits on unit 1 and unit 0 is already journaled by the
#: time ``.ready`` appears; the pooled backends block unit 0 on one worker
#: while the other worker makes progress.
BACKENDS = [("warm", 2, 0), ("per-attempt", 2, 0), ("inproc", 1, 1)]


def campaign_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def campaign_cmd(cache, pool_mode, jobs, *extra):
    return [
        sys.executable, "-m", "repro.cli", "campaign", *BASE_ARGS,
        "--pool-mode", pool_mode, "--jobs", str(jobs),
        "--cache-dir", str(cache), *extra,
    ]


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


def journal_has_a_done_record(path):
    if not path.is_file():
        return False
    for line in path.read_text().splitlines():
        try:
            if json.loads(line).get("kind") == "done":
                return True
        except ValueError:
            continue
    return False


def pids_mentioning(token):
    """Live processes whose cmdline contains ``token`` (via /proc)."""
    token = token.encode()
    found = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue  # raced with process exit
        if token in cmdline:
            found.append(int(entry.name))
    return found


def parse_fingerprint(stdout):
    match = re.search(r"campaign fingerprint: (\S+)", stdout)
    assert match, f"no fingerprint in output:\n{stdout}"
    return match.group(1)


def parse_executed(stdout):
    match = re.search(r"(\d+) simulated, (\d+) cache hits", stdout)
    assert match, f"no execution summary in output:\n{stdout}"
    return int(match.group(1)), int(match.group(2))


@pytest.fixture(scope="module")
def reference_fingerprint(tmp_path_factory):
    """Fingerprint of the same campaign run uninterrupted."""
    tmp = tmp_path_factory.mktemp("reference")
    proc = subprocess.run(
        campaign_cmd(tmp / "cache", "inproc", 1),
        env=campaign_env(), capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return parse_fingerprint(proc.stdout)


@pytest.mark.parametrize("pool_mode,jobs,barrier_index", BACKENDS,
                         ids=[b[0] for b in BACKENDS])
def test_sigterm_mid_campaign_drains_and_resumes_byte_identically(
    tmp_path, pool_mode, jobs, barrier_index, reference_fingerprint
):
    cache = tmp_path / "cache"
    journal = tmp_path / "run.journal"
    barrier = tmp_path / "barrier"

    proc = subprocess.Popen(
        campaign_cmd(cache, pool_mode, jobs,
                     "--journal", str(journal), "--drain-timeout", "2.0"),
        env=campaign_env(**{BARRIER_ENV: f"{barrier}:{barrier_index}"}),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        # A worker is provably mid-unit, and at least one other unit has
        # already been journaled done: the signal lands mid-campaign.
        wait_for(lambda: (barrier.parent / f"{barrier.name}.ready").exists(),
                 90, "the barrier unit to start")
        wait_for(lambda: journal_has_a_done_record(journal),
                 90, "a journaled completion")
        proc.send_signal(signal.SIGTERM)
        if pool_mode == "inproc":
            # The barrier blocks the coordinator itself: release it so the
            # drain can run to the loop's shutdown check.
            (barrier.parent / f"{barrier.name}.go").touch()
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # Distinct "interrupted, resumable" exit status and operator hint.
    assert proc.returncode == 3, f"stdout:\n{stdout}\nstderr:\n{stderr}"
    assert "interrupted by SIGTERM" in stdout
    assert f"resumable: re-run with --resume {journal}" in stdout

    # No orphan workers: nothing is left alive referencing this campaign.
    wait_for(lambda: not pids_mentioning(str(tmp_path)),
             10, "orphaned worker processes to exit")

    # The journal survived the interruption schema-valid and resumable.
    assert validate_journal_file(journal) == []
    replay = replay_journal(journal)
    assert replay.interrupted
    assert replay.failed == {}  # drain-killed units are remainder, not failures
    completed = len(replay.completed)
    assert 0 < completed < TOTAL_UNITS
    remainder = replay.remaining
    assert remainder == TOTAL_UNITS - completed

    # Resume executes exactly the remainder and matches the uninterrupted
    # fingerprint byte for byte.
    resumed = subprocess.run(
        campaign_cmd(cache, pool_mode, jobs, "--resume", str(journal)),
        env=campaign_env(), capture_output=True, text=True, timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert f"{completed} journaled completions" in resumed.stdout
    executed, cache_hits = parse_executed(resumed.stdout)
    assert executed == remainder
    assert cache_hits == completed
    assert parse_fingerprint(resumed.stdout) == reference_fingerprint

    # The resumed journal closes the loop: a second generation, complete.
    assert validate_journal_file(journal) == []
    final = replay_journal(journal)
    assert final.generations == 2
    assert not final.interrupted
    assert final.remaining == 0
