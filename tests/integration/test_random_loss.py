"""Integration tests for random wireless loss (§4.7's scenario)."""

import pytest

from repro.core import install_drai
from repro.experiments import ScenarioConfig, run_chain
from repro.phy import GilbertElliott, PacketErrorRate
from repro.routing import install_static_routing
from repro.topology import build_chain
from repro.traffic import start_ftp


def test_per_frame_loss_reduces_throughput_monotonically():
    goodputs = []
    for loss in (0.0, 0.05, 0.15):
        config = ScenarioConfig(sim_time=10.0, seed=1, window=8, packet_error_rate=loss)
        goodputs.append(run_chain(3, ["newreno"], config=config).flows[0].goodput_kbps)
    assert goodputs[0] > goodputs[1] > goodputs[2]


def test_mac_arq_hides_mild_loss_from_tcp():
    """A 2% frame loss is mostly absorbed by MAC retries: TCP-level
    retransmissions stay low while MAC retries climb."""
    net = build_chain(2, seed=1, error_model=PacketErrorRate(0.02))
    install_static_routing(net.nodes, net.channel)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=4)
    net.sim.run(until=10.0)
    mac_retries = sum(n.mac.counters.retries for n in net.nodes)
    assert mac_retries > 10
    assert flow.sender.stats.retransmits <= mac_retries


def test_heavy_loss_reaches_tcp_and_muzha_classifies_it():
    net = build_chain(3, seed=2, error_model=PacketErrorRate(0.12))
    install_static_routing(net.nodes, net.channel)
    install_drai(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=30.0)
    sender = flow.sender
    events = sender.muzha.random_loss_events + sender.muzha.marked_loss_events
    assert events > 0, "heavy loss should reach the TCP layer"
    # the chain's queues stay empty under random loss, so the classifier
    # must attribute the losses to the medium, not congestion
    assert sender.muzha.random_loss_events >= sender.muzha.marked_loss_events


def test_bursty_loss_model_in_full_stack():
    net = build_chain(
        2, seed=3,
        error_model=GilbertElliott(ber_good=0.0, ber_bad=1e-4, mean_good=1.0, mean_bad=0.2),
    )
    install_static_routing(net.nodes, net.channel)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=4)
    net.sim.run(until=10.0)
    assert flow.sink.delivered_packets > 50  # flow survives the bursts
    assert sum(n.mac.counters.rx_errors for n in net.nodes) > 0


def test_muzha_beats_newreno_under_random_loss():
    """The §4.7 headline, as a hard integration guarantee."""
    config = ScenarioConfig(sim_time=20.0, seed=4, window=8, packet_error_rate=0.05)
    muzha = run_chain(4, ["muzha"], config=config).flows[0].goodput_kbps
    newreno = run_chain(4, ["newreno"], config=config).flows[0].goodput_kbps
    assert muzha > newreno
