"""Chaos acceptance suite: injected faults against full protocol stacks.

The contracts under test:

* graceful degradation — a node dying mid-transmission must not raise from
  stale MAC/PHY/AODV events, and the surviving nodes must detect the break
  (RERR) and re-establish the route once the node restarts;
* determinism — a fault run is as replayable as a clean one: same seed +
  same plan ⇒ byte-identical results, and ``verify_manifest`` holds;
* the paper's protocols survive chaos — Muzha and the baselines all keep
  delivering across crash/blackout scenarios.
"""

import pytest

from repro.experiments import (
    RunSpec,
    ScenarioConfig,
    execute_run,
    run_chain,
    verify_manifest,
)
from repro.experiments.config import stable_digest
from repro.faults import FaultEvent, FaultPlan, RandomFaults, install_faults
from repro.routing import install_aodv_routing
from repro.topology import build_chain
from repro.traffic import start_ftp


def crash_plan(node=1, at=2.0, downtime=2.0):
    return FaultPlan(events=(
        FaultEvent(time=at, kind="node_crash", node=node, duration=downtime),
    ))


def blackout_plan(a=0, b=1, at=2.0, duration=1.0):
    return FaultPlan(events=(
        FaultEvent(time=at, kind="link_blackout", node=a, peer=b,
                   duration=duration),
    ))


# ---------------------------------------------------------------------------
# Node crash: graceful degradation and recovery


def test_relay_crash_rerr_heal_and_tcp_resume():
    """The only relay of a 2-hop chain dies mid-transfer and comes back.

    While it is down the chain is partitioned: the sender's MAC exhausts its
    retries, AODV confirms the link loss and emits a RERR, and the TCP flow
    stalls.  After the restart, discovery must find the (rebooted) relay
    again and the flow must deliver new data — all without a single stale
    event blowing up the run.
    """
    network = build_chain(2, seed=3)
    protocols = install_aodv_routing(network.nodes, network.sim)
    injector = install_faults(network, crash_plan(node=1, at=2.0, downtime=2.0))
    flow = start_ftp(network.sim, network.nodes[0], network.nodes[2],
                     variant="newreno", window=4)

    network.sim.run(until=2.0)
    delivered_before_crash = flow.sink.delivered_packets
    assert delivered_before_crash > 5, "flow never established"

    network.sim.run(until=4.0)  # the outage window
    relay = network.node(1)
    assert relay.counters.crashes == 1
    assert protocols[0].counters.link_failures >= 1
    assert sum(p.aodv.rerr_tx for p in protocols.values()) >= 1, \
        "no RERR for the dead next hop"

    network.sim.run(until=15.0)
    assert injector.counters.restarts == 1
    assert not relay.down
    assert protocols[0].next_hop(2) == 1, "route never healed"
    assert flow.sink.delivered_packets > delivered_before_crash + 20, \
        "TCP flow did not resume after the route healed"


def test_crash_mid_discovery_leaves_no_stale_timers():
    """Crashing the discovery originator while its RREQ timer is pending
    must stop the timer: a dead node rebroadcasting RREQs (or firing any
    event at all) is the classic stale-timer crash this guards against."""
    network = build_chain(2, seed=4)
    protocols = install_aodv_routing(network.nodes, network.sim)
    # Crash the source 50 ms in: route discovery for the first data packet
    # is still in flight, so a PATH_DISCOVERY timer is pending.  No restart.
    plan = FaultPlan(events=(
        FaultEvent(time=0.05, kind="node_crash", node=0),
    ))
    install_faults(network, plan)
    start_ftp(network.sim, network.nodes[0], network.nodes[2],
              variant="newreno", window=4)
    network.sim.run(until=10.0)  # raises if any stale event fires
    assert network.node(0).down
    assert protocols[0]._pending == {}, "pending discovery survived the crash"
    # the dead node transmitted nothing after the crash
    assert network.node(0).counters.down_drops > 0


def test_crash_is_idempotent_and_overlap_safe():
    network = build_chain(2, seed=5)
    install_aodv_routing(network.nodes, network.sim)
    plan = FaultPlan(events=(
        FaultEvent(time=1.0, kind="node_crash", node=1, duration=3.0),
        FaultEvent(time=2.0, kind="node_crash", node=1, duration=0.5),
    ))
    injector = install_faults(network, plan)
    start_ftp(network.sim, network.nodes[0], network.nodes[2],
              variant="newreno", window=4)
    network.sim.run(until=10.0)
    # the overlapping crash collapsed into the first outage
    assert injector.counters.crashes == 1
    assert network.node(1).counters.crashes == 1
    assert not network.node(1).down


# ---------------------------------------------------------------------------
# Determinism under faults


@pytest.mark.parametrize("plan_builder", [crash_plan, blackout_plan])
def test_same_seed_fault_run_replays_byte_identically(plan_builder):
    config = ScenarioConfig(sim_time=8.0, seed=11, window=4,
                            faults=plan_builder())
    first = run_chain(2, ["newreno"], config=config)
    second = run_chain(2, ["newreno"], config=config)
    assert stable_digest(first.to_dict()) == stable_digest(second.to_dict())


def test_fault_manifest_verifies():
    config = ScenarioConfig(sim_time=6.0, seed=7, window=4,
                            faults=crash_plan(at=1.5, downtime=1.5))
    spec = RunSpec(kind="chain", hops=2, variants=("muzha",), config=config)
    result = execute_run(spec)
    assert result.manifest is not None
    assert spec.to_dict()["config"]["faults"] == (
        crash_plan(at=1.5, downtime=1.5).to_dict()
    )
    # replay from the manifest alone: the spec (fault plan included) rebuilds
    # the run and its result digest matches bit for bit
    assert verify_manifest(result.manifest)


def test_random_faults_differ_across_seeds_but_not_reruns():
    def digest(seed):
        plan = FaultPlan(random=RandomFaults(crashes=1, crash_downtime=1.0))
        config = ScenarioConfig(sim_time=6.0, seed=seed, window=4, faults=plan)
        return stable_digest(run_chain(3, ["newreno"], config=config).to_dict())

    assert digest(1) == digest(1)
    assert digest(1) != digest(2)


# ---------------------------------------------------------------------------
# Blackout and chaos acceptance across TCP variants


def test_blackout_stalls_then_recovers():
    network = build_chain(2, seed=6)
    install_aodv_routing(network.nodes, network.sim)
    injector = install_faults(network, blackout_plan(at=2.0, duration=1.0))
    flow = start_ftp(network.sim, network.nodes[0], network.nodes[2],
                     variant="newreno", window=4)
    network.sim.run(until=2.0)
    before = flow.sink.delivered_packets
    network.sim.run(until=12.0)
    assert injector.counters.blackouts == 1
    assert injector.counters.heals == 1
    assert flow.sink.delivered_packets > before + 20, \
        "flow did not recover from the blackout"


@pytest.mark.parametrize("variant", ["muzha", "newreno", "reno"])
def test_variants_survive_crash_and_blackout_chaos(variant):
    """The acceptance gate: every paper variant keeps delivering through a
    relay crash plus a link blackout, and the goodput stays positive."""
    plan = FaultPlan(events=(
        FaultEvent(time=2.0, kind="node_crash", node=1, duration=1.5),
        FaultEvent(time=6.0, kind="link_blackout", node=1, peer=2,
                   duration=1.0),
    ))
    config = ScenarioConfig(sim_time=12.0, seed=9, window=4, faults=plan)
    result = run_chain(2, [variant], config=config)
    flow = result.flows[0]
    assert flow.goodput_kbps > 0.0
    assert flow.delivered_packets > 30, (
        f"{variant} delivered only {flow.delivered_packets} packets "
        "across the chaos scenario"
    )
    assert result.link_failures >= 1  # the chaos actually bit


def test_muzha_goodput_comparable_to_newreno_under_chaos():
    """Muzha's router assist must not collapse under faults: its goodput
    stays within a sane band of NewReno's on the identical chaos run."""
    plan = crash_plan(node=1, at=3.0, downtime=1.5)

    def goodput(variant):
        config = ScenarioConfig(sim_time=12.0, seed=13, window=4, faults=plan)
        return run_chain(2, [variant], config=config).flows[0].goodput_kbps

    muzha, newreno = goodput("muzha"), goodput("newreno")
    assert muzha > 0 and newreno > 0
    assert muzha > 0.3 * newreno
