"""Integration tests for route failure and recovery (AODV + MAC feedback).

A diamond topology gives AODV an alternative path, so when one relay dies
mid-transfer the MAC's retry exhaustion must propagate up, invalidate the
route, and discovery must switch the flow to the surviving branch.
"""

import pytest

from repro.phy import Position
from repro.routing import install_aodv_routing
from repro.topology import make_network
from repro.traffic import start_ftp


def build_diamond(seed=1):
    """0 -(1|2)- 3: two parallel two-hop branches between the endpoints."""
    net = make_network(seed=seed)
    net.add_node(Position(0.0, 0.0))      # 0: source
    net.add_node(Position(240.0, 60.0))   # 1: upper relay
    net.add_node(Position(240.0, -60.0))  # 2: lower relay
    net.add_node(Position(480.0, 0.0))    # 3: destination
    return net


def test_diamond_connectivity():
    net = build_diamond()
    neighbors = {
        n.node_id: {p.node_id for p in net.channel.neighbors_of(n.radio)}
        for n in net.nodes
    }
    assert neighbors[0] == {1, 2}
    assert neighbors[3] == {1, 2}
    assert 3 not in neighbors[0]


def test_aodv_reroutes_around_dead_relay():
    net = build_diamond(seed=2)
    protocols = install_aodv_routing(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[3], variant="newreno", window=4)

    # Let the flow establish, then yank whichever relay it uses out of range.
    net.sim.run(until=3.0)
    delivered_before = flow.sink.delivered_packets
    assert delivered_before > 10
    first_hop = protocols[0].next_hop(3)
    assert first_hop in (1, 2)
    net.channel.move(net.node(first_hop).radio, Position(10_000.0, 10_000.0))

    net.sim.run(until=15.0)
    delivered_after = flow.sink.delivered_packets
    assert delivered_after > delivered_before + 20, "flow never recovered"
    # the route now uses the surviving relay
    assert protocols[0].next_hop(3) not in (None, first_hop)
    assert protocols[0].counters.link_failures >= 1


def test_chain_break_with_no_alternative_stalls_then_fails_discovery():
    from repro.topology import build_chain

    net = build_chain(2, seed=3)
    protocols = install_aodv_routing(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[2], variant="newreno", window=4)
    net.sim.run(until=2.0)
    assert flow.sink.delivered_packets > 0
    # remove the only relay: the destination becomes unreachable
    net.channel.move(net.nodes[1].radio, Position(10_000.0))
    net.sim.run(until=20.0)
    assert protocols[0].aodv.discovery_failures >= 1
    assert protocols[0].next_hop(2) is None


def test_next_hop_crash_mid_flight_emits_rerr_and_reroutes():
    """The active relay powers off (fault-injection ``crash()``) with frames
    in flight toward it.  The sender's MAC must run out of retries, AODV
    must confirm the loss, invalidate routes via the dead hop, and broadcast
    a RERR — and the dead node must never fire a stale timer or handle a
    stale event (any of those would raise and fail the run)."""
    net = build_diamond(seed=4)
    protocols = install_aodv_routing(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[3], variant="newreno", window=4)

    net.sim.run(until=3.0)
    delivered_before = flow.sink.delivered_packets
    assert delivered_before > 10
    first_hop = protocols[0].next_hop(3)
    assert first_hop in (1, 2)
    victim = net.node(first_hop)
    victim.crash()  # mid-simulation, frames to it still in the air

    net.sim.run(until=15.0)
    # AODV saw the break and told the neighbours.  (Which endpoint detects
    # it depends on who had frames in flight — often the ACK-sending sink,
    # whose RERR-triggered rediscovery then refreshes the sender's route.)
    assert sum(p.counters.link_failures for p in protocols.values()) >= 1
    assert sum(p.aodv.rerr_tx for p in protocols.values()) >= 1
    # the dead relay held pending state at crash time and wiped it
    assert protocols[first_hop]._pending == {}
    assert len(protocols[first_hop].table) == 0
    # the flow rerouted over the surviving branch and kept delivering
    assert protocols[0].next_hop(3) not in (None, first_hop)
    assert flow.sink.delivered_packets > delivered_before + 20
    # nothing was transmitted by (or delivered to) the corpse after death
    assert victim.down and victim.counters.crashes == 1
