"""Acceptance test for the observability layer (ISSUE PR 3).

The traced standard 4-hop chain must produce (a) a schema-valid NDJSON
trace, (b) a metrics snapshot with nonzero MAC/queue/TCP counters, and
(c) a manifest whose seed + config reproduce the run byte-identically.
"""

import json

import pytest

from repro.experiments import ScenarioConfig, run_chain, verify_manifest
from repro.obs import (
    FlightRecorder,
    NdjsonTraceSink,
    attach_run_probe,
    stable_digest,
    validate_manifest_file,
    validate_trace_file,
)


@pytest.fixture(scope="module")
def traced_chain(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("obs")
    trace_path = tmp_path / "chain4.ndjson"
    sink = NdjsonTraceSink(trace_path)
    captured = {}

    def instrument(network, flows):
        sink.attach(network.sim.trace)
        captured["recorder"] = FlightRecorder(
            network.sim.trace, dump_dir=tmp_path / "flight")
        captured["probe"] = attach_run_probe(network, flows, interval=0.5)

    config = ScenarioConfig(sim_time=5.0, seed=1)
    result = run_chain(4, ["muzha"], config=config, instrument=instrument)
    sink.detach()
    captured["recorder"].detach()
    manifest_path = tmp_path / "chain4.manifest.json"
    manifest_path.write_text(json.dumps(result.manifest, indent=2))
    return {
        "result": result,
        "config": config,
        "sink": sink,
        "trace_path": trace_path,
        "manifest_path": manifest_path,
        **captured,
    }


def test_trace_is_nonempty_and_schema_valid(traced_chain):
    assert traced_chain["sink"].records_written > 100
    assert validate_trace_file(traced_chain["trace_path"]) == []


def test_trace_covers_multiple_layers(traced_chain):
    counts = traced_chain["sink"].counts
    assert counts.get("mac.tx", 0) > 0
    assert counts.get("ifq.enqueue", 0) > 0
    assert counts.get("tcp.cwnd", 0) > 0
    assert counts.get("drai.sample", 0) > 0
    assert counts.get("probe.sample", 0) > 0


def test_metrics_snapshot_has_live_counters(traced_chain):
    rollup = traced_chain["result"].metrics["rollups"]["global"]
    assert rollup["mac.data_tx"] > 0
    assert rollup["ifq.enqueued"] > 0
    assert rollup["tcp.data_sent"] > 0
    assert rollup["tcp.delivered_packets"] > 0
    per_node = traced_chain["result"].metrics["rollups"]["per_node"]
    assert set(per_node) == {str(n) for n in range(5)}  # 4 hops = 5 nodes


def test_probe_recorded_cwnd_series(traced_chain):
    series = traced_chain["probe"].series
    cwnd = series["flow0.cwnd"]
    assert len(cwnd) >= 10  # 5 s at 0.5 s interval + immediate sample
    assert any(v > 1.0 for _, v in cwnd)


def test_manifest_is_schema_valid(traced_chain):
    assert validate_manifest_file(traced_chain["manifest_path"]) == []


def test_manifest_reproduces_run_byte_identically(traced_chain):
    """The headline provenance claim: replaying the manifest's seed+config
    yields a byte-identical canonical result — and the original traced run
    (sinks, recorder, probe attached) already hashed to the same bytes, so
    observation does not perturb the simulation."""
    result = traced_chain["result"]
    manifest = result.manifest
    assert stable_digest(result.to_dict()) == manifest["result_digest"]
    untraced = run_chain(4, ["muzha"], config=traced_chain["config"])
    assert stable_digest(untraced.to_dict()) == manifest["result_digest"]


def test_spec_manifest_verifies_end_to_end():
    from repro.experiments import RunSpec, execute_run

    spec = RunSpec(kind="chain", hops=4, variants=("muzha",),
                   config=ScenarioConfig(sim_time=3.0, seed=1))
    assert verify_manifest(execute_run(spec).manifest)
