"""Integration tests for the fairness scenarios (Simulations 3A/3B)."""

import pytest

from repro.experiments import ScenarioConfig, fig_dynamics, run_cross
from repro.stats import jain_index


def test_cross_two_muzha_flows_share_fairly():
    fairness = []
    for seed in (1, 2, 3):
        result = run_cross(
            4, "muzha", "muzha", config=ScenarioConfig(sim_time=20.0, seed=seed, window=4)
        )
        fairness.append(result.fairness)
        for flow in result.flows:
            assert flow.goodput_kbps > 20.0, "no Muzha flow may starve"
    assert sum(fairness) / len(fairness) > 0.85


def test_cross_muzha_survives_against_newreno():
    for seed in (1, 2):
        result = run_cross(
            4, "newreno", "muzha", config=ScenarioConfig(sim_time=20.0, seed=seed, window=4)
        )
        newreno, muzha = result.flows
        assert muzha.goodput_kbps > 20.0, "Muzha starved by NewReno"
        assert newreno.goodput_kbps > 10.0


def test_staggered_flows_all_get_share():
    result = fig_dynamics(
        "muzha", hops=4, starts=(0.0, 5.0, 10.0), sim_time=25.0, seed=1, window=4
    )
    tails = [
        [r for t, r in flow.rate_series_kbps if t >= 18.0] for flow in result.flows
    ]
    shares = [sum(r) / len(r) for r in tails]
    assert all(s > 5.0 for s in shares), shares
    assert jain_index(shares) > 0.6


def test_late_flow_takes_bandwidth_from_early_flow():
    """When flow 2 enters, flow 1's rate must drop (they share the chain)."""
    result = fig_dynamics(
        "muzha", hops=4, starts=(0.0, 10.0), sim_time=20.0, seed=1, window=4
    )
    flow0 = result.flows[0].rate_series_kbps
    before = [r for t, r in flow0 if 5.0 <= t < 10.0]
    after = [r for t, r in flow0 if 14.0 <= t <= 20.0]
    assert sum(before) / len(before) > sum(after) / len(after)
