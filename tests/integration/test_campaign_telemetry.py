"""Acceptance tests for campaign-scale telemetry (spans/report PR).

A warm-pool campaign run with a span sink must produce a schema-valid
NDJSON log whose unit count matches the ``CampaignResult``, with worker
heartbeats and cache counters; fingerprints must be byte-identical with
spans on or off across every pool backend; and a telemetry subscriber
detaching mid-run (the FlightRecorder pattern) must neither stall the
trace bus nor perturb results.
"""

import os
import warnings

import pytest

from repro.experiments import (
    CampaignCache,
    RetryPolicy,
    ScenarioConfig,
    chain_grid,
    run_campaign,
    run_chain,
)
from repro.experiments.campaign import CRASH_ONCE_ENV, POOL_MODES
from repro.obs import (
    CampaignTelemetry,
    FlightRecorder,
    NdjsonTraceSink,
    SpanWriter,
    aggregate_span_log,
    read_span_log,
    stable_digest,
    validate_span_file,
)


def small_grid():
    return chain_grid(["muzha"], [2], config=ScenarioConfig(sim_time=1.5))


def run_with_spans(tmp_path, name, **kwargs):
    path = tmp_path / name
    with SpanWriter(path) as writer:
        telemetry = CampaignTelemetry(writer, heartbeat_interval=0.01)
        result = run_campaign(small_grid(), replications=2, jobs=2,
                              telemetry=telemetry, **kwargs)
    return result, path, telemetry


# -- warm-pool acceptance -----------------------------------------------------


def test_warm_campaign_span_log_is_valid_and_complete(tmp_path):
    result, path, telemetry = run_with_spans(tmp_path, "warm.ndjson",
                                             pool_mode="warm")
    assert result.complete
    assert validate_span_file(path) == []
    records = read_span_log(path)
    unit_opens = [r for r in records if r.get("span") == "unit-attempt"]
    # One ok unit-attempt span per campaign record.
    closes = {r["id"]: r for r in records if r["kind"] == "span_close"}
    ok_units = [u for u in unit_opens if closes[u["id"]]["status"] == "ok"]
    assert len(ok_units) == len(result.records) == 2
    # Worker heartbeats exist and carry gauges.
    beats = [r for r in records if r["kind"] == "heartbeat"]
    assert telemetry.heartbeats == len(beats) >= 1
    assert all("units_done" in b["attrs"] for b in beats)
    # The campaign close record carries counters + PHY lane aggregates.
    campaign_close = closes[next(r["id"] for r in records
                                 if r.get("span") == "campaign")]
    assert campaign_close["attrs"]["executed"] == 2
    assert campaign_close["attrs"]["counters"]["units.ok"] == 2
    assert sum(v for k, v in campaign_close["attrs"]["phy"].items()
               if k.startswith("lane.")) == 2


@pytest.mark.parametrize("pool_mode", POOL_MODES)
def test_fingerprints_identical_with_spans_on_or_off(tmp_path, pool_mode):
    traced, path, _ = run_with_spans(tmp_path, f"{pool_mode}.ndjson",
                                     pool_mode=pool_mode)
    untraced = run_campaign(small_grid(), replications=2, jobs=2,
                            pool_mode=pool_mode)
    assert traced.fingerprint() == untraced.fingerprint()
    assert validate_span_file(path) == []


# -- cache counters -----------------------------------------------------------


def test_cache_hits_and_evictions_in_result_and_span_log(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    first = run_campaign(small_grid(), replications=2, jobs=2, cache=cache)
    assert first.cache_evictions == 0
    # Corrupt one entry: the rerun must evict + recompute it, hit the rest.
    victim = next(cache.root.glob("*/*.json"))
    victim.write_text(victim.read_text()[:40])
    path = tmp_path / "cached.ndjson"
    with SpanWriter(path) as writer:
        telemetry = CampaignTelemetry(writer, heartbeat_interval=0.01)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            second = run_campaign(small_grid(), replications=2, jobs=2,
                                  cache=cache, telemetry=telemetry)
    assert second.cache_hits == 1 and second.executed == 1
    assert second.cache_evictions == 1
    assert second.fingerprint() == first.fingerprint()
    assert validate_span_file(path) == []
    summary = aggregate_span_log(path)
    assert summary["cache"] == {"hits": 1, "misses": 1, "evictions": 1,
                                "hit_ratio": 0.5}
    # Cached units get spans too, parented to the campaign.
    records = read_span_log(path)
    cached = [r for r in records if r.get("span") == "unit-attempt"
              and r.get("attrs", {}).get("cached")]
    assert len(cached) == 1
    assert cached[0]["attrs"]["worker"] == "cache"


# -- crash / replacement ------------------------------------------------------


def test_warm_crash_emits_replacement_spans(tmp_path, monkeypatch):
    sentinel = tmp_path / "crash-sentinel"
    monkeypatch.setenv(CRASH_ONCE_ENV, f"{sentinel}:0")
    path = tmp_path / "crash.ndjson"
    with SpanWriter(path) as writer:
        telemetry = CampaignTelemetry(writer, heartbeat_interval=0.01)
        result = run_campaign(
            small_grid(), replications=2, jobs=2, pool_mode="warm",
            policy=RetryPolicy(max_retries=2, backoff=0.01),
            telemetry=telemetry,
        )
    assert result.complete  # the retry healed the crash
    assert validate_span_file(path) == []
    summary = aggregate_span_log(path)
    assert summary["worker_events"]["crashed"] == 1
    assert summary["worker_events"]["replaced"] >= 1
    assert summary["retries"]["0"]["retries"] == 1
    records = read_span_log(path)
    statuses = [r["status"] for r in records if r["kind"] == "span_close"
                and r["id"].startswith("u")]
    assert "crash" in statuses  # the killed attempt has its own span
    assert statuses.count("ok") == len(result.records) == 2
    # The dead worker's batch span closed as aborted, not ok.
    aborted = [r for r in records if r["kind"] == "span_close"
               and r["id"].startswith("b") and r["status"] == "aborted"]
    assert len(aborted) == 1


# -- TraceBus detach mid-run (FlightRecorder interaction) --------------------


def test_flight_recorder_detach_mid_run_keeps_other_subscribers_live(tmp_path):
    """Detaching one ``"*"`` subscriber mid-run must not re-gate the bus
    for the survivors (``_wants_all`` stays true) nor perturb the result."""
    trace_path = tmp_path / "trace.ndjson"
    sink = NdjsonTraceSink(trace_path)
    observed = {}

    def instrument(network, flows):
        bus = network.sim.trace
        sink.attach(bus)
        recorder = FlightRecorder(bus, dump_dir=tmp_path / "flight")
        observed["bus"] = bus

        def detach_recorder():
            observed["before_detach"] = sink.records_written
            recorder.detach()
            observed["wants_all_after"] = bus._wants_all
            observed["active_after"] = bus.active

        network.sim.schedule(1.0, detach_recorder)

    config = ScenarioConfig(sim_time=2.0, seed=7)
    traced = run_chain(3, ["muzha"], config=config, instrument=instrument)
    sink.detach()
    # The recorder left; the sink (also "*") must still gate the bus open.
    assert observed["wants_all_after"] is True
    assert observed["active_after"] is True
    assert sink.records_written > observed["before_detach"] > 0
    # Mid-run detach is invisible in the results.
    untraced = run_chain(3, ["muzha"], config=config)
    assert stable_digest(traced.to_dict()) == stable_digest(untraced.to_dict())
