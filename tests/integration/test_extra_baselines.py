"""Integration: the Westwood/Veno extension baselines vs the §4.7 scenario."""

import pytest

from repro.experiments import ScenarioConfig, run_chain


def test_westwood_outperforms_newreno_under_random_loss():
    """Westwood's BDP-based ssthresh is exactly the anti-blind-halving
    design; it must keep more goodput than NewReno on a lossy chain."""
    config = ScenarioConfig(sim_time=20.0, seed=1, window=8, packet_error_rate=0.05)
    westwood = run_chain(4, ["westwood"], config=config).flows[0].goodput_kbps
    newreno = run_chain(4, ["newreno"], config=config).flows[0].goodput_kbps
    assert westwood > 0.9 * newreno


def test_veno_runs_clean_and_lossy():
    for loss in (0.0, 0.05):
        config = ScenarioConfig(sim_time=10.0, seed=2, window=8, packet_error_rate=loss)
        flow = run_chain(4, ["veno"], config=config).flows[0]
        assert flow.goodput_kbps > 50.0


def test_muzha_still_leads_the_endtoend_fixes_under_loss():
    """The router-assisted approach should beat the end-to-end repairs the
    related work proposed, in the random-loss regime it was designed for."""
    config = ScenarioConfig(sim_time=20.0, seed=3, window=8, packet_error_rate=0.05)
    results = {
        variant: run_chain(4, [variant], config=config).flows[0].goodput_kbps
        for variant in ("muzha", "westwood", "veno")
    }
    assert results["muzha"] >= max(results["westwood"], results["veno"]) * 0.95
