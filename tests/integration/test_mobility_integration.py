"""Integration: TCP over a *mobile* ad hoc network (the §6 extension).

A dense-enough random network with random-waypoint movement: routes break
and reform as nodes drift, AODV repairs them, and the transport layer keeps
delivering.  These tests assert survival and repair, not throughput.
"""

import pytest

from repro.phy import Area, Position, RandomWaypointMobility
from repro.routing import install_aodv_routing
from repro.topology import make_network
from repro.traffic import start_ftp


def build_mobile_network(n_nodes=12, seed=1, side=700.0):
    """n nodes scattered over a side x side field (dense at 250 m range)."""
    net = make_network(seed=seed)
    rng = net.sim.stream("placement")
    for _ in range(n_nodes):
        net.add_node(Position(rng.uniform(0, side), rng.uniform(0, side)))
    return net


def test_flow_survives_random_waypoint_motion():
    net = build_mobile_network(seed=2)
    install_aodv_routing(net.nodes, net.sim)
    mobility = RandomWaypointMobility(
        net.sim,
        net.channel,
        [n.radio for n in net.nodes],
        Area(0.0, 0.0, 700.0, 700.0),
        speed_range=(2.0, 10.0),
        pause_time=1.0,
        tick_interval=0.5,
    ).start()
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=4)
    net.sim.run(until=30.0)
    assert mobility.ticks >= 59
    assert flow.sink.delivered_packets > 50, "flow died under mild mobility"


def test_mobility_causes_route_maintenance():
    net = build_mobile_network(seed=3)
    protocols = install_aodv_routing(net.nodes, net.sim)
    RandomWaypointMobility(
        net.sim,
        net.channel,
        [n.radio for n in net.nodes],
        Area(0.0, 0.0, 700.0, 700.0),
        speed_range=(10.0, 25.0),  # fast: links definitely break
        pause_time=0.0,
        tick_interval=0.25,
    ).start()
    start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=4)
    net.sim.run(until=30.0)
    discoveries = sum(p.aodv.discoveries for p in protocols.values())
    assert discoveries >= 2, "fast motion should force rediscoveries"


def test_muzha_runs_under_mobility():
    from repro.core import install_drai

    net = build_mobile_network(seed=4)
    install_aodv_routing(net.nodes, net.sim)
    install_drai(net.nodes, net.sim)
    RandomWaypointMobility(
        net.sim,
        net.channel,
        [n.radio for n in net.nodes],
        Area(0.0, 0.0, 700.0, 700.0),
        speed_range=(2.0, 8.0),
        pause_time=2.0,
    ).start()
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=4)
    net.sim.run(until=30.0)
    assert flow.sink.delivered_packets > 30
