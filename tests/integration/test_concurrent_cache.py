"""Two campaigns sharing one cache directory must not corrupt it.

The cache hardening (advisory ``flock`` on a sidecar, durable atomic
writes, lock-free reads) is exercised the way it fails in the field: two
coordinators racing to fill the same content-addressed cache with the
same units.  Both must land on the identical fingerprint, neither may
observe a corrupt envelope (no :class:`CacheCorruptionWarning`, zero
evictions), and no write-in-progress tmp debris may survive.

Covered at two levels: threads inside one process (the ``flock`` is
advisory per-fd, so in-process races lean on the atomic rename + durable
put), and two separately spawned CLI processes (true cross-process
``flock`` contention).
"""

import os
import subprocess
import sys
import threading
import warnings
from pathlib import Path

import repro
from repro.experiments import (
    CacheCorruptionWarning,
    CampaignCache,
    ScenarioConfig,
    chain_grid,
    run_campaign,
)

SRC = str(Path(repro.__file__).resolve().parents[1])


def tiny_grid():
    config = ScenarioConfig(sim_time=0.5, window=4)
    return chain_grid(["newreno", "muzha"], [2], config=config)


def test_two_threads_sharing_a_cache_agree_and_corrupt_nothing(tmp_path):
    root = tmp_path / "cache"
    results = {}
    errors = []

    def campaign(name):
        try:
            results[name] = run_campaign(
                tiny_grid(), replications=2, base_seed=7, jobs=1,
                cache=CampaignCache(root), pool_mode="inproc",
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with warnings.catch_warnings():
        # Any cache-corruption eviction in either thread becomes a failure.
        warnings.simplefilter("error", CacheCorruptionWarning)
        threads = [threading.Thread(target=campaign, args=(n,))
                   for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
    assert errors == []
    assert {t.is_alive() for t in threads} == {False}

    a, b = results["a"], results["b"]
    assert a.complete and b.complete
    assert a.fingerprint() == b.fingerprint()
    assert a.cache_evictions == 0 and b.cache_evictions == 0
    # Between them every unit was either simulated once or served from the
    # other campaign's put — never lost.
    assert a.executed + a.cache_hits == len(a.records)
    assert not list(root.glob("*/*.tmp")), "tmp debris left behind"
    assert (root / CampaignCache.LOCK_NAME).exists()


def test_two_processes_sharing_a_cache_agree_and_corrupt_nothing(tmp_path):
    root = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.cli", "campaign",
        "--variants", "newreno", "muzha", "--hops", "2",
        "--replications", "2", "--time", "0.5", "--window", "4",
        "--seed", "7", "--jobs", "2", "--pool-mode", "per-attempt",
        "--cache-dir", str(root), "--quiet",
    ]
    procs = [subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, text=True)
             for _ in range(2)]
    outputs = [p.communicate(timeout=300) for p in procs]

    fingerprints = []
    for proc, (stdout, stderr) in zip(procs, outputs):
        assert proc.returncode == 0, f"stdout:\n{stdout}\nstderr:\n{stderr}"
        assert "CacheCorruptionWarning" not in stderr
        line = [l for l in stdout.splitlines()
                if l.startswith("campaign fingerprint: ")]
        assert line, f"no fingerprint in output:\n{stdout}"
        fingerprints.append(line[0].split(": ", 1)[1])
    assert fingerprints[0] == fingerprints[1]
    assert not list(root.glob("*/*.tmp")), "tmp debris left behind"
