"""Cluster transport end-to-end: byte-identity, failure modes, resume.

The cluster backend moves units over TCP to worker-agent subprocesses —
a completely different execution path from the forked pipe pool — yet
nothing of that may show in results: every unit's seed is derived in
``plan_campaign`` before dispatch, so the campaign fingerprint must be
byte-identical to ``inproc`` on clean and faulted grids alike.  On top of
the equivalence contract this file exercises the transport's failure
modes: a mid-unit TCP disconnect must requeue the unit *un-charged* (the
wire died, not necessarily the work), a late-joining agent must steal
work from an in-progress campaign, and a SIGTERMed two-process cluster
campaign must resume to the same fingerprint as an uninterrupted
single-host run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    BARRIER_ENV,
    CRASH_ONCE_ENV,
    CampaignCache,
    RetryPolicy,
    ScenarioConfig,
    chain_grid,
    run_campaign,
)
from repro.faults import FaultEvent, FaultPlan

SRC = str(Path(repro.__file__).resolve().parents[1])


def clean_grid():
    config = ScenarioConfig(sim_time=0.5, window=4)
    return chain_grid(["muzha", "newreno"], [2, 3], config=config)


def faulted_grid():
    plan = FaultPlan(events=(
        FaultEvent(time=0.2, kind="node_crash", node=1, duration=0.2),
    ))
    config = ScenarioConfig(sim_time=0.5, window=4, faults=plan)
    return chain_grid(["muzha", "newreno"], [2], config=config)


def by_identity(result):
    return {
        (r.run.scenario, r.run.replication): r.metrics_bytes()
        for r in result.records
    }


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


def agent_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def start_agent(endpoint, env=None, retry="30"):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", endpoint, "--retry", retry],
        env=env or agent_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


# ---------------------------------------------------------------------------
# byte-identity with the in-process backend


@pytest.fixture(scope="module")
def inproc_clean():
    return run_campaign(clean_grid(), replications=2, jobs=1,
                        pool_mode="inproc")


@pytest.fixture(scope="module")
def inproc_faulted():
    return run_campaign(faulted_grid(), replications=2, jobs=1,
                        pool_mode="inproc")


def test_cluster_is_byte_identical_on_a_clean_grid(inproc_clean):
    clustered = run_campaign(
        clean_grid(), replications=2, jobs=2, pool_mode="cluster"
    )
    assert clustered.complete
    assert by_identity(clustered) == by_identity(inproc_clean)
    assert clustered.fingerprint() == inproc_clean.fingerprint()


def test_cluster_is_byte_identical_under_a_fault_plan(inproc_faulted):
    clustered = run_campaign(
        faulted_grid(), replications=2, jobs=2, pool_mode="cluster"
    )
    assert clustered.complete
    assert by_identity(clustered) == by_identity(inproc_faulted)
    assert clustered.fingerprint() == inproc_faulted.fingerprint()


# ---------------------------------------------------------------------------
# transport failure modes


def test_mid_unit_disconnect_requeues_without_charging(
    tmp_path, monkeypatch, inproc_faulted
):
    """An agent hard-dying mid-unit severs its TCP link; the in-flight
    unit must requeue *un-charged* — with a zero-retry policy the
    campaign still completes, which it could not if the disconnect had
    been charged as an attempt."""
    del inproc_faulted  # only here to share module setup cost ordering
    monkeypatch.setenv(CRASH_ONCE_ENV, f"{tmp_path / 'crash'}:1")
    config = ScenarioConfig(sim_time=0.5, window=4)
    grid = chain_grid(["newreno"], [2], config=config)
    result = run_campaign(
        grid, replications=2, jobs=2, pool_mode="cluster",
        policy=RetryPolicy(max_retries=0, backoff=0.0),
    )
    assert (tmp_path / "crash").exists()  # the chaos hook did fire
    assert result.complete
    assert not result.failed


def test_late_joining_agent_steals_work_mid_campaign(tmp_path):
    """A worker agent that dials in while the campaign is running must be
    folded into dispatch and pull units from the shared queue."""
    port = free_port()
    endpoint = f"127.0.0.1:{port}"
    cache = tmp_path / "cache"
    journal = tmp_path / "run.journal"
    spans = tmp_path / "spans.ndjson"
    barrier = tmp_path / "barrier"
    total = 6  # 3 scenarios x 2 replications

    env = agent_env(**{BARRIER_ENV: f"{barrier}:0"})
    coordinator = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign",
         "--variants", "newreno", "--hops", "2", "3", "4",
         "--replications", "2", "--time", "0.5", "--window", "4",
         "--seed", "7", "--quiet",
         "--pool-mode", "cluster", "--listen", endpoint, "--agents", "0",
         "--jobs", "2", "--cache-dir", str(cache),
         "--journal", str(journal), "--spans", str(spans)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    first = second = None
    try:
        # Agent one joins and blocks on unit 0 (its batch holds 0 and 1).
        first = start_agent(endpoint, env=env)
        wait_for(lambda: (tmp_path / "barrier.ready").exists(),
                 120, "the barrier unit to start on agent one")

        def done_units():
            if not journal.is_file():
                return 0
            return sum(
                1 for line in journal.read_text().splitlines()
                if '"kind": "done"' in line or '"kind":"done"' in line
            )

        before = done_units()
        # Agent two dials into the running campaign and must drain the
        # queue the blocked agent cannot touch.
        second = start_agent(endpoint, env=env)
        wait_for(lambda: done_units() >= total - 2,
                 120, "the late joiner to steal and finish the queue")
        assert done_units() > before
        (tmp_path / "barrier.go").touch()
        stdout, stderr = coordinator.communicate(timeout=120)
    finally:
        for proc in (coordinator, first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.communicate()

    assert coordinator.returncode == 0, f"stdout:\n{stdout}\nstderr:\n{stderr}"

    # The span log attributes units to host-qualified worker identities:
    # both agents must have executed work.
    executing_workers = set()
    open_workers = {}
    for line in spans.read_text().splitlines():
        record = json.loads(line)
        if (record.get("kind") == "span_open"
                and record.get("span") == "unit-attempt"):
            attrs = record.get("attrs", {})
            if not attrs.get("cached"):
                open_workers[record["id"]] = attrs.get("worker")
        elif (record.get("kind") == "span_close"
                and record.get("id") in open_workers
                and record.get("status") == "ok"):
            executing_workers.add(open_workers[record["id"]])
    host = socket.gethostname()
    assert len(executing_workers) == 2, executing_workers
    assert all(w.startswith(f"{host}:") for w in executing_workers)


def test_cluster_sigterm_resume_matches_uninterrupted_single_host(tmp_path):
    """SIGTERM mid-campaign with two agent processes: drain, exit 3 with a
    resumable journal, no orphan agents — and the resumed cluster
    campaign lands on the uninterrupted in-process fingerprint."""
    import re

    base_args = [
        "--variants", "newreno", "--hops", "2", "3", "--replications", "2",
        "--time", "0.5", "--window", "4", "--seed", "7", "--quiet",
    ]

    def fingerprint(stdout):
        match = re.search(r"campaign fingerprint: (\S+)", stdout)
        assert match, f"no fingerprint in output:\n{stdout}"
        return match.group(1)

    reference = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", *base_args,
         "--pool-mode", "inproc", "--jobs", "1",
         "--cache-dir", str(tmp_path / "refcache")],
        env=agent_env(), capture_output=True, text=True, timeout=300,
    )
    assert reference.returncode == 0, reference.stderr

    cache = tmp_path / "cache"
    journal = tmp_path / "run.journal"
    barrier = tmp_path / "barrier"
    port = free_port()
    cluster_args = [
        sys.executable, "-m", "repro.cli", "campaign", *base_args,
        "--pool-mode", "cluster", "--listen", f"127.0.0.1:{port}",
        "--jobs", "2", "--cache-dir", str(cache),
        "--journal", str(journal), "--drain-timeout", "2.0",
    ]
    proc = subprocess.Popen(
        cluster_args, env=agent_env(**{BARRIER_ENV: f"{barrier}:0"}),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        wait_for(lambda: (tmp_path / "barrier.ready").exists(),
                 120, "the barrier unit to start")
        wait_for(
            lambda: journal.is_file() and any(
                '"done"' in line for line in journal.read_text().splitlines()
            ),
            120, "a journaled completion",
        )
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 3, f"stdout:\n{stdout}\nstderr:\n{stderr}"
    assert "interrupted by SIGTERM" in stdout

    # The coordinator's close() reaps its self-spawned agents: nothing is
    # left dialing this campaign's endpoint.
    def agents_alive():
        token = f"127.0.0.1:{port}".encode()
        for entry in Path("/proc").iterdir():
            if not entry.name.isdigit():
                continue
            try:
                if token in (entry / "cmdline").read_bytes():
                    return True
            except OSError:
                continue
        return False

    wait_for(lambda: not agents_alive(), 10, "agent subprocesses to exit")

    from repro.experiments import replay_journal

    replay = replay_journal(journal)
    assert replay.interrupted
    assert 0 < len(replay.completed) < 4

    resumed = subprocess.run(
        [*cluster_args[:-4], "--resume", str(journal)],
        env=agent_env(), capture_output=True, text=True, timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert fingerprint(resumed.stdout) == fingerprint(reference.stdout)

    final = replay_journal(journal)
    assert final.generations == 2
    assert not final.interrupted
