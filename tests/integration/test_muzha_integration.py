"""Integration tests for TCP Muzha on the full stack: the router-assist
loop (DRAI stamping -> MRAI echo -> cwnd control) working end to end."""

import pytest

from repro.core import install_drai
from repro.experiments import ScenarioConfig, run_chain
from repro.routing import install_static_routing
from repro.topology import build_chain
from repro.traffic import start_ftp


def test_muzha_receives_mrai_feedback():
    net = build_chain(4, seed=1)
    install_static_routing(net.nodes, net.channel)
    install_drai(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=10.0)
    sender = flow.sender
    total_adjustments = sum(sender.muzha.rate_adjustments.values())
    assert total_adjustments > 20  # roughly one per RTT
    assert sender.last_mrai is not None


def test_muzha_cwnd_rises_from_one_without_slow_start():
    """The Fig 5.2/5.3 behaviour: prompt ramp then stabilization, with the
    growth driven entirely by router feedback."""
    result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0, seed=1, window=8))
    trace = result.flows[0].cwnd_trace
    assert trace[0][1] == 1.0
    assert max(v for _, v in trace) >= 2.0
    # ssthresh is pinned below cwnd, so there is never slow-start growth:
    # every increase step is at most a doubling driven by MRAI=5 and
    # happens at RTT granularity, not per-ACK exponential bursts.
    assert result.flows[0].goodput_kbps > 100.0


def test_muzha_retransmits_less_than_newreno_on_chains():
    """Abstract's claim: 'much less number of retransmission'."""
    muzha_retx, newreno_retx = 0, 0
    for seed in (1, 2, 3):
        config = ScenarioConfig(sim_time=15.0, seed=seed, window=8)
        muzha_retx += run_chain(4, ["muzha"], config=config).flows[0].retransmits
        newreno_retx += run_chain(4, ["newreno"], config=config).flows[0].retransmits
    assert muzha_retx < newreno_retx


def test_muzha_throughput_competitive_with_newreno():
    """Abstract's claim: 5~10% higher throughput (we assert >= 0.95x)."""
    muzha, newreno = 0.0, 0.0
    for seed in (1, 2, 3):
        config = ScenarioConfig(sim_time=15.0, seed=seed, window=8)
        muzha += run_chain(4, ["muzha"], config=config).flows[0].goodput_kbps
        newreno += run_chain(4, ["newreno"], config=config).flows[0].goodput_kbps
    assert muzha > 0.95 * newreno


def test_random_loss_does_not_collapse_muzha_window():
    """§4.7: random loss must not trigger unnecessary window reductions.

    With a per-frame random error model, Muzha should record random-loss
    classifications and keep throughput above a NewReno baseline that halves
    on every loss event."""
    config = ScenarioConfig(sim_time=20.0, seed=1, window=8, packet_error_rate=0.03)
    muzha = run_chain(4, ["muzha"], config=config).flows[0]
    newreno = run_chain(4, ["newreno"], config=config).flows[0]
    assert muzha.goodput_kbps > newreno.goodput_kbps


def test_drai_levels_used_across_the_band():
    """On a busy chain, routers should publish several distinct levels."""
    net = build_chain(4, seed=2)
    install_static_routing(net.nodes, net.channel)
    estimators = install_drai(net.nodes, net.sim)
    start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=10.0)
    relay = estimators[1]
    used_levels = [lvl for lvl, count in relay.level_counts.items() if count > 0]
    assert len(used_levels) >= 2


def test_avbw_s_is_path_minimum():
    """Force a low DRAI at a relay and check the receiver-side echo."""
    net = build_chain(3, seed=1)
    install_static_routing(net.nodes, net.channel)
    estimators = install_drai(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=4)

    # Pin the middle router's published DRAI to 2 by stubbing its compute.
    estimators[1]._compute = lambda q, u, o: 2
    net.sim.run(until=5.0)
    assert flow.sender.last_mrai == 2
