"""Property-based tests for the random-waypoint mobility model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import Area, Position, Radio, RandomWaypointMobility, WirelessChannel
from repro.sim import Simulator

areas = st.tuples(
    st.floats(min_value=-1000, max_value=0),
    st.floats(min_value=-1000, max_value=0),
    st.floats(min_value=100, max_value=2000),
    st.floats(min_value=100, max_value=2000),
).map(lambda t: Area(t[0], t[1], t[0] + t[2], t[1] + t[3]))

speeds = st.tuples(
    st.floats(min_value=0.5, max_value=10.0),
    st.floats(min_value=0.0, max_value=20.0),
).map(lambda t: (t[0], t[0] + t[1]))


@given(areas, speeds, st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_positions_always_inside_area(area, speed_range, n, seed):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    radios = []
    start = Position(
        (area.x_min + area.x_max) / 2.0, (area.y_min + area.y_max) / 2.0
    )
    for i in range(n):
        radio = Radio(sim, i)
        channel.register(radio, start)
        radios.append(radio)
    RandomWaypointMobility(
        sim, channel, radios, area, speed_range=speed_range, pause_time=0.5
    ).start()
    for _ in range(20):
        sim.run(until=sim.now + 0.5)
        for radio in radios:
            assert area.contains(channel.position_of(radio))


@given(speeds, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_per_tick_displacement_bounded(speed_range, seed):
    area = Area(0, 0, 1000, 1000)
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    radio = Radio(sim, 0)
    channel.register(radio, Position(500, 500))
    tick = 0.5
    RandomWaypointMobility(
        sim, channel, [radio], area, speed_range=speed_range,
        pause_time=0.0, tick_interval=tick,
    ).start()
    previous = channel.position_of(radio)
    for _ in range(30):
        sim.run(until=sim.now + tick)
        current = channel.position_of(radio)
        assert previous.distance_to(current) <= speed_range[1] * tick + 1e-6
        previous = current
