"""Determinism properties of the campaign engine.

The reproduction's credibility rests on one contract: a campaign's metrics
are a pure function of (grid, base seed).  Worker count, scenario order,
and the cache must all be invisible in the results — these tests compare
canonical byte serializations, not approximate floats.

The simulations here are deliberately tiny (2–3 hop chains, 1.5 s) so the
whole module stays fast while still exercising the multiprocessing pool.
"""

import random

import pytest

from repro.experiments import (
    CampaignCache,
    RunSpec,
    ScenarioConfig,
    chain_grid,
    plan_campaign,
    run_campaign,
    run_digest,
    scenario_key,
)
from repro.sim import derive_run_seed


def small_grid():
    config = ScenarioConfig(sim_time=1.5, window=4)
    return chain_grid(["muzha", "newreno"], [2, 3], config=config)


def by_identity(result):
    """Map (scenario, replication) -> canonical metric bytes."""
    return {
        (r.run.scenario, r.run.replication): r.metrics_bytes()
        for r in result.records
    }


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(small_grid(), replications=2, jobs=1)


@pytest.mark.parametrize("jobs", [2, 4])
def test_worker_count_is_invisible_in_the_metrics(serial_result, jobs):
    parallel = run_campaign(small_grid(), replications=2, jobs=jobs)
    assert by_identity(parallel) == by_identity(serial_result)
    assert parallel.fingerprint() == serial_result.fingerprint()


def test_scenario_order_is_invisible_in_the_metrics(serial_result):
    shuffled = small_grid()
    random.Random(99).shuffle(shuffled)
    result = run_campaign(shuffled, replications=2, jobs=2)
    assert by_identity(result) == by_identity(serial_result)
    assert result.fingerprint() == serial_result.fingerprint()


def test_records_come_back_in_grid_order():
    grid = small_grid()
    result = run_campaign(grid, replications=2, jobs=2)
    expected = [(scenario_key(spec), rep) for spec in grid for rep in (0, 1)]
    assert [(r.run.scenario, r.run.replication) for r in result.records] == expected


def test_cache_hits_reproduce_the_cold_run_exactly(tmp_path, serial_result):
    cache = CampaignCache(tmp_path / "cache")
    cold = run_campaign(small_grid(), replications=2, jobs=2, cache=cache)
    assert cold.executed == len(cold.records)
    assert by_identity(cold) == by_identity(serial_result)

    warm = run_campaign(small_grid(), replications=2, jobs=2, cache=cache)
    assert warm.executed == 0
    assert warm.cache_hits == len(warm.records)
    assert by_identity(warm) == by_identity(cold)
    # The reconstructed result objects are equal too, not just the bytes.
    assert [r.to_dict() for r in warm.results()] == [
        r.to_dict() for r in cold.results()
    ]


def test_cache_is_keyed_by_content_not_by_grid(tmp_path):
    """Changing any run-relevant parameter must be a cache miss."""
    cache = CampaignCache(tmp_path / "cache")
    base = ScenarioConfig(sim_time=1.5, window=4)
    grid = chain_grid(["muzha"], [2], config=base)
    run_campaign(grid, jobs=1, cache=cache)

    longer = chain_grid(["muzha"], [2], config=base.replace(sim_time=2.0))
    again = run_campaign(longer, jobs=1, cache=cache)
    assert again.executed == 1  # different sim_time -> different digest


def test_replications_draw_independent_seeds():
    runs = plan_campaign(small_grid(), replications=3, base_seed=1)
    seeds = [r.seed for r in runs]
    assert len(set(seeds)) == len(seeds)
    # and they follow the documented derivation exactly
    for run in runs:
        assert run.seed == derive_run_seed(1, run.scenario, run.replication)


def test_scenario_key_ignores_seed_but_digest_tracks_it():
    config = ScenarioConfig(sim_time=1.5, window=4)
    spec = RunSpec(kind="chain", hops=2, variants=("muzha",), config=config)
    assert scenario_key(spec) == scenario_key(spec.with_seed(42))
    assert run_digest(spec) != run_digest(spec.with_seed(42))


def test_adding_a_scenario_does_not_perturb_existing_ones(serial_result):
    """Grid composition must not leak into per-run seeds or metrics."""
    extended = small_grid() + chain_grid(
        ["vegas"], [2], config=ScenarioConfig(sim_time=1.5, window=4)
    )
    result = run_campaign(extended, replications=2, jobs=2)
    extended_map = by_identity(result)
    for key, blob in by_identity(serial_result).items():
        assert extended_map[key] == blob
