"""Property-based tests for the hysteresis advice policy's contract.

The wanctl-style controller makes four promises the fuzzy quantiser never
had to (it is stateless); Hypothesis drives arbitrary signal sequences and
parameterizations at them:

* escalation only after ``sustain_up`` *consecutive* breach samples;
* no acceleration while the queue is saturated (the PR-2 bound of
  ``test_drai_props.py``, inherited through the family saturation clamp);
* SOFT_RED clamps to its floor and holds — no repeated decay while the
  state persists;
* step-down never faster than the configured asymmetry: at most one
  state per ``sustain_down`` consecutive clean samples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HOLD_LEVEL, HysteresisParams, HysteresisPolicy
from repro.core.policy import HYSTERESIS_STATES, PolicySignals

queue_lens = st.floats(min_value=0.0, max_value=25.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

signals = st.builds(
    PolicySignals,
    queue_len=queue_lens,
    utilization=fractions,
    occupancy=fractions,
    queue_trend=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
)

sequences = st.lists(signals, min_size=1, max_size=80)

params_st = st.builds(
    HysteresisParams,
    sustain_up=st.integers(min_value=1, max_value=4),
    sustain_down=st.integers(min_value=1, max_value=6),
)


def trace_policy(params: HysteresisParams, seq):
    """Run the controller over ``seq``; return per-sample observations."""
    policy = HysteresisPolicy(params)
    rows = []
    for s in seq:
        state_before = policy._state_idx
        severity = policy.severity(s)
        advice = policy.advise(s)
        rows.append(
            {
                "severity": severity,
                "state_before": state_before,
                "state_after": policy._state_idx,
                "state_label": policy.state(),
                "advice": advice,
                "signals": s,
            }
        )
    return rows


@given(params_st, sequences)
@settings(max_examples=200)
def test_never_escalates_without_sustained_consecutive_breaches(params, seq):
    rows = trace_policy(params, seq)
    for i, row in enumerate(rows):
        if row["state_after"] > row["state_before"]:
            window = rows[max(0, i - params.sustain_up + 1): i + 1]
            assert len(window) == params.sustain_up, (
                "escalated before sustain_up samples existed"
            )
            for w in window:
                assert w["severity"] > row["state_before"], (
                    "escalation window contains a non-breach sample"
                )
                assert w["state_before"] == row["state_before"], (
                    "state changed mid-breach-run"
                )


@given(params_st, sequences)
@settings(max_examples=200)
def test_never_accelerates_while_queue_saturated(params, seq):
    rows = trace_policy(params, seq)
    for row in rows:
        if row["signals"].queue_len >= params.queue_red:
            assert row["advice"] <= HOLD_LEVEL


@given(params_st, sequences)
@settings(max_examples=200)
def test_soft_red_clamps_to_its_floor_and_holds(params, seq):
    """While the controller sits in SOFT_RED, advice is pinned at the
    SOFT_RED floor — repeated samples must not decay it further."""
    rows = trace_policy(params, seq)
    soft_red = HYSTERESIS_STATES.index("SOFT_RED")
    for row in rows:
        if row["state_after"] == soft_red:
            assert row["advice"] in (
                params.advice_soft_red,
                min(params.advice_soft_red, HOLD_LEVEL),
            )
            assert row["advice"] >= params.advice_red + 1, (
                "SOFT_RED decayed to the RED level without escalating"
            )


@given(params_st, sequences)
@settings(max_examples=200)
def test_step_down_never_faster_than_the_configured_asymmetry(params, seq):
    rows = trace_policy(params, seq)
    for i, row in enumerate(rows):
        drop = row["state_before"] - row["state_after"]
        assert drop <= 1, "stepped down more than one state in one sample"
        if drop == 1:
            window = rows[max(0, i - params.sustain_down + 1): i + 1]
            assert len(window) == params.sustain_down, (
                "stepped down before sustain_down samples existed"
            )
            for w in window:
                assert w["severity"] < row["state_before"], (
                    "step-down window contains a non-clean sample"
                )
    # Global rate bound: one step per sustain_down samples, so the state
    # can never fall by more than len(seq) // sustain_down overall.
    downs = sum(
        1 for row in rows if row["state_after"] < row["state_before"]
    )
    assert downs <= len(seq) // params.sustain_down


@given(params_st, sequences)
@settings(max_examples=100)
def test_reset_then_replay_is_byte_identical(params, seq):
    policy = HysteresisPolicy(params)
    first = [(policy.advise(s), policy.state()) for s in seq]
    policy.reset()
    assert policy.state() == "GREEN"
    assert [(policy.advise(s), policy.state()) for s in seq] == first
