"""Property-based tests for the event scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import EventScheduler

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)


@given(delays)
def test_events_execute_in_nondecreasing_time_order(times):
    sched = EventScheduler()
    executed = []
    for t in times:
        sched.schedule(t, lambda t=t: executed.append(sched.now))
    sched.run()
    assert executed == sorted(executed)
    assert len(executed) == len(times)


@given(delays)
def test_equal_times_preserve_insertion_order(times):
    sched = EventScheduler()
    executed = []
    for i, t in enumerate(times):
        sched.schedule(t, lambda i=i: executed.append(i))
    sched.run()
    # stable sort of indices by their times
    expected = [i for _, i in sorted((t, i) for i, t in enumerate(times))]
    assert executed == expected


@given(delays, st.sets(st.integers(min_value=0, max_value=199)))
def test_cancellation_removes_exactly_the_cancelled(times, to_cancel):
    sched = EventScheduler()
    executed = []
    events = []
    for i, t in enumerate(times):
        events.append(sched.schedule(t, lambda i=i: executed.append(i)))
    for idx in to_cancel:
        if idx < len(events):
            sched.cancel(events[idx])
    sched.run()
    surviving = {i for i in range(len(times))} - {
        i for i in to_cancel if i < len(times)
    }
    assert set(executed) == surviving


@given(delays, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_run_until_is_a_clean_partition(times, boundary):
    sched = EventScheduler()
    executed = []
    for t in times:
        sched.schedule(t, lambda t=t: executed.append(t))
    sched.run(until=boundary)
    early = list(executed)
    assert all(t <= boundary for t in early)
    sched.run()
    assert sorted(executed) == sorted(times)


@given(st.lists(st.floats(min_value=1e-9, max_value=100.0), min_size=1, max_size=50))
def test_relative_scheduling_never_goes_backwards(deltas):
    sched = EventScheduler()
    observed = []

    def chain(remaining):
        observed.append(sched.now)
        if remaining:
            sched.schedule_after(remaining[0], chain, remaining[1:])

    sched.schedule_after(deltas[0], chain, deltas[1:])
    sched.run()
    assert observed == sorted(observed)
    assert len(observed) == len(deltas)
