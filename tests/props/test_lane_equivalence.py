"""Lane-equivalence properties: the batch lane is byte-identical to scalar.

The vectorized PHY batch lane (``repro.phy.batch``) carries a hard
contract: lane choice may change speed only — never an event timestamp, a
sequence number, an RNG draw or a result byte.  These tests attack the
contract from below and above:

* a channel-level harness runs random topologies × every error model ×
  random transmission plans × fault vetoes under both lanes and compares a
  full bit-level fingerprint (every ``signal_start``/``signal_end``
  delivery with ``float.hex()`` timestamps, decode counters, the
  ``phy.error`` RNG end state);
* full-stack checks compare ``stable_digest`` of complete scenario runs
  (with random loss and a fault plan) and campaign metric bytes across
  lanes.

Everything here is skipped when numpy is absent: without it both lanes
resolve to ``scalar`` and the comparison is vacuous.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import (
    ScenarioConfig,
    chain_grid,
    run_campaign,
    run_chain,
)
from repro.experiments.config import stable_digest
from repro.faults import FaultEvent, FaultPlan
from repro.phy import (
    HAVE_NUMPY,
    NUMPY_MIN_FANOUT,
    GilbertElliott,
    NoError,
    PacketErrorRate,
    Position,
    Radio,
    UniformBitError,
    WirelessChannel,
)
from repro.sim.simulator import Simulator

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch lane requires numpy"
)


class _Frame:
    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes):
        self.size_bytes = size_bytes


#: One factory per error-model family; fresh instances per run (the models
#: carry mutable state: memo tables, the GE state machine).
ERROR_FACTORIES = {
    "none": lambda: NoError(),
    "ber": lambda: UniformBitError(ber=2e-5),
    "per": lambda: PacketErrorRate(per=0.2),
    "ge": lambda: GilbertElliott(
        ber_good=1e-6, ber_bad=2e-3, mean_good=0.02, mean_bad=0.005
    ),
}


def _record_deliveries(radio, trace):
    """Wrap a radio's signal callbacks to log every delivery bit-exactly.

    Instance-attribute wrappers installed *before* the channel builds its
    fan-out cache, so both lanes capture (and call through) the same
    wrappers.  ``float.hex()`` makes timestamp comparison bitwise.
    """
    orig_start, orig_end = radio.signal_start, radio.signal_end

    def start(signal):
        trace.append(
            ("start", radio.sim.now.hex(), radio.node_id,
             signal.end_time.hex(), signal.power.hex(), signal.receivable)
        )
        orig_start(signal)

    def end(signal, corrupted_by_medium):
        trace.append(
            ("end", radio.sim.now.hex(), radio.node_id,
             signal.receivable, signal.corrupted, corrupted_by_medium)
        )
        orig_end(signal, corrupted_by_medium)

    radio.signal_start = start
    radio.signal_end = end


def _normalize_plan(raw_plan, n_radios):
    """Turn raw hypothesis draws into a runnable transmission plan.

    A radio must not key up while already transmitting, so entries that
    would overlap an earlier transmission from the same source are dropped.
    Pure plan-side arithmetic — the result is identical for both lanes.
    """
    busy_until = {}
    plan = []
    for tick, src_raw, dur_ticks, nbytes in sorted(raw_plan):
        src = src_raw % n_radios
        t = tick * 1e-3
        duration = dur_ticks * 1e-4
        if t < busy_until.get(src, 0.0):
            continue
        busy_until[src] = t + duration
        plan.append((t, src, duration, nbytes))
    return plan


def _run_lane(lane, seed, coords, error_key, plan, down_nodes, blocked_links):
    """Execute one plan under ``lane`` and return its full fingerprint."""
    sim = Simulator(seed=seed)
    channel = WirelessChannel(
        sim, error_model=ERROR_FACTORIES[error_key](), phy_lane=lane
    )
    trace = []
    radios = []
    for i, (x, y) in enumerate(coords):
        radio = Radio(sim, i)
        _record_deliveries(radio, trace)
        channel.register(radio, Position(x, y))
        radios.append(radio)
    for node in down_nodes:
        channel.set_node_down(node % len(radios), True)
    for a, b in blocked_links:
        channel.block_link(a % len(radios), b % len(radios))
    for t, src, duration, nbytes in plan:
        sim.at(t, channel.transmit, radios[src], _Frame(nbytes), duration)
    sim.run(until=12.0)
    return (
        tuple(trace),
        tuple((r.rx_ok, r.collisions, r.medium_errors) for r in radios),
        channel.transmissions,
        sim.stream("phy.error").getstate(),
    )


coords_st = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
        lambda p: (p[0] * 30.0, p[1] * 30.0)
    ),
    min_size=2,
    max_size=10,
    unique=True,
)

raw_plan_st = st.lists(
    st.tuples(
        st.integers(0, 9999),          # start time, milliseconds
        st.integers(0, 63),            # source index (mod #radios)
        st.integers(1, 8),             # duration, 0.1 ms units
        st.sampled_from([40, 512, 1460]),
    ),
    min_size=1,
    max_size=24,
)


@needs_numpy
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    coords=coords_st,
    error_key=st.sampled_from(sorted(ERROR_FACTORIES)),
    raw_plan=raw_plan_st,
    seed=st.integers(0, 2**16),
    down=st.sets(st.integers(0, 63), max_size=2),
    blocks=st.sets(
        st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=2
    ),
)
def test_lanes_bit_identical_on_random_topologies(
    coords, error_key, raw_plan, seed, down, blocks
):
    plan = _normalize_plan(raw_plan, len(coords))
    fingerprints = {
        lane: _run_lane(
            lane, seed, coords, error_key, plan, sorted(down), sorted(blocks)
        )
        for lane in ("scalar", "batch")
    }
    assert fingerprints["scalar"] == fingerprints["batch"]


@needs_numpy
@pytest.mark.parametrize("error_key", sorted(ERROR_FACTORIES))
def test_lanes_bit_identical_on_a_wide_fanout(error_key):
    """A dense cluster wide enough (>= NUMPY_MIN_FANOUT neighbours) that the
    batch lane's numpy kernel — not its small-fan-out loop — is what runs."""
    width = NUMPY_MIN_FANOUT + 5
    coords = [(i * 10.0, 0.0) for i in range(width + 1)]
    plan = _normalize_plan(
        [(i * 37, i % (width + 1), 4, 1460) for i in range(30)], width + 1
    )
    fingerprints = {
        lane: _run_lane(lane, 5, coords, error_key, plan, [], [])
        for lane in ("scalar", "batch")
    }
    assert fingerprints["scalar"] == fingerprints["batch"]


@needs_numpy
def test_full_stack_digests_identical_across_lanes_with_loss_and_faults():
    """Complete protocol-stack runs (TCP over AODV over the MAC) under
    random loss and a mid-run node crash serialize byte-identically."""
    plan = FaultPlan(events=(
        FaultEvent(time=0.5, kind="node_crash", node=1, duration=0.4),
    ))
    digests = {}
    for lane in ("scalar", "batch"):
        config = ScenarioConfig(
            sim_time=3.0, seed=11, window=4, packet_error_rate=0.05,
            faults=plan, phy_lane=lane,
        )
        result = run_chain(3, ["muzha"], config=config)
        digests[lane] = stable_digest(result.to_dict())
    assert digests["scalar"] == digests["batch"]


@needs_numpy
def test_campaign_metric_bytes_identical_across_lanes():
    """Campaign results carry the lane in their configs (cache keys must
    distinguish them) but every run's canonical metric bytes are equal."""
    def build(lane):
        config = ScenarioConfig(
            sim_time=1.0, window=4, packet_error_rate=0.1, phy_lane=lane
        )
        return chain_grid(["muzha", "newreno"], [2, 3], config=config)

    def metric_bytes(result):
        return {
            (r.run.scenario, r.run.replication): r.metrics_bytes()
            for r in result.records
        }

    results = {
        lane: run_campaign(
            build(lane), replications=2, jobs=1, pool_mode="inproc"
        )
        for lane in ("scalar", "batch")
    }
    assert all(r.complete for r in results.values())
    assert metric_bytes(results["scalar"]) == metric_bytes(results["batch"])
