"""Property-based tests for the SACK scoreboard invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.transport import SackScoreboard

blocks = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=20),
    ).map(lambda pair: (pair[0], pair[0] + pair[1])),
    max_size=10,
)
unas = st.integers(min_value=0, max_value=120)


@given(blocks, unas)
def test_nothing_below_snd_una_stays_sacked(bs, una):
    sb = SackScoreboard()
    sb.update(bs, una)
    assert all(seq >= una for seq in range(0, una) if sb.is_sacked(seq)) or True
    for seq in range(0, una):
        assert not sb.is_sacked(seq)


@given(blocks, unas)
def test_every_block_member_above_una_is_sacked(bs, una):
    sb = SackScoreboard()
    sb.update(bs, una)
    for start, end in bs:
        for seq in range(start, end):
            if seq >= una:
                assert sb.is_sacked(seq)


@given(blocks, unas)
def test_next_hole_is_never_sacked_and_below_highest(bs, una):
    sb = SackScoreboard()
    sb.update(bs, una)
    hole = sb.next_hole(una)
    top = sb.highest_sacked()
    if hole is not None:
        assert not sb.is_sacked(hole)
        assert top is not None and una <= hole < top


@given(blocks, unas)
def test_marking_holes_terminates(bs, una):
    """Repeatedly retransmitting the reported hole must drain them all."""
    sb = SackScoreboard()
    sb.update(bs, una)
    seen = set()
    while True:
        hole = sb.next_hole(una)
        if hole is None:
            break
        assert hole not in seen  # progress: no hole reported twice
        seen.add(hole)
        sb.mark_retransmitted(hole)
    assert len(seen) <= 121


@given(blocks, blocks, unas)
def test_update_is_cumulative(first, second, una):
    sb = SackScoreboard()
    sb.update(first, una)
    sb.update(second, una)
    combined = SackScoreboard()
    combined.update(list(first) + list(second), una)
    assert sb.sacked_count() == combined.sacked_count()
