"""Property-based conservation tests over the full stack.

Whatever random small scenario we build, the bookkeeping must balance:
packets delivered in order at the sink never exceed distinct packets sent,
counters never go negative, and a sink's cumulative point never exceeds the
sender's highest sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ScenarioConfig, run_chain

scenarios = st.fixed_dictionaries(
    {
        "hops": st.integers(min_value=1, max_value=4),
        "seed": st.integers(min_value=1, max_value=50),
        "window": st.sampled_from([1, 2, 4, 8]),
        "variant": st.sampled_from(["newreno", "muzha", "vegas", "sack"]),
        "loss": st.sampled_from([0.0, 0.05, 0.15]),
    }
)


@given(scenarios)
@settings(max_examples=15, deadline=None)
def test_full_stack_accounting_balances(params):
    config = ScenarioConfig(
        sim_time=4.0,
        seed=params["seed"],
        window=params["window"],
        packet_error_rate=params["loss"],
    )
    result = run_chain(params["hops"], [params["variant"]], config=config)
    flow = result.flows[0]
    # conservation: in-order deliveries never exceed distinct packets sent
    assert flow.delivered_packets <= flow.data_sent
    # counters are sane
    assert flow.retransmits >= 0
    assert flow.timeouts >= 0
    assert flow.goodput_kbps >= 0.0
    # cwnd trace stays within [1, window]
    for _, cwnd in flow.cwnd_trace:
        assert 1.0 <= cwnd <= params["window"] + 1e-9


@given(scenarios)
@settings(max_examples=10, deadline=None)
def test_sink_never_ahead_of_sender(params):
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    net = build_chain(params["hops"], seed=params["seed"])
    install_static_routing(net.nodes, net.channel)
    flow = start_ftp(
        net.sim, net.nodes[0], net.nodes[-1],
        variant=params["variant"], window=params["window"],
    )
    net.sim.run(until=3.0)
    assert flow.sink.rcv_nxt <= flow.sender.snd_nxt
    assert flow.sender.snd_una <= flow.sender.snd_nxt
    assert flow.sink.delivered_packets == flow.sink.rcv_nxt
