"""Property-based tests for the statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import jain_index, time_average, value_at

allocations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=20
)


@given(allocations)
def test_jain_index_bounded(xs):
    j = jain_index(xs)
    assert 1.0 / len(xs) - 1e-9 <= j <= 1.0 + 1e-9


@given(allocations, st.floats(min_value=1e-6, max_value=1e3))
def test_jain_index_scale_invariant(xs, scale):
    assert jain_index(xs) == pytest.approx(jain_index([x * scale for x in xs]))


@given(allocations)
def test_jain_index_permutation_invariant(xs):
    assert jain_index(xs) == pytest.approx(jain_index(list(reversed(xs))))


series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
).map(lambda pts: sorted(pts, key=lambda p: p[0]))


@given(series_strategy)
def test_time_average_within_value_range(series):
    start = series[0][0]
    stop = start + 10.0
    values = [v for _, v in series] + [0.0]  # default before first sample
    avg = time_average(series, start, stop)
    assert min(values) - 1e-6 <= avg <= max(values) + 1e-6


@given(series_strategy, st.floats(min_value=0.0, max_value=200.0))
def test_value_at_returns_latest_sample_at_or_before(series, t):
    v = value_at(series, t, default=-999.0)
    eligible = [val for ts, val in series if ts <= t]
    assert v == (eligible[-1] if eligible else -999.0)


@given(st.floats(min_value=0.1, max_value=1e3))
def test_constant_series_average_is_the_constant(c):
    series = [(0.0, c)]
    assert time_average(series, 0.0, 5.0) == pytest.approx(c)
