"""Property-based tests for the TCP sink: arbitrary arrival orders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.sim import Simulator
from repro.transport import TcpSegment, TcpSink


def drive_sink(arrivals, sack=False):
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    node = Node(sim, channel, 1, Position(0))
    sink = TcpSink(sim, node, port=20, sack=sack)
    acks = []
    node.send = lambda packet: acks.append(packet.payload)
    for seq in arrivals:
        segment = TcpSegment("data", sport=10, dport=20, seq=seq, payload_bytes=100)
        sink.receive_packet(
            Packet(src=0, dst=1, protocol="tcp", size_bytes=140, payload=segment)
        )
    return sink, acks


# permutations with duplicates of a prefix of sequence numbers
arrival_lists = st.lists(st.integers(min_value=0, max_value=15), max_size=60)


@given(arrival_lists)
@settings(max_examples=60)
def test_rcv_nxt_is_first_gap(arrivals):
    sink, acks = drive_sink(arrivals)
    seen = set(arrivals)
    expected = 0
    while expected in seen:
        expected += 1
    assert sink.rcv_nxt == expected


@given(arrival_lists)
@settings(max_examples=60)
def test_one_ack_per_data_segment(arrivals):
    sink, acks = drive_sink(arrivals)
    assert len(acks) == len(arrivals)
    assert sink.acks_sent == len(arrivals)


@given(arrival_lists)
@settings(max_examples=60)
def test_ack_numbers_never_decrease(arrivals):
    _, acks = drive_sink(arrivals)
    numbers = [a.ack for a in acks]
    assert numbers == sorted(numbers)


@given(arrival_lists)
@settings(max_examples=60)
def test_delivered_equals_distinct_in_order_prefix(arrivals):
    sink, _ = drive_sink(arrivals)
    assert sink.delivered_packets == sink.rcv_nxt


@given(arrival_lists)
@settings(max_examples=60)
def test_sack_blocks_are_disjoint_sorted_and_above_rcv_nxt(arrivals):
    sink, acks = drive_sink(arrivals, sack=True)
    for ack in acks:
        blocks = ack.sack_blocks
        for start, end in blocks:
            assert start < end
        for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
            assert e1 < s2  # disjoint and ascending
        if blocks:
            assert blocks[0][0] > ack.ack - 1
