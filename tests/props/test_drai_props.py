"""Property-based tests for DRAI computation and Table 5.2 semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DRAI_TABLE,
    MAX_DRAI,
    MIN_DRAI,
    DraiParams,
    apply_drai,
    compute_drai,
    is_marked,
)

P = DraiParams()

queue_lens = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
levels = st.sampled_from(sorted(DRAI_TABLE))
cwnds = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)


@given(queue_lens, fractions, fractions)
def test_drai_always_a_valid_level(q, u, o):
    level = compute_drai(q, u, o, P)
    assert MIN_DRAI <= level <= MAX_DRAI


# Queue monotonicity holds while the MAC server is not saturated.  Once
# occupancy saturates, the "MAC saturated -> 2" rule fires at full strength
# for *any* queue, and a small standing queue fires the "hold" rule equally
# hard; the documented tie-break then prefers the level closest to
# stabilizing, so the recommendation legitimately moves 2 -> 3 as a small
# backlog appears.  The saturated regime gets its own bound below.


@given(fractions, st.floats(min_value=0.0, max_value=0.55, allow_nan=False),
       queue_lens, queue_lens)
def test_drai_monotone_nonincreasing_in_queue_while_unsaturated(u, o, q1, q2):
    assert o <= P.occ_sat_lo
    lo, hi = sorted((q1, q2))
    assert compute_drai(lo, u, o, P) >= compute_drai(hi, u, o, P)


@given(fractions, st.floats(min_value=0.75, max_value=1.0, allow_nan=False),
       queue_lens)
def test_drai_never_accelerates_when_mac_saturated(u, o, q):
    assert o >= P.occ_sat_hi
    assert compute_drai(q, u, o, P) <= 3


# The occupancy/utilization signals only steer the recommendation while no
# queue has formed (once a backlog exists, the queue rules own the answer),
# so their monotonicity is asserted at queue == 0.


@given(fractions, fractions, fractions)
def test_drai_monotone_nonincreasing_in_occupancy(u, o1, o2):
    lo, hi = sorted((o1, o2))
    assert compute_drai(0.0, u, lo, P) >= compute_drai(0.0, u, hi, P)


@given(fractions, fractions, fractions)
def test_drai_monotone_nonincreasing_in_utilization(o, u1, u2):
    lo, hi = sorted((u1, u2))
    assert compute_drai(0.0, lo, o, P) >= compute_drai(0.0, hi, o, P)


@given(cwnds, levels)
def test_apply_drai_direction_matches_level(cwnd, level):
    adjusted = apply_drai(cwnd, level)
    if level > 3:
        assert adjusted > cwnd
    elif level == 3:
        assert adjusted == cwnd
    else:
        assert adjusted < cwnd


@given(cwnds)
def test_accelerations_and_decelerations_are_inverses(cwnd):
    import pytest

    assert apply_drai(apply_drai(cwnd, 5), 1) == pytest.approx(cwnd)
    assert apply_drai(apply_drai(cwnd, 4), 2) == pytest.approx(cwnd)


@given(levels)
def test_marking_is_exactly_the_deceleration_band(level):
    assert is_marked(level) == (apply_drai(10.0, level) < 10.0)
