"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.phy import Position, WirelessChannel
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=12345)


@pytest.fixture
def channel(sim: Simulator) -> WirelessChannel:
    """An empty wireless channel on the fixture simulator."""
    return WirelessChannel(sim)


def chain_points(n: int, spacing: float = 250.0):
    """n positions spaced ``spacing`` metres apart on the x axis."""
    return [Position(spacing * i, 0.0) for i in range(n)]
