"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim import EventScheduler, PeriodicTimer, Timer


def make() -> EventScheduler:
    return EventScheduler()


def test_timer_fires_once():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(sched.now))
    timer.start(1.5)
    sched.run()
    assert fired == [1.5]
    assert not timer.running


def test_timer_restart_replaces_pending_expiry():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(sched.now))
    timer.start(1.0)
    timer.restart(3.0)
    sched.run()
    assert fired == [3.0]


def test_timer_stop_cancels():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(1))
    timer.start(1.0)
    timer.stop()
    sched.run()
    assert fired == []


def test_timer_pause_resume_preserves_remaining_time():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(sched.now))
    timer.start(2.0)
    sched.schedule(0.5, timer.pause)
    sched.schedule(1.0, timer.resume)
    sched.run()
    # paused at 0.5 with 1.5 remaining, resumed at 1.0 -> fires at 2.5
    assert fired == [2.5]


def test_timer_pause_when_not_running_is_noop():
    sched = make()
    timer = Timer(sched, lambda: None)
    timer.pause()
    assert not timer.paused


def test_timer_resume_without_pause_is_noop():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(1))
    timer.resume()
    sched.run()
    assert fired == []


def test_timer_stop_discards_paused_remainder():
    sched = make()
    fired = []
    timer = Timer(sched, lambda: fired.append(1))
    timer.start(2.0)
    sched.schedule(0.5, timer.pause)
    sched.schedule(0.6, timer.stop)
    sched.schedule(0.7, timer.resume)
    sched.run()
    assert fired == []


def test_timer_expiry_property():
    sched = make()
    timer = Timer(sched, lambda: None)
    assert timer.expiry is None
    timer.start(4.0)
    assert timer.expiry == pytest.approx(4.0)


def test_periodic_timer_ticks_at_interval():
    sched = make()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
    timer.start()
    sched.schedule(3.5, timer.stop)
    sched.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_timer_custom_first_delay():
    sched = make()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
    timer.start(first_delay=0.25)
    sched.schedule(2.5, timer.stop)
    sched.run()
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_timer_rejects_nonpositive_interval():
    sched = make()
    with pytest.raises(ValueError):
        PeriodicTimer(sched, 0.0, lambda: None)
