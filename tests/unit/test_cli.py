"""Unit tests for the repro-muzha CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_knows_all_subcommands():
    parser = build_parser()
    for command in ("chain", "sweep", "cross", "dynamics", "tables"):
        args = parser.parse_args([command] if command == "tables" else [command])
        assert args.command == command


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 5.1" in out and "Table 5.2" in out
    assert "2Mbps" in out and "AODV" in out


def test_chain_command_runs_small_scenario(capsys):
    assert main(["chain", "--hops", "2", "--time", "3", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "kbps" in out


def test_chain_command_with_trace(capsys):
    assert main(
        ["chain", "--hops", "2", "--time", "2", "--variant", "muzha", "--trace"]
    ) == 0
    out = capsys.readouterr().out
    assert "cwnd" in out


def test_sweep_command(capsys):
    assert main(
        ["sweep", "--hops", "2", "--seeds", "1", "--time", "3", "--window", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "goodput" in out and "retransmits" in out


def test_cross_command(capsys):
    assert main(["cross", "--hops", "4", "--seeds", "1", "--time", "5"]) == 0
    out = capsys.readouterr().out
    assert "Jain index" in out


def test_dynamics_command(capsys):
    assert main(["dynamics", "--hops", "2", "--time", "25", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "final shares" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
