"""Unit tests for the repro-muzha CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_knows_all_subcommands():
    parser = build_parser()
    for command in ("chain", "sweep", "cross", "dynamics", "campaign", "tables"):
        args = parser.parse_args([command] if command == "tables" else [command])
        assert args.command == command
    assert parser.parse_args(["profile", "chain"]).command == "profile"


def test_profile_command_reports_hot_spots(tmp_path, capsys):
    out_path = tmp_path / "chain.prof"
    assert main([
        "profile", "chain", "--hops", "2", "--time", "2",
        "--limit", "5", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "function calls" in out
    assert "scheduler" in out  # the run loop must show up in the top rows
    assert out_path.exists()
    import pstats

    stats = pstats.Stats(str(out_path))
    assert stats.total_calls > 0


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 5.1" in out and "Table 5.2" in out
    assert "2Mbps" in out and "AODV" in out


def test_policy_params_value_errors_exit_cleanly():
    """Out-of-range params (ValueError, not TypeError) must not traceback."""
    with pytest.raises(SystemExit, match="bad --policy-params for 'hysteresis'"):
        main([
            "chain", "--hops", "2", "--time", "1",
            "--policy", "hysteresis", "--policy-params", '{"sustain_up": 0}',
        ])


def test_chain_command_runs_small_scenario(capsys):
    assert main(["chain", "--hops", "2", "--time", "3", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "kbps" in out


def test_chain_command_with_trace(capsys):
    assert main(
        ["chain", "--hops", "2", "--time", "2", "--variant", "muzha", "--trace"]
    ) == 0
    out = capsys.readouterr().out
    assert "cwnd" in out


def test_sweep_command(capsys):
    assert main(
        ["sweep", "--hops", "2", "--seeds", "1", "--time", "3", "--window", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "goodput" in out and "retransmits" in out


def test_cross_command(capsys):
    assert main(["cross", "--hops", "4", "--seeds", "1", "--time", "5"]) == 0
    out = capsys.readouterr().out
    assert "Jain index" in out


def test_dynamics_command(capsys):
    assert main(["dynamics", "--hops", "2", "--time", "25", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "final shares" in out


def test_campaign_command_cold_then_warm(tmp_path, capsys):
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha", "newreno",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--csv", str(tmp_path / "campaign.csv"),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 simulated, 0 cache hits" in out
    assert "campaign means" in out
    assert (tmp_path / "campaign.csv").exists()

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 simulated, 2 cache hits" in out
    assert "cache" in out


def test_campaign_command_no_cache_always_simulates(tmp_path, capsys):
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--no-cache", "--quiet",
    ]
    assert main(argv) == 0
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 simulated, 0 cache hits" in out


def test_campaign_command_clear_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--cache-dir", cache_dir, "--quiet",
    ]
    assert main(argv) == 0
    assert main(argv + ["--clear-cache"]) == 0
    out = capsys.readouterr().out
    assert "cache cleared: 1 entries removed" in out
    assert "1 simulated, 0 cache hits" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_command_writes_ndjson_and_manifest(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.ndjson"
    assert main([
        "trace", "chain", "--hops", "2", "--time", "2",
        "--variant", "newreno", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "records" in out
    lines = out_path.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert set(first) == {"t", "source", "event", "fields"}
    manifest = json.loads((tmp_path / "trace.ndjson.manifest.json").read_text())
    assert manifest["seed"] == 1
    assert manifest["config"]["sim_time"] == 2.0
    from repro.obs import validate_manifest_file, validate_trace_file

    assert validate_trace_file(out_path) == []
    assert validate_manifest_file(tmp_path / "trace.ndjson.manifest.json") == []


def test_trace_command_csv_and_event_filter(tmp_path, capsys):
    out_path = tmp_path / "trace.csv"
    assert main([
        "trace", "chain", "--hops", "2", "--time", "2",
        "--variant", "newreno", "--out", str(out_path),
        "--format", "csv", "--events", "tcp.cwnd", "mac.tx",
    ]) == 0
    header = out_path.read_text().splitlines()[0]
    assert header == "time,source,event,fields"
    body = out_path.read_text()
    assert "tcp.cwnd" in body
    assert "ifq.enqueue" not in body  # filtered out


def test_stats_command_prints_counters(capsys):
    assert main([
        "stats", "chain", "--hops", "2", "--time", "2",
        "--variant", "newreno",
    ]) == 0
    out = capsys.readouterr().out
    assert "mac.data_tx" in out
    assert "goodput" in out


def test_stats_command_json_snapshot(capsys):
    import json

    assert main([
        "stats", "chain", "--hops", "2", "--time", "2",
        "--variant", "newreno", "--json",
    ]) == 0
    snap = json.loads(capsys.readouterr().out)
    rollup = snap["rollups"]["global"]
    assert rollup["mac.data_tx"] > 0
    assert rollup["ifq.enqueued"] > 0
    assert rollup["tcp.data_sent"] > 0


@pytest.mark.parametrize("flag,value", [
    ("--workers", "0"),
    ("--workers", "-2"),
    ("--jobs", "0"),
    ("--jobs", "-1"),
    ("--heartbeat-interval", "0"),
    ("--heartbeat-interval", "-0.5"),
    ("--heartbeat-interval", "nan"),
    ("--drain-timeout", "-1"),
    ("--agents", "-1"),
])
def test_campaign_rejects_nonsense_numeric_knobs(flag, value, capsys):
    """Zero/negative pool sizes and periods die as clear argparse errors,
    not as a hung pool or a division by zero deep in the span engine."""
    from repro.cli import build_parser

    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["campaign", flag, value])
    assert excinfo.value.code == 2  # argparse usage error
    err = capsys.readouterr().err
    assert f"argument {flag}" in err


@pytest.mark.parametrize("flag,value", [
    ("--workers", "1"),
    ("--jobs", "4"),
    ("--heartbeat-interval", "0.25"),
    ("--drain-timeout", "0"),  # zero drain = terminate immediately, valid
    ("--agents", "0"),  # zero agents = external joiners only, valid
])
def test_campaign_accepts_boundary_numeric_knobs(flag, value):
    from repro.cli import build_parser

    args = build_parser().parse_args(["campaign", flag, value])
    assert args.command == "campaign"


def test_cluster_transport_flags_require_cluster_pool_mode(tmp_path):
    with pytest.raises(SystemExit, match="--pool-mode cluster"):
        main([
            "campaign", "--variants", "newreno", "--hops", "2",
            "--replications", "1", "--time", "0.1",
            "--cache-dir", str(tmp_path / "cache"),
            "--listen", "127.0.0.1:0",
        ])


def test_worker_command_rejects_bad_endpoint():
    with pytest.raises(SystemExit, match="HOST:PORT"):
        main(["worker", "--connect", "no-port-here"])
