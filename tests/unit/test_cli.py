"""Unit tests for the repro-muzha CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_knows_all_subcommands():
    parser = build_parser()
    for command in ("chain", "sweep", "cross", "dynamics", "campaign", "tables"):
        args = parser.parse_args([command] if command == "tables" else [command])
        assert args.command == command
    assert parser.parse_args(["profile", "chain"]).command == "profile"


def test_profile_command_reports_hot_spots(tmp_path, capsys):
    out_path = tmp_path / "chain.prof"
    assert main([
        "profile", "chain", "--hops", "2", "--time", "2",
        "--limit", "5", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "function calls" in out
    assert "scheduler" in out  # the run loop must show up in the top rows
    assert out_path.exists()
    import pstats

    stats = pstats.Stats(str(out_path))
    assert stats.total_calls > 0


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 5.1" in out and "Table 5.2" in out
    assert "2Mbps" in out and "AODV" in out


def test_chain_command_runs_small_scenario(capsys):
    assert main(["chain", "--hops", "2", "--time", "3", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "kbps" in out


def test_chain_command_with_trace(capsys):
    assert main(
        ["chain", "--hops", "2", "--time", "2", "--variant", "muzha", "--trace"]
    ) == 0
    out = capsys.readouterr().out
    assert "cwnd" in out


def test_sweep_command(capsys):
    assert main(
        ["sweep", "--hops", "2", "--seeds", "1", "--time", "3", "--window", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "goodput" in out and "retransmits" in out


def test_cross_command(capsys):
    assert main(["cross", "--hops", "4", "--seeds", "1", "--time", "5"]) == 0
    out = capsys.readouterr().out
    assert "Jain index" in out


def test_dynamics_command(capsys):
    assert main(["dynamics", "--hops", "2", "--time", "25", "--variant", "newreno"]) == 0
    out = capsys.readouterr().out
    assert "final shares" in out


def test_campaign_command_cold_then_warm(tmp_path, capsys):
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha", "newreno",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--csv", str(tmp_path / "campaign.csv"),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 simulated, 0 cache hits" in out
    assert "campaign means" in out
    assert (tmp_path / "campaign.csv").exists()

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 simulated, 2 cache hits" in out
    assert "cache" in out


def test_campaign_command_no_cache_always_simulates(tmp_path, capsys):
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--no-cache", "--quiet",
    ]
    assert main(argv) == 0
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 simulated, 0 cache hits" in out


def test_campaign_command_clear_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = [
        "campaign", "--hops", "2", "--variants", "muzha",
        "--replications", "1", "--time", "2", "--jobs", "1",
        "--cache-dir", cache_dir, "--quiet",
    ]
    assert main(argv) == 0
    assert main(argv + ["--clear-cache"]) == 0
    out = capsys.readouterr().out
    assert "cache cleared: 1 entries removed" in out
    assert "1 simulated, 0 cache hits" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
