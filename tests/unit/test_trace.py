"""Unit tests for the trace bus."""

from repro.sim import Simulator, TraceBus, TraceRecord, TraceRecorder


def test_subscribe_and_emit():
    bus = TraceBus()
    seen = []
    bus.subscribe("cwnd", seen.append)
    record = TraceRecord(1.0, "tcp", "cwnd", {"value": 4})
    bus.emit(record)
    assert seen == [record]


def test_wildcard_subscription_receives_everything():
    bus = TraceBus()
    seen = []
    bus.subscribe("*", seen.append)
    bus.emit(TraceRecord(1.0, "a", "x", {}))
    bus.emit(TraceRecord(2.0, "b", "y", {}))
    assert [r.event for r in seen] == ["x", "y"]


def test_wants_reflects_subscriptions():
    bus = TraceBus()
    assert not bus.wants("x")
    bus.subscribe("x", lambda r: None)
    assert bus.wants("x")
    assert not bus.wants("y")
    bus.subscribe("*", lambda r: None)
    assert bus.wants("y")


def test_recorder_collects_matching_records():
    bus = TraceBus()
    rec = TraceRecorder(bus, "drop")
    bus.emit(TraceRecord(1.0, "q", "drop", {}))
    bus.emit(TraceRecord(2.0, "q", "enqueue", {}))
    bus.emit(TraceRecord(3.0, "q", "drop", {}))
    assert len(rec) == 2
    assert [r.time for r in rec] == [1.0, 3.0]


def test_active_is_the_cheapest_gate():
    bus = TraceBus()
    assert not bus.active
    bus.subscribe("x", lambda r: None)
    assert bus.active


def test_hot_path_layers_gate_field_construction_on_wants():
    """The MAC and channel must not build trace-field dicts (or emit at all)
    on an unsubscribed run, and must publish once subscribed."""
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    # Unsubscribed: sim.emit must never even be reached — call sites gate on
    # wants() *before* building the keyword-field dict.
    net = build_chain(1, seed=3)
    install_static_routing(net.nodes, net.channel)
    start_ftp(net.sim, net.nodes[0], net.nodes[1], variant="newreno", window=2)

    def bomb(source, event, **fields):
        raise AssertionError(f"ungated trace emit: {source}/{event}")

    net.sim.emit = bomb
    net.sim.run(until=0.05)

    # Subscribed: the same scenario publishes gated mac.tx/phy.tx records.
    net2 = build_chain(1, seed=3)
    install_static_routing(net2.nodes, net2.channel)
    mac_rec = TraceRecorder(net2.sim.trace, "mac.tx")
    phy_rec = TraceRecorder(net2.sim.trace, "phy.tx")
    start_ftp(net2.sim, net2.nodes[0], net2.nodes[1], variant="newreno", window=2)
    net2.sim.run(until=0.05)
    assert len(mac_rec) > 0
    assert len(phy_rec) == len(mac_rec)  # one phy.tx per mac frame
    first = mac_rec.records[0]
    assert first.fields["kind"] == "RTS"
    assert set(first.fields) == {"kind", "src", "dst", "size_bytes"}


def test_simulator_emit_skips_when_no_subscriber():
    sim = Simulator(seed=1)
    sim.emit("src", "nobody-listens", value=1)  # must not raise


def test_simulator_emit_carries_time_and_fields():
    sim = Simulator(seed=1)
    seen = []
    sim.trace.subscribe("tick", seen.append)
    sim.after(2.5, lambda: sim.emit("clock", "tick", n=7))
    sim.run()
    assert len(seen) == 1
    assert seen[0].time == 2.5
    assert seen[0].fields == {"n": 7}


def test_unsubscribe_removes_callback():
    bus = TraceBus()
    seen = []
    bus.subscribe("x", seen.append)
    bus.unsubscribe("x", seen.append)
    bus.emit(TraceRecord(1.0, "s", "x", {}))
    assert seen == []
    assert not bus.wants("x")
    assert not bus.active


def test_unsubscribe_unknown_event_raises():
    import pytest

    bus = TraceBus()
    with pytest.raises(ValueError):
        bus.unsubscribe("never-subscribed", lambda r: None)


def test_unsubscribe_last_wildcard_recomputes_wants_all():
    bus = TraceBus()
    cb = lambda r: None  # noqa: E731
    bus.subscribe("*", cb)
    assert bus.wants("anything")
    bus.unsubscribe("*", cb)
    assert not bus.wants("anything")
    # A named subscription must survive wildcard removal.
    bus.subscribe("x", cb)
    bus.subscribe("*", cb)
    bus.unsubscribe("*", cb)
    assert bus.wants("x")
    assert not bus.wants("y")


def test_unsubscribe_keeps_other_callbacks_for_same_event():
    bus = TraceBus()
    first, second = [], []
    bus.subscribe("x", first.append)
    bus.subscribe("x", second.append)
    bus.unsubscribe("x", first.append)
    bus.emit(TraceRecord(1.0, "s", "x", {}))
    assert first == []
    assert len(second) == 1


def test_recorder_context_manager_detaches():
    bus = TraceBus()
    with TraceRecorder(bus, "drop") as rec:
        bus.emit(TraceRecord(1.0, "q", "drop", {}))
    bus.emit(TraceRecord(2.0, "q", "drop", {}))
    assert [r.time for r in rec] == [1.0]
    assert not bus.wants("drop")


def test_recorder_detach_is_idempotent_with_explicit_call():
    bus = TraceBus()
    rec = TraceRecorder(bus, "*")
    bus.emit(TraceRecord(1.0, "q", "drop", {}))
    rec.detach()
    bus.emit(TraceRecord(2.0, "q", "drop", {}))
    assert len(rec) == 1
    assert not bus.active
