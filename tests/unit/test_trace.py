"""Unit tests for the trace bus."""

from repro.sim import Simulator, TraceBus, TraceRecord, TraceRecorder


def test_subscribe_and_emit():
    bus = TraceBus()
    seen = []
    bus.subscribe("cwnd", seen.append)
    record = TraceRecord(1.0, "tcp", "cwnd", {"value": 4})
    bus.emit(record)
    assert seen == [record]


def test_wildcard_subscription_receives_everything():
    bus = TraceBus()
    seen = []
    bus.subscribe("*", seen.append)
    bus.emit(TraceRecord(1.0, "a", "x", {}))
    bus.emit(TraceRecord(2.0, "b", "y", {}))
    assert [r.event for r in seen] == ["x", "y"]


def test_wants_reflects_subscriptions():
    bus = TraceBus()
    assert not bus.wants("x")
    bus.subscribe("x", lambda r: None)
    assert bus.wants("x")
    assert not bus.wants("y")
    bus.subscribe("*", lambda r: None)
    assert bus.wants("y")


def test_recorder_collects_matching_records():
    bus = TraceBus()
    rec = TraceRecorder(bus, "drop")
    bus.emit(TraceRecord(1.0, "q", "drop", {}))
    bus.emit(TraceRecord(2.0, "q", "enqueue", {}))
    bus.emit(TraceRecord(3.0, "q", "drop", {}))
    assert len(rec) == 2
    assert [r.time for r in rec] == [1.0, 3.0]


def test_simulator_emit_skips_when_no_subscriber():
    sim = Simulator(seed=1)
    sim.emit("src", "nobody-listens", value=1)  # must not raise


def test_simulator_emit_carries_time_and_fields():
    sim = Simulator(seed=1)
    seen = []
    sim.trace.subscribe("tick", seen.append)
    sim.after(2.5, lambda: sim.emit("clock", "tick", n=7))
    sim.run()
    assert len(seen) == 1
    assert seen[0].time == 2.5
    assert seen[0].fields == {"n": 7}
