"""Unit tests for the TCP sink (cumulative ACKs, SACK blocks, MRAI echo)."""

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.sim import Simulator
from repro.transport import TcpSink, TcpSegment


def build_sink(sack=False):
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    node = Node(sim, channel, 1, Position(0))
    sink = TcpSink(sim, node, port=20, sack=sack)
    return sim, node, sink


def data_packet(seq, avbw_s=None, payload_bytes=1460):
    segment = TcpSegment("data", sport=10, dport=20, seq=seq, payload_bytes=payload_bytes)
    return Packet(
        src=0, dst=1, protocol="tcp", size_bytes=segment.wire_bytes(),
        payload=segment, avbw_s=avbw_s,
    )


def acks_of(node):
    return [p.payload for p in node.mac.queue._items] if False else None


class SinkHarness:
    """Captures the ACK packets the sink emits (bypassing the network)."""

    def __init__(self, sack=False):
        self.sim, self.node, self.sink = build_sink(sack)
        self.acks = []
        self.node.send = lambda packet: self.acks.append(packet)

    def deliver(self, seq, **kwargs):
        self.sink.receive_packet(data_packet(seq, **kwargs))

    def last_ack(self):
        return self.acks[-1].payload


def test_in_order_delivery_acks_next_expected():
    h = SinkHarness()
    h.deliver(0)
    h.deliver(1)
    assert h.sink.rcv_nxt == 2
    assert h.last_ack().ack == 2
    assert h.sink.delivered_packets == 2
    assert h.sink.delivered_bytes == 2 * 1460


def test_out_of_order_generates_duplicate_acks():
    h = SinkHarness()
    h.deliver(0)
    h.deliver(2)
    h.deliver(3)
    assert [p.payload.ack for p in h.acks] == [1, 1, 1]
    assert h.sink.delivered_packets == 1


def test_hole_fill_releases_buffered_segments():
    h = SinkHarness()
    h.deliver(0)
    h.deliver(2)
    h.deliver(3)
    h.deliver(1)
    assert h.sink.rcv_nxt == 4
    assert h.last_ack().ack == 4
    assert h.sink.delivered_packets == 4


def test_duplicate_data_counted_and_still_acked():
    h = SinkHarness()
    h.deliver(0)
    h.deliver(0)
    assert h.sink.duplicate_data == 1
    assert len(h.acks) == 2


def test_duplicate_out_of_order_counted():
    h = SinkHarness()
    h.deliver(5)
    h.deliver(5)
    assert h.sink.duplicate_data == 1


def test_ack_addressing_reverses_ports_and_hosts():
    h = SinkHarness()
    h.deliver(0)
    ack_packet = h.acks[0]
    assert ack_packet.dst == 0
    assert ack_packet.payload.dport == 10
    assert ack_packet.payload.sport == 20


def test_mrai_echo_copies_avbw_s_of_triggering_packet():
    h = SinkHarness()
    h.deliver(0, avbw_s=3)
    assert h.last_ack().echo_mrai == 3
    h.deliver(2, avbw_s=1)  # dup ack triggered by marked packet
    assert h.last_ack().echo_mrai == 1
    h.deliver(3, avbw_s=None)
    assert h.last_ack().echo_mrai is None


def test_sack_blocks_describe_out_of_order_runs():
    h = SinkHarness(sack=True)
    h.deliver(0)
    h.deliver(2)
    h.deliver(3)
    h.deliver(6)
    blocks = h.last_ack().sack_blocks
    assert blocks == ((2, 4), (6, 7))


def test_sack_blocks_capped_at_three():
    h = SinkHarness(sack=True)
    h.deliver(0)
    for seq in (2, 4, 6, 8, 10):
        h.deliver(seq)
    assert len(h.last_ack().sack_blocks) == 3


def test_sack_disabled_sends_no_blocks():
    h = SinkHarness(sack=False)
    h.deliver(0)
    h.deliver(2)
    assert h.last_ack().sack_blocks == ()


def test_delivery_timestamps_recorded():
    h = SinkHarness()
    assert h.sink.first_delivery is None
    h.deliver(0)
    assert h.sink.first_delivery is not None
    assert h.sink.last_delivery is not None


def test_non_data_segments_ignored():
    h = SinkHarness()
    ack_seg = TcpSegment("ack", sport=10, dport=20, ack=5)
    h.sink.receive_packet(
        Packet(src=0, dst=1, protocol="tcp", size_bytes=40, payload=ack_seg)
    )
    assert h.acks == []
