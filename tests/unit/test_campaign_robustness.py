"""Self-healing behaviour of the campaign engine: corrupted cache entries,
crashed workers, hung workers, and quarantine of units that exhaust their
retry budget.

Worker-fault injection monkeypatches ``campaign._execute_unit``; the
supervisor forks its workers, so children inherit the patch.  Cross-process
"fail only once" coordination uses sentinel files on disk."""

import json
import os
import time

import pytest

import repro.experiments.campaign as campaign
from repro.experiments import (
    CacheCorruptionWarning,
    CampaignCache,
    RetryPolicy,
    ScenarioConfig,
    chain_grid,
    run_campaign,
)


def tiny_grid(n_scenarios=1):
    config = ScenarioConfig(sim_time=0.5, window=4)
    return chain_grid(["newreno"], [2, 3][:n_scenarios], config=config)


def cache_files(root):
    return sorted(root.glob("*/*.json"))


# ---------------------------------------------------------------------------
# Cache corruption detection


def test_truncated_cache_entry_is_evicted_and_recomputed(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    baseline = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert baseline.executed == 1

    entry = cache_files(cache.root)[0]
    entry.write_text(entry.read_text()[: entry.stat().st_size // 2])

    with pytest.warns(CacheCorruptionWarning, match="invalid JSON"):
        again = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert again.executed == 1  # recomputed, not served from the bad entry
    assert again.cache_hits == 0
    assert cache.evictions == 1
    assert again.fingerprint() == baseline.fingerprint()

    # the rewritten entry is valid again
    third = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert third.cache_hits == 1 and third.executed == 0


def test_bit_flipped_cache_entry_fails_its_checksum(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    baseline = run_campaign(tiny_grid(), jobs=1, cache=cache)

    entry = cache_files(cache.root)[0]
    payload = json.loads(entry.read_text())
    payload["result"]["mac_drops"] = payload["result"]["mac_drops"] + 7
    entry.write_text(json.dumps(payload))  # valid JSON, corrupted content

    with pytest.warns(CacheCorruptionWarning, match="checksum mismatch"):
        again = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert again.executed == 1
    assert not entry.exists() or again.fingerprint() == baseline.fingerprint()
    assert again.fingerprint() == baseline.fingerprint()


def test_envelope_without_checksum_is_rejected(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    run_campaign(tiny_grid(), jobs=1, cache=cache)
    entry = cache_files(cache.root)[0]
    payload = json.loads(entry.read_text())
    del payload["checksum"]
    entry.write_text(json.dumps(payload))

    with pytest.warns(CacheCorruptionWarning, match="malformed envelope"):
        assert cache.get(entry.stem) is None
    assert not entry.exists()


# ---------------------------------------------------------------------------
# Worker crash / hang injection helpers


def _fail_once_then_delegate(sentinel, index, failure):
    """An ``_execute_unit`` stand-in that fails unit ``index`` exactly once."""
    real = campaign._execute_unit

    def patched(args):
        idx, spec = args
        if idx == index and not sentinel.exists():
            sentinel.touch()
            failure()
        return real(args)

    return patched


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt"])
def test_crashed_worker_is_retried_and_campaign_completes(
    tmp_path, monkeypatch, pool_mode
):
    sentinel = tmp_path / "crashed"
    monkeypatch.setattr(
        campaign, "_execute_unit",
        _fail_once_then_delegate(sentinel, 0, lambda: os._exit(17)),
    )
    result = run_campaign(
        tiny_grid(2), jobs=2, pool_mode=pool_mode,
        policy=RetryPolicy(max_retries=2, backoff=0.01),
    )
    assert sentinel.exists()
    assert result.complete
    assert [r.run.index for r in result.records] == [0, 1]


def test_warm_worker_crash_mid_batch_replacement_finishes_the_batch(
    tmp_path, monkeypatch
):
    """A warm worker dying partway through its batch must not lose the
    batch-mates queued behind the crash: they are requeued un-charged and a
    replacement worker (plus the retry of the crashed unit) finishes them."""
    sentinel = tmp_path / "mid-batch"
    # 2 scenarios x 4 replications = 8 units; with jobs=2 the first worker
    # is handed units 0-3 as one batch.  Unit 1 crashes after unit 0 has
    # already streamed its result back.
    monkeypatch.setattr(
        campaign, "_execute_unit",
        _fail_once_then_delegate(sentinel, 1, lambda: os._exit(31)),
    )
    result = run_campaign(
        tiny_grid(2), replications=4, jobs=2, pool_mode="warm",
        policy=RetryPolicy(max_retries=2, backoff=0.01),
    )
    assert sentinel.exists()
    assert result.complete
    assert [r.run.index for r in result.records] == list(range(8))


def test_persistent_crash_is_quarantined_not_fatal(tmp_path, monkeypatch):
    def patched(args):
        idx, spec = args
        if idx == 0:
            os._exit(23)
        return campaign.__dict__["__real_execute"](args)

    monkeypatch.setitem(campaign.__dict__, "__real_execute", campaign._execute_unit)
    monkeypatch.setattr(campaign, "_execute_unit", patched)
    result = run_campaign(
        tiny_grid(2), jobs=2,
        policy=RetryPolicy(max_retries=1, backoff=0.01),
    )
    assert not result.complete
    assert len(result.failed) == 1
    failure = result.failed[0]
    assert failure.run.index == 0
    assert failure.attempts == 2  # first try + one retry
    assert "exit code 23" in failure.error
    assert failure.to_dict()["error"] == failure.error
    # the healthy unit still produced its record
    assert [r.run.index for r in result.records] == [1]


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt"])
def test_hung_worker_hits_the_watchdog_then_retry_succeeds(
    tmp_path, monkeypatch, pool_mode
):
    sentinel = tmp_path / "hung"
    monkeypatch.setattr(
        campaign, "_execute_unit",
        _fail_once_then_delegate(sentinel, 0, lambda: time.sleep(3600)),
    )
    result = run_campaign(
        tiny_grid(), jobs=2, pool_mode=pool_mode,
        policy=RetryPolicy(task_timeout=1.0, max_retries=1, backoff=0.01),
    )
    assert sentinel.exists()
    assert result.complete


def test_permanent_hang_is_quarantined_with_a_timeout_error(monkeypatch):
    def patched(args):
        time.sleep(3600)

    monkeypatch.setattr(campaign, "_execute_unit", patched)
    result = run_campaign(
        tiny_grid(), jobs=2,
        policy=RetryPolicy(task_timeout=0.5, max_retries=0, backoff=0.01),
    )
    assert len(result.failed) == 1
    assert "timed out" in result.failed[0].error
    assert result.failed[0].attempts == 1
    assert result.records == []


def test_in_process_exception_is_quarantined(monkeypatch):
    def patched(args):
        raise RuntimeError("simulated defect")

    monkeypatch.setattr(campaign, "_execute_unit", patched)
    result = run_campaign(tiny_grid(), jobs=1,
                          policy=RetryPolicy(max_retries=1))
    assert len(result.failed) == 1
    assert "simulated defect" in result.failed[0].error
    assert result.failed[0].attempts == 2


def test_worker_exception_message_survives_the_pipe(monkeypatch):
    def patched(args):
        raise ValueError("broke in the child")

    monkeypatch.setattr(campaign, "_execute_unit", patched)
    result = run_campaign(
        tiny_grid(), jobs=2,
        policy=RetryPolicy(max_retries=0, backoff=0.01),
    )
    assert len(result.failed) == 1
    assert "ValueError: broke in the child" in result.failed[0].error


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt"])
def test_crash_once_env_hook(tmp_path, monkeypatch, pool_mode):
    sentinel = tmp_path / "env-crash"
    monkeypatch.setenv(campaign.CRASH_ONCE_ENV, f"{sentinel}:0")
    result = run_campaign(
        tiny_grid(), jobs=2, pool_mode=pool_mode,
        policy=RetryPolicy(max_retries=2, backoff=0.01),
    )
    assert sentinel.exists()  # the crash really happened...
    assert result.complete    # ...and the retry healed it


# ---------------------------------------------------------------------------
# Cache hits must short-circuit before worker dispatch


@pytest.mark.parametrize("pool_mode", ["warm", "per-attempt", "inproc"])
def test_fully_cached_campaign_never_dispatches_a_worker(
    tmp_path, monkeypatch, pool_mode
):
    """Cache hits are resolved in the coordinator, before any dispatch.

    With every unit cached, ``_execute_unit`` must never run — in any pool
    mode — so a campaign against a hot cache completes even when executing
    a unit would blow up.
    """
    cache = CampaignCache(tmp_path / "cache")
    cold = run_campaign(tiny_grid(2), jobs=1, cache=cache)
    assert cold.complete and cold.executed == 2

    def poisoned(args):
        raise AssertionError("cache hit must not reach _execute_unit")

    monkeypatch.setattr(campaign, "_execute_unit", poisoned)
    hot = run_campaign(tiny_grid(2), jobs=2, cache=cache, pool_mode=pool_mode)
    assert hot.complete
    assert hot.executed == 0
    assert hot.cache_hits == 2
    assert hot.fingerprint() == cold.fingerprint()


def test_quarantined_units_do_not_poison_the_cache(tmp_path, monkeypatch):
    def patched(args):
        raise RuntimeError("never completes")

    monkeypatch.setattr(campaign, "_execute_unit", patched)
    cache = CampaignCache(tmp_path / "cache")
    result = run_campaign(tiny_grid(), jobs=1, cache=cache,
                          policy=RetryPolicy(max_retries=0))
    assert len(result.failed) == 1
    assert len(cache_files(cache.root)) == 0

    # with the defect gone, the same campaign runs clean and caches
    monkeypatch.undo()
    healed = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert healed.complete and healed.executed == 1


# ---------------------------------------------------------------------------
# Durable cache writes (crash-safe put) and the mutation lock


def test_cache_put_fsyncs_the_tmp_file_and_its_directory(tmp_path, monkeypatch):
    """``put`` must fsync the tmp file before the rename and the directory
    after it — otherwise a power cut can leave a zero-length "committed"
    entry (the classic rename-without-fsync hole)."""
    synced_fds = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced_fds.append(os.fstat(fd).st_mode)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    cache = CampaignCache(tmp_path / "cache")
    cache.put("ab" + "0" * 14, {"result": {"x": 1}, "manifest": None})

    import stat
    kinds = [stat.S_ISDIR(mode) for mode in synced_fds]
    assert False in kinds, "the entry file itself was never fsynced"
    assert True in kinds, "the shard directory was never fsynced"
    assert kinds.index(False) < kinds.index(True), \
        "file must be durable before the rename is"


def test_truncated_at_rename_entry_is_evicted_and_recomputed(tmp_path):
    """A zero-length committed entry — what rename-before-fsync used to
    allow after a power cut — must read as a miss and heal on rerun."""
    cache = CampaignCache(tmp_path / "cache")
    baseline = run_campaign(tiny_grid(), jobs=1, cache=cache)
    entry = cache_files(cache.root)[0]
    entry.write_text("")  # truncated to nothing at the rename point

    with pytest.warns(CacheCorruptionWarning, match="invalid JSON"):
        again = run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert again.executed == 1 and again.cache_hits == 0
    assert again.fingerprint() == baseline.fingerprint()
    assert json.loads(entry.read_text())["result"]  # healed on disk


def test_cache_put_leaves_no_tmp_debris_and_creates_the_lock(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    run_campaign(tiny_grid(), jobs=1, cache=cache)
    assert list(cache.root.glob("*/*.tmp")) == []
    assert cache.lock_path.exists()  # the flock sidecar


def test_cache_put_failure_cleans_up_its_tmp_file(tmp_path, monkeypatch):
    cache = CampaignCache(tmp_path / "cache")

    def exploding_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(campaign.os, "replace", exploding_replace)
    with pytest.raises(OSError, match="disk full"):
        cache.put("cd" + "0" * 14, {"result": {"x": 1}, "manifest": None})
    monkeypatch.undo()
    assert list(cache.root.glob("*/*.tmp")) == []
    assert list(cache.root.glob("*/*.json")) == []


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(task_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)
    assert RetryPolicy(backoff=0.25).retry_delay(3) == 1.0
