"""Unit tests for the CSV exporters and their matching readers."""

import csv

import pytest

from repro.experiments.export import (
    ExportError,
    export_coexistence_csv,
    export_multi_series_csv,
    export_series_csv,
    export_sweep_csv,
    read_coexistence_csv,
    read_multi_series_csv,
    read_series_csv,
    read_sweep_csv,
)
from repro.experiments.figures import CoexistencePoint, SweepPoint, SweepResult


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def make_sweep():
    sweep = SweepResult(window=8, hops=(4, 8), variants=("muzha", "newreno"))
    for v in sweep.variants:
        for h in sweep.hops:
            sweep.points[(v, h)] = SweepPoint(
                goodput_kbps=100.0 + h, goodput_stdev=2.0,
                retransmits=float(h), timeouts=1.0, samples=3,
            )
    return sweep


def test_sweep_csv_schema(tmp_path):
    path = export_sweep_csv(make_sweep(), tmp_path / "sweep.csv")
    rows = read_rows(path)
    assert rows[0] == [
        "window", "hops", "variant", "goodput_kbps", "goodput_stdev",
        "retransmits", "timeouts", "samples",
    ]
    assert len(rows) == 1 + 4
    assert rows[1][:3] == ["8", "4", "muzha"]
    assert float(rows[1][3]) == 104.0


def test_series_csv(tmp_path):
    path = export_series_csv(
        [(0.0, 1.0), (1.5, 2.5)], tmp_path / "trace.csv", y_label="cwnd"
    )
    rows = read_rows(path)
    assert rows[0] == ["time_s", "cwnd"]
    assert float(rows[2][1]) == 2.5


def test_multi_series_csv(tmp_path):
    path = export_multi_series_csv(
        {"a": [(0.0, 1.0)], "b": [(0.0, 2.0), (1.0, 3.0)]},
        tmp_path / "dyn.csv",
    )
    rows = read_rows(path)
    assert rows[0] == ["series", "time_s", "value"]
    assert len(rows) == 4
    assert rows[1][0] == "a"


def test_coexistence_csv(tmp_path):
    points = [CoexistencePoint(4, 120.0, 80.0, 0.96)]
    path = export_coexistence_csv(points, "newreno", "muzha", tmp_path / "x.csv")
    rows = read_rows(path)
    assert rows[1] == ["4", "newreno", "120.000", "muzha", "80.000", "0.9600"]


def test_creates_missing_directories(tmp_path):
    path = export_series_csv([(0.0, 0.0)], tmp_path / "deep" / "dir" / "f.csv")
    assert path.exists()


# ---------------------------------------------------------------------------
# Round trips: export -> read recovers the original data


def test_sweep_round_trip(tmp_path):
    original = make_sweep()
    loaded = read_sweep_csv(export_sweep_csv(original, tmp_path / "sweep.csv"))
    assert loaded.window == original.window
    assert tuple(loaded.hops) == tuple(original.hops)
    assert tuple(loaded.variants) == tuple(original.variants)
    for key, point in original.points.items():
        got = loaded.points[key]
        assert got.goodput_kbps == pytest.approx(point.goodput_kbps, abs=1e-3)
        assert got.retransmits == pytest.approx(point.retransmits, abs=1e-3)
        assert got.samples == point.samples


def test_series_round_trip(tmp_path):
    series = [(0.0, 1.0), (1.25, 2.5), (3.0, 0.125)]
    path = export_series_csv(series, tmp_path / "s.csv", y_label="cwnd")
    loaded = read_series_csv(path)
    assert loaded == pytest.approx(series, abs=1e-6)


def test_multi_series_round_trip(tmp_path):
    data = {"muzha": [(0.0, 1.0), (1.0, 2.0)], "vegas": [(0.5, 3.0)]}
    path = export_multi_series_csv(data, tmp_path / "m.csv")
    loaded = read_multi_series_csv(path)
    assert set(loaded) == set(data)
    for name, series in data.items():
        assert loaded[name] == pytest.approx(series, abs=1e-6)


def test_coexistence_round_trip(tmp_path):
    points = [CoexistencePoint(4, 120.0, 80.0, 0.96),
              CoexistencePoint(8, 60.0, 55.0, 0.99)]
    path = export_coexistence_csv(points, "newreno", "muzha", tmp_path / "x.csv")
    label_a, label_b, loaded = read_coexistence_csv(path)
    assert (label_a, label_b) == ("newreno", "muzha")
    assert [p.hops for p in loaded] == [4, 8]
    assert loaded[0].goodput_a_kbps == pytest.approx(120.0)
    assert loaded[1].fairness == pytest.approx(0.99)


# ---------------------------------------------------------------------------
# Malformed inputs: every reader names the file and offending line


def write_lines(tmp_path, *lines):
    path = tmp_path / "bad.csv"
    path.write_text("\n".join(lines) + "\n")
    return path


def test_read_sweep_rejects_bad_header(tmp_path):
    path = write_lines(tmp_path, "nope,nope", "1,2")
    with pytest.raises(ExportError, match="bad header"):
        read_sweep_csv(path)


def test_read_sweep_rejects_short_row(tmp_path):
    header = "window,hops,variant,goodput_kbps,goodput_stdev,retransmits,timeouts,samples"
    path = write_lines(tmp_path, header, "8,4,muzha,100.0")
    with pytest.raises(ExportError, match=r"bad\.csv:2.*columns"):
        read_sweep_csv(path)


def test_read_sweep_rejects_non_numeric_cell(tmp_path):
    header = "window,hops,variant,goodput_kbps,goodput_stdev,retransmits,timeouts,samples"
    path = write_lines(tmp_path, header, "8,4,muzha,fast,0.0,0.0,0.0,3")
    with pytest.raises(ExportError, match="goodput_kbps"):
        read_sweep_csv(path)


def test_read_sweep_rejects_mixed_windows(tmp_path):
    header = "window,hops,variant,goodput_kbps,goodput_stdev,retransmits,timeouts,samples"
    path = write_lines(tmp_path, header,
                       "8,4,muzha,1.0,0.0,0.0,0.0,3",
                       "4,8,muzha,1.0,0.0,0.0,0.0,3")
    with pytest.raises(ExportError, match="mixed windows"):
        read_sweep_csv(path)


def test_read_sweep_rejects_empty_file(tmp_path):
    path = write_lines(tmp_path, "")
    with pytest.raises(ExportError):
        read_sweep_csv(path)


def test_read_series_rejects_non_numeric_row(tmp_path):
    path = write_lines(tmp_path, "time_s,cwnd", "0.0,1.0", "one,2.0")
    with pytest.raises(ExportError, match=r"bad\.csv:3"):
        read_series_csv(path)


def test_read_series_tolerates_trailing_blank_line(tmp_path):
    path = write_lines(tmp_path, "time_s,v", "0.0,1.0", "")
    assert read_series_csv(path) == [(0.0, 1.0)]


def test_read_multi_series_rejects_extra_column(tmp_path):
    path = write_lines(tmp_path, "series,time_s,value", "a,0.0,1.0,9")
    with pytest.raises(ExportError, match="columns"):
        read_multi_series_csv(path)


def test_read_coexistence_rejects_inconsistent_labels(tmp_path):
    header = "hops,variant_a,goodput_a_kbps,variant_b,goodput_b_kbps,jain_index"
    path = write_lines(tmp_path, header,
                       "4,newreno,1.0,muzha,2.0,0.9",
                       "8,vegas,1.0,muzha,2.0,0.9")
    with pytest.raises(ExportError, match="inconsistent variant labels"):
        read_coexistence_csv(path)


def test_read_missing_file_raises_export_error(tmp_path):
    with pytest.raises(ExportError, match="cannot read"):
        read_multi_series_csv(tmp_path / "absent.csv")
