"""Unit tests for the CSV exporters."""

import csv

from repro.experiments.export import (
    export_coexistence_csv,
    export_multi_series_csv,
    export_series_csv,
    export_sweep_csv,
)
from repro.experiments.figures import CoexistencePoint, SweepPoint, SweepResult


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def make_sweep():
    sweep = SweepResult(window=8, hops=(4, 8), variants=("muzha", "newreno"))
    for v in sweep.variants:
        for h in sweep.hops:
            sweep.points[(v, h)] = SweepPoint(
                goodput_kbps=100.0 + h, goodput_stdev=2.0,
                retransmits=float(h), timeouts=1.0, samples=3,
            )
    return sweep


def test_sweep_csv_schema(tmp_path):
    path = export_sweep_csv(make_sweep(), tmp_path / "sweep.csv")
    rows = read_rows(path)
    assert rows[0] == [
        "window", "hops", "variant", "goodput_kbps", "goodput_stdev",
        "retransmits", "timeouts", "samples",
    ]
    assert len(rows) == 1 + 4
    assert rows[1][:3] == ["8", "4", "muzha"]
    assert float(rows[1][3]) == 104.0


def test_series_csv(tmp_path):
    path = export_series_csv(
        [(0.0, 1.0), (1.5, 2.5)], tmp_path / "trace.csv", y_label="cwnd"
    )
    rows = read_rows(path)
    assert rows[0] == ["time_s", "cwnd"]
    assert float(rows[2][1]) == 2.5


def test_multi_series_csv(tmp_path):
    path = export_multi_series_csv(
        {"a": [(0.0, 1.0)], "b": [(0.0, 2.0), (1.0, 3.0)]},
        tmp_path / "dyn.csv",
    )
    rows = read_rows(path)
    assert rows[0] == ["series", "time_s", "value"]
    assert len(rows) == 4
    assert rows[1][0] == "a"


def test_coexistence_csv(tmp_path):
    points = [CoexistencePoint(4, 120.0, 80.0, 0.96)]
    path = export_coexistence_csv(points, "newreno", "muzha", tmp_path / "x.csv")
    rows = read_rows(path)
    assert rows[1] == ["4", "newreno", "120.000", "muzha", "80.000", "0.9600"]


def test_creates_missing_directories(tmp_path):
    path = export_series_csv([(0.0, 0.0)], tmp_path / "deep" / "dir" / "f.csv")
    assert path.exists()
