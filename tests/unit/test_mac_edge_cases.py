"""Edge-case unit tests for the DCF MAC state machine."""

import pytest

from repro.mac import BROADCAST, DcfMac, DcfState, FrameKind, MacFrame, MacParams, QueuedPacket
from repro.net.queues import DropTailQueue
from repro.phy import Position, Radio, WirelessChannel
from repro.sim import Simulator


class UpperLayer:
    def __init__(self):
        self.delivered = []
        self.tx_ok = []
        self.failures = []

    def mac_deliver(self, packet, from_addr):
        self.delivered.append((packet, from_addr))

    def mac_tx_ok(self, next_hop, packet):
        self.tx_ok.append((next_hop, packet))

    def mac_link_failure(self, next_hop, packet):
        self.failures.append((next_hop, packet))


def build(positions, seed=3):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    macs, uppers, queues = [], [], []
    for i, pos in enumerate(positions):
        radio = Radio(sim, i)
        channel.register(radio, pos)
        mac = DcfMac(sim, channel, radio, i)
        queue = DropTailQueue(50)
        upper = UpperLayer()
        mac.queue = queue
        mac.listener = upper
        queue.on_wakeup = mac.wakeup
        macs.append(mac)
        uppers.append(upper)
        queues.append(queue)
    return sim, channel, macs, uppers, queues


def test_cts_for_wrong_peer_is_ignored():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    queues[0].enqueue(QueuedPacket(object(), next_hop=1, size_bytes=500))
    sim.run(until=0.001)  # somewhere into contention / RTS
    # inject a CTS claiming to come from an unrelated station
    bogus = MacFrame(FrameKind.CTS, src=7, dst=0, size_bytes=14, duration=0.0)
    macs[0].phy_receive(bogus)
    sim.run(until=0.2)
    # the genuine exchange must still have completed exactly once
    assert len(uppers[1].delivered) == 1


def test_stale_ack_after_timeout_is_ignored():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    ack = MacFrame(FrameKind.ACK, src=1, dst=0, size_bytes=14, duration=0.0)
    macs[0].phy_receive(ack)  # no exchange in progress
    assert macs[0].state is DcfState.IDLE


def test_rts_refused_while_nav_busy():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    macs[1].nav.set(sim.now + 1.0)
    rts = MacFrame(FrameKind.RTS, src=0, dst=1, size_bytes=20, duration=0.01)
    macs[1].phy_receive(rts)
    sim.run(until=0.1)
    assert macs[1].counters.cts_tx == 0


def test_overheard_rts_sets_nav():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    rts = MacFrame(FrameKind.RTS, src=5, dst=9, size_bytes=20, duration=0.02)
    macs[1].phy_receive(rts)
    assert macs[1].nav.busy(sim.now + 0.01)
    assert not macs[1].nav.busy(sim.now + 0.03)


def test_zero_duration_frames_do_not_set_nav():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    ack = MacFrame(FrameKind.ACK, src=5, dst=9, size_bytes=14, duration=0.0)
    macs[1].phy_receive(ack)
    assert not macs[1].nav.busy(sim.now)


def test_queue_drains_completely_under_load():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    for i in range(40):
        queues[0].enqueue(QueuedPacket(i, next_hop=1, size_bytes=1460))
    sim.run(until=5.0)
    assert len(queues[0]) == 0
    assert len(uppers[1].delivered) == 40
    assert [p for p, _ in uppers[1].delivered] == list(range(40))


def test_broadcast_storm_without_collisions_all_delivered():
    sim, channel, macs, uppers, queues = build(
        [Position(0), Position(200), Position(-200)]
    )
    for i in range(10):
        queues[0].enqueue(QueuedPacket(i, next_hop=BROADCAST, size_bytes=100))
    sim.run(until=2.0)
    assert len(uppers[1].delivered) == 10
    assert len(uppers[2].delivered) == 10


def test_competing_senders_share_the_medium():
    """Two saturated senders to a common receiver: DCF must serve both."""
    sim, channel, macs, uppers, queues = build(
        [Position(0), Position(200), Position(400)]
    )
    for i in range(20):
        queues[0].enqueue(QueuedPacket(("a", i), next_hop=1, size_bytes=1460))
        queues[2].enqueue(QueuedPacket(("b", i), next_hop=1, size_bytes=1460))
    sim.run(until=5.0)
    from_a = sum(1 for p, src in uppers[1].delivered if src == 0)
    from_b = sum(1 for p, src in uppers[1].delivered if src == 2)
    assert from_a == 20
    assert from_b == 20


def test_eifs_applied_after_rx_error():
    sim, channel, macs, uppers, queues = build([Position(0), Position(200)])
    macs[0].phy_rx_error()
    assert macs[0]._use_eifs
    # a correctly decoded frame clears the EIFS obligation
    ack = MacFrame(FrameKind.ACK, src=5, dst=9, size_bytes=14, duration=0.0)
    macs[0].phy_receive(ack)
    assert not macs[0]._use_eifs


def test_custom_mac_params_respected():
    params = MacParams(rts_threshold=10_000)  # data below threshold: no RTS
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    r0, r1 = Radio(sim, 0), Radio(sim, 1)
    channel.register(r0, Position(0))
    channel.register(r1, Position(200))
    m0 = DcfMac(sim, channel, r0, 0, params=params)
    m1 = DcfMac(sim, channel, r1, 1, params=params)
    q0 = DropTailQueue(10)
    u0, u1 = UpperLayer(), UpperLayer()
    m0.queue = q0
    m0.listener = u0
    m1.listener = u1
    m1.queue = DropTailQueue(10)
    q0.on_wakeup = m0.wakeup
    q0.enqueue(QueuedPacket(object(), next_hop=1, size_bytes=500))
    sim.run(until=0.5)
    assert m0.counters.rts_tx == 0  # went straight to DATA
    assert len(u1.delivered) == 1
