"""Unit tests for the DRAI: Table 5.2 semantics and the fuzzy estimator."""

import pytest

from repro.core import (
    DECELERATION_BAND,
    DRAI_TABLE,
    MAX_DRAI,
    MIN_DRAI,
    DraiEstimator,
    DraiParams,
    QueueRttDrai,
    apply_drai,
    compute_drai,
    install_drai,
    is_marked,
)
from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.sim import Simulator

P = DraiParams()


class TestTable52:
    """Table 5.2: the DRAI -> cwnd adjustment mapping."""

    def test_level5_doubles(self):
        assert apply_drai(4.0, 5) == 8.0

    def test_level4_adds_one(self):
        assert apply_drai(4.0, 4) == 5.0

    def test_level3_holds(self):
        assert apply_drai(4.0, 3) == 4.0

    def test_level2_subtracts_one(self):
        assert apply_drai(4.0, 2) == 3.0

    def test_level1_halves(self):
        assert apply_drai(4.0, 1) == 2.0

    def test_table_covers_all_levels(self):
        assert sorted(DRAI_TABLE) == [1, 2, 3, 4, 5]
        assert MIN_DRAI == 1 and MAX_DRAI == 5


class TestMarking:
    def test_deceleration_band_is_marked(self):
        assert is_marked(1)
        assert is_marked(2)
        assert DECELERATION_BAND == 2

    def test_accel_and_hold_not_marked(self):
        assert not is_marked(3)
        assert not is_marked(4)
        assert not is_marked(5)

    def test_missing_echo_is_unmarked(self):
        assert not is_marked(None)


class TestComputeDrai:
    def test_idle_node_recommends_aggressive_acceleration(self):
        assert compute_drai(0.0, 0.0, 0.0, P) == 5

    def test_busy_medium_empty_queue_moderate_acceleration(self):
        assert compute_drai(0.0, 0.6, 0.1, P) == 4

    def test_saturated_medium_holds(self):
        assert compute_drai(0.0, 0.95, 0.1, P) == 3

    def test_standing_queue_stabilizes(self):
        assert compute_drai(2.0, 0.5, 0.2, P) == 3

    def test_medium_queue_decelerates(self):
        assert compute_drai((P.queue_soft_hi + P.queue_hard_lo) / 2, 0.5, 0.2, P) == 2

    def test_large_queue_decelerates_aggressively(self):
        assert compute_drai(20.0, 0.5, 0.2, P) == 1

    def test_saturated_mac_decelerates_even_with_empty_queue(self):
        assert compute_drai(0.0, 0.5, 0.9, P) == 2

    def test_moderate_mac_occupancy_stabilizes(self):
        mid = (P.occ_stab_hi + P.occ_sat_lo) / 2
        assert compute_drai(0.0, 0.5, mid, P) == 3

    def test_monotone_in_queue(self):
        """DRAI must never recommend faster sending as the queue grows."""
        levels = [
            compute_drai(q / 4.0, 0.5, 0.2, P) for q in range(0, 80)
        ]
        assert all(a >= b for a, b in zip(levels, levels[1:]))

    def test_monotone_in_occupancy(self):
        levels = [compute_drai(0.0, 0.5, o / 100.0, P) for o in range(0, 101)]
        assert all(a >= b for a, b in zip(levels, levels[1:]))


class TestEstimator:
    def build(self):
        sim = Simulator(seed=1)
        channel = WirelessChannel(sim)
        node = Node(sim, channel, 0, Position(0))
        return sim, node

    def test_initial_drai_is_max(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node)
        assert est.drai == MAX_DRAI

    def test_stamp_lowers_avbw_s_to_own_drai(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node)
        est.drai = 2
        pkt = Packet(src=0, dst=1, protocol="tcp", size_bytes=100, avbw_s=5)
        est.stamp(pkt)
        assert pkt.avbw_s == 2

    def test_stamp_never_raises_avbw_s(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node)
        est.drai = 4
        pkt = Packet(src=0, dst=1, protocol="tcp", size_bytes=100, avbw_s=1)
        est.stamp(pkt)
        assert pkt.avbw_s == 1

    def test_stamp_ignores_packets_without_option(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node)
        est.drai = 1
        pkt = Packet(src=0, dst=1, protocol="tcp", size_bytes=100)
        est.stamp(pkt)
        assert pkt.avbw_s is None

    def test_sampling_updates_level_counts(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node).install()
        sim.run(until=1.0)
        assert sum(est.level_counts.values()) >= 30  # ~1s / 30ms

    def test_idle_node_converges_to_5(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node).install()
        sim.run(until=1.0)
        assert est.drai == 5

    def test_queue_buildup_lowers_published_drai(self):
        sim, node = self.build()
        est = DraiEstimator(sim, node).install()
        # Fill the IFQ to a dead next hop; MAC will chew slowly on head.
        for i in range(20):
            node.ifq.enqueue(
                __import__("repro.mac.dcf", fromlist=["QueuedPacket"]).QueuedPacket(
                    object(), next_hop=5, size_bytes=1000
                )
            )
        sim.run(until=1.0)
        # While the backlog stood, deceleration levels must have been
        # published (the queue drains by the end of the run, so check the
        # histogram rather than the final value).
        assert est.level_counts[1] + est.level_counts[2] > 0

    def test_install_drai_attaches_to_every_node(self):
        sim = Simulator(seed=1)
        channel = WirelessChannel(sim)
        nodes = [Node(sim, channel, i, Position(250.0 * i)) for i in range(3)]
        estimators = install_drai(nodes, sim)
        assert set(estimators) == {0, 1, 2}
        for node in nodes:
            assert len(node.stampers) == 1


class TestQueueRttDrai:
    def build(self, **kwargs):
        sim = Simulator(seed=1)
        channel = WirelessChannel(sim)
        node = Node(sim, channel, 0, Position(0))
        return sim, node, QueueRttDrai(sim, node, **kwargs)

    def test_rapid_queue_growth_demotes_one_level(self):
        _, _, est = self.build(growth_threshold=2.0)
        # queue jumped 0 -> 5 since last sample: plain level would be 3ish
        level_plain = compute_drai(5.0, 0.0, 0.0, est.params)
        est.queue_trend = 5.0  # the estimator's shared window bookkeeping
        level = est._compute(5.0, 0.0, 0.0)
        assert level == max(MIN_DRAI, level_plain - 1)
        # unchanged queue: no growth, no demotion
        est.queue_trend = 0.0
        assert est._compute(5.0, 0.0, 0.0) == level_plain

    def test_sampling_window_updates_shared_trend(self):
        """The growth bookkeeping lives in the base estimator now: each
        sample leaves ``queue_trend`` = delta of the effective backlog."""
        sim, node, est = self.build(growth_threshold=2.0)
        est.install()
        from repro.mac.dcf import QueuedPacket

        for _ in range(12):
            node.ifq.enqueue(QueuedPacket(object(), next_hop=5, size_bytes=1000))
        prev = est._prev_queue
        est._sample()
        assert est.queue_trend == pytest.approx(est._prev_queue - prev)
        assert est.queue_trend > 0.0

    def test_window_boundary_sample_is_well_defined(self):
        """Regression: a sample landing exactly on the previous sample's
        timestamp (zero-width window) must not divide by zero and must
        contribute zero utilisation/trend, not garbage."""
        sim, node, est = self.build()
        est.install()
        sim.run(until=10 * est.params.sample_interval)
        samples = sum(est.level_counts.values())
        est._sample()  # same sim.now as the last periodic tick
        est._sample()  # zero-width window, same (empty) backlog
        assert sum(est.level_counts.values()) == samples + 2
        assert 0.0 <= est.utilization <= 1.0
        assert 0.0 <= est.occupancy <= 1.0
        assert est.queue_trend == 0.0
        assert est.drai == MAX_DRAI  # idle node: boundary samples stay 5
