"""A lightweight harness for driving TCP senders without a network.

``FakeNode`` captures transmitted packets; tests feed ACK segments straight
into the sender and advance a real simulator clock for timer behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim import Simulator
from repro.transport.segments import TcpSegment


class FakeNode:
    """Just enough of a Node for a TCP sender to live on."""

    def __init__(self, node_id: int = 0) -> None:
        self.node_id = node_id
        self.sent: List[Packet] = []
        self.port_handlers = {}

    def bind_port(self, port, handler):
        if port in self.port_handlers:
            raise ValueError(f"port {port} already bound")
        self.port_handlers[port] = handler

    def send(self, packet: Packet) -> None:
        self.sent.append(packet)


def make_sender(cls, sim: Optional[Simulator] = None, **kwargs):
    """Create a sender of class ``cls`` on a fresh FakeNode, started at 0."""
    sim = sim or Simulator(seed=1)
    node = FakeNode()
    defaults = dict(dst=9, sport=10, dport=20, window=32)
    defaults.update(kwargs)
    sender = cls(sim, node, **defaults)
    sender.start(at=0.0)
    sim.run(max_events=1)  # run the start event so the window fills
    return sim, node, sender


def ack(sender, ack_no: int, echo_mrai=None, sacks: Tuple = ()) -> None:
    """Deliver a cumulative ACK segment to ``sender``."""
    segment = TcpSegment(
        "ack",
        sport=sender.dport,
        dport=sender.sport,
        ack=ack_no,
        sack_blocks=tuple(sacks),
        echo_mrai=echo_mrai,
    )
    packet = Packet(
        src=sender.dst,
        dst=sender.node.node_id,
        protocol="tcp",
        size_bytes=segment.wire_bytes(),
        payload=segment,
    )
    sender.receive_packet(packet)


def sent_seqs(node: FakeNode) -> List[int]:
    """Sequence numbers of all data segments the node transmitted."""
    return [p.payload.seq for p in node.sent if p.payload.is_data]
