"""Additional sender edge cases shared across variants."""

import pytest

from repro.core import TcpMuzha
from repro.transport import TcpNewReno, TcpTahoe

from .tcp_harness import ack, make_sender, sent_seqs


class TestWindowClamps:
    def test_muzha_ff_inflation_respects_advertised_window(self):
        sim, node, sender = make_sender(TcpMuzha, window=4)
        for _ in range(3):
            ack(sender, sender.snd_nxt, echo_mrai=5)
        assert sender.cwnd == 4.0
        una = sender.snd_una
        for _ in range(6):
            ack(sender, una, echo_mrai=1)
        assert sender.cwnd <= 4.0  # clamp holds through inflation

    def test_cwnd_never_below_one(self):
        sim, node, sender = make_sender(TcpMuzha)
        for _ in range(10):
            ack(sender, sender.snd_nxt, echo_mrai=1)
        assert sender.cwnd >= 1.0


class TestDupackEdge:
    def test_dupacks_without_outstanding_data_are_ignored(self):
        sim, node, sender = make_sender(TcpTahoe, max_packets=1)
        ack(sender, 1)  # transfer complete, nothing outstanding
        before = sender.stats.dupacks
        ack(sender, 1)
        ack(sender, 1)
        ack(sender, 1)
        assert sender.stats.dupacks == before
        assert sender.stats.fast_retransmits == 0

    def test_dupack_counter_resets_on_new_ack(self):
        sim, node, sender = make_sender(TcpNewReno)
        for i in range(1, 6):
            ack(sender, i)
        ack(sender, 5)
        ack(sender, 5)
        assert sender.dupacks == 2
        ack(sender, 6)
        assert sender.dupacks == 0

    def test_recovery_survives_interleaved_stale_acks(self):
        sim, node, sender = make_sender(TcpNewReno)
        for i in range(1, 9):
            ack(sender, i)
        for _ in range(3):
            ack(sender, 8)
        assert sender.in_recovery
        ack(sender, 3)  # stale (below snd_una): must be ignored
        assert sender.in_recovery
        assert sender.snd_una == 8


class TestRetransmitTimerEdge:
    def test_rto_noop_when_nothing_outstanding(self):
        sim, node, sender = make_sender(TcpTahoe, max_packets=1)
        ack(sender, 1)
        timeouts_before = sender.stats.timeouts
        sender._on_rto_expiry()  # stray expiry
        assert sender.stats.timeouts == timeouts_before

    def test_timed_seq_invalidated_by_retransmission(self):
        sim, node, sender = make_sender(TcpTahoe)
        assert sender._timed_seq == 0
        sim.run(until=10.0)  # RTO retransmits seq 0
        assert sender.stats.timeouts >= 1
        # Karn: the retransmitted segment is no longer timed
        assert sender._timed_seq != 0 or sender._timed_seq is None


class TestMuzhaFeedbackEdge:
    def test_mrai_out_of_band_values_rejected_gracefully(self):
        sim, node, sender = make_sender(TcpMuzha)
        with pytest.raises(KeyError):
            ack(sender, 1, echo_mrai=9)  # invalid level surfaces loudly

    def test_alternating_mrai_oscillates_bounded(self):
        sim, node, sender = make_sender(TcpMuzha, window=16)
        values = []
        for i in range(24):
            mrai = 4 if i % 2 == 0 else 2
            ack(sender, sender.snd_nxt, echo_mrai=mrai)
            values.append(sender.cwnd)
        assert max(values) <= 16.0
        assert min(values) >= 1.0
        # +1/-1 alternation keeps the window within a tight band
        assert max(values) - min(values) <= 3.0
