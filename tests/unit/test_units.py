"""Unit tests for unit helpers."""

import pytest

from repro.sim import units


def test_time_conversions():
    assert units.microseconds(20) == pytest.approx(20e-6)
    assert units.milliseconds(3) == pytest.approx(3e-3)
    assert units.seconds(2) == 2.0


def test_rate_conversions():
    assert units.mbps(2) == 2e6
    assert units.kbps(512) == 512e3


def test_tx_duration():
    # 1500 bytes at 2 Mb/s = 6 ms
    assert units.tx_duration(1500, units.mbps(2)) == pytest.approx(0.006)


def test_tx_duration_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.tx_duration(100, 0)


def test_propagation_delay():
    assert units.propagation_delay(300.0) == pytest.approx(1e-6)


def test_bits():
    assert units.bits(10) == 80
