"""Unit tests for seeded RNG streams."""

import pytest

from repro.sim import RngRegistry, Simulator, derive_run_seed, derive_seed


def test_same_master_same_stream_is_reproducible():
    a = RngRegistry(7).stream("mac")
    b = RngRegistry(7).stream("mac")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    reg = RngRegistry(7)
    xs = [reg.stream("mac").random() for _ in range(5)]
    ys = [reg.stream("phy").random() for _ in range(5)]
    assert xs != ys


def test_different_masters_give_different_sequences():
    xs = [RngRegistry(1).stream("mac").random() for _ in range(5)]
    ys = [RngRegistry(2).stream("mac").random() for _ in range(5)]
    assert xs != ys


def test_stream_is_cached():
    reg = RngRegistry(1)
    assert reg.stream("x") is reg.stream("x")
    assert "x" in reg


def test_derive_seed_is_deterministic_and_nonnegative():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")
    assert derive_seed(42, "abc") >= 0


def test_derive_run_seed_depends_on_all_key_parts():
    base = derive_run_seed(1, "scenario-a", 0)
    assert base == derive_run_seed(1, "scenario-a", 0)
    assert base != derive_run_seed(2, "scenario-a", 0)
    assert base != derive_run_seed(1, "scenario-b", 0)
    assert base != derive_run_seed(1, "scenario-a", 1)
    assert base >= 0


def test_derive_run_seed_rejects_negative_replication():
    with pytest.raises(ValueError):
        derive_run_seed(1, "scenario", -1)


def test_simulator_exposes_streams():
    sim = Simulator(seed=9)
    assert sim.stream("a") is sim.stream("a")
    assert sim.stream("a") is not sim.stream("b")


def test_draw_order_between_streams_is_independent():
    """Draws on one stream must not perturb another (key determinism
    property: adding a subsystem does not change others' randomness)."""
    reg1 = RngRegistry(5)
    first = reg1.stream("a")
    _ = [first.random() for _ in range(100)]
    b_after_draws = reg1.stream("b").random()

    reg2 = RngRegistry(5)
    b_fresh = reg2.stream("b").random()
    assert b_after_draws == b_fresh
