"""Unit tests for the span model and the campaign telemetry engine."""

import io
import os

import pytest

from repro.obs import (
    CampaignTelemetry,
    Span,
    SpanWriter,
    WorkerHealth,
    read_rss_kb,
    read_span_log,
    validate_span_file,
)
from repro.obs.spans import SpanIdAllocator


# -- SpanWriter ---------------------------------------------------------------


def test_span_writer_path_target_flushes_per_line(tmp_path):
    path = tmp_path / "nested" / "spans.ndjson"
    with SpanWriter(path) as writer:
        writer.write({"kind": "event", "name": "x", "t": 1.0})
        writer.write({"kind": "progress", "t": 2.0, "done": 1, "total": 2,
                      "failed": 0})
    records = read_span_log(path)
    assert [r["kind"] for r in records] == ["event", "progress"]
    assert writer.records_written == 2
    assert writer.counts == {"event": 1, "progress": 1}
    assert path.read_text().endswith("\n")


def test_span_writer_stream_target_is_not_closed():
    stream = io.StringIO()
    writer = SpanWriter(stream)
    writer.write({"kind": "event", "name": "x", "t": 0.0})
    writer.close()
    assert not stream.closed  # caller owns the stream
    assert stream.getvalue().count("\n") == 1


def test_span_writer_fd_target(tmp_path):
    path = tmp_path / "fd.ndjson"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o600)
    with SpanWriter(f"fd:{fd}") as writer:
        writer.write({"kind": "event", "name": "x", "t": 0.0})
    assert read_span_log(path)[0]["name"] == "x"
    with pytest.raises(OSError):
        os.close(fd)  # the writer owned and closed the descriptor


def test_span_open_close_records():
    span = Span(id="u1", name="unit-attempt", t0=1.0, parent="b1",
                attrs={"index": 0})
    assert span.open_record() == {
        "kind": "span_open", "id": "u1", "span": "unit-attempt",
        "parent": "b1", "t0": 1.0, "attrs": {"index": 0},
    }
    closed = span.close_record(2.0, status="error", attrs={"error": "boom"})
    assert closed == {"kind": "span_close", "id": "u1", "t1": 2.0,
                      "status": "error", "attrs": {"error": "boom"}}


def test_span_id_allocator_is_prefixed_and_unique():
    ids = SpanIdAllocator()
    assert ids.allocate("campaign") == "c1"
    assert ids.allocate("dispatch-batch") == "b2"
    assert ids.allocate("unit-attempt") == "u3"
    assert ids.allocate("unit-attempt") == "u4"


# -- WorkerHealth -------------------------------------------------------------


def test_worker_health_busy_idle_accounting():
    health = WorkerHealth(worker="w1", pid=None, spawned_mono=0.0,
                          state_since=0.0)
    health.mark("busy", 2.0)   # 2s idle
    health.mark("idle", 5.0)   # 3s busy
    gauges = health.gauges(6.0)  # +1s idle in progress
    assert gauges["busy_s"] == pytest.approx(3.0)
    assert gauges["idle_s"] == pytest.approx(3.0)
    assert gauges["state"] == "idle"
    assert "rss_kb" not in gauges  # no pid, no sample


def test_read_rss_kb_own_process():
    rss = read_rss_kb(os.getpid())
    # Linux: a positive sample; elsewhere: a graceful None.
    assert rss is None or rss > 0
    assert read_rss_kb(2 ** 30) is None  # no such pid


# -- CampaignTelemetry --------------------------------------------------------


def scripted_campaign(tmp_path, name="spans.ndjson"):
    """Drive a full scripted coordinator sequence; returns the log path."""
    path = tmp_path / name
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer, heartbeat_interval=0.001)
        tel.begin_campaign(3, "warm", 2)
        tel.worker_spawned("w1", os.getpid())
        tel.cache_hit(2, "f" * 64)
        tel.unit_result("cache", 2, 0, "ok", cached=True)
        tel.cache_miss(0, "a" * 64)
        tel.cache_miss(1, "b" * 64)
        tel.batch_dispatched("w1", [0, 1])
        tel.unit_result("w1", 0, 1, "ok",
                        manifest={"timings": {"sim_s": 0.5},
                                  "engine": {"lane": "batch",
                                             "transmissions": 10,
                                             "numpy_fanout_frames": 4,
                                             "loop_fanout_frames": 6}})
        tel.tick()
        tel.unit_result("w1", 1, 1, "error", error="ValueError: boom")
        tel.retry_scheduled(1, 1, 0.25, "ValueError: boom")
        tel.batch_dispatched("w1", [1])
        tel.unit_result("w1", 1, 2, "ok", manifest={"engine": {"lane": "batch"}})
        tel.worker_exited("w1", "stop", exitcode=0)
        tel.end_campaign(executed=2, cache_hits=1, cache_evictions=0, failed=0)
        return path, tel


def test_telemetry_emits_schema_valid_log(tmp_path):
    path, _ = scripted_campaign(tmp_path)
    assert validate_span_file(path) == []


def test_telemetry_span_parentage_and_counters(tmp_path):
    path, tel = scripted_campaign(tmp_path)
    records = read_span_log(path)
    opens = {r["id"]: r for r in records if r["kind"] == "span_open"}
    closes = {r["id"]: r for r in records if r["kind"] == "span_close"}
    campaign = next(r for r in opens.values() if r["span"] == "campaign")
    batches = [r for r in opens.values() if r["span"] == "dispatch-batch"]
    units = [r for r in opens.values() if r["span"] == "unit-attempt"]
    assert campaign["parent"] is None
    assert all(b["parent"] == campaign["id"] for b in batches)
    # The cached unit hangs off the campaign; dispatched units off batches.
    cached = next(u for u in units if u["attrs"]["cached"])
    assert cached["parent"] == campaign["id"]
    batch_ids = {b["id"] for b in batches}
    assert all(u["parent"] in batch_ids for u in units
               if not u["attrs"]["cached"])
    assert closes[campaign["id"]]["status"] == "ok"
    attrs = closes[campaign["id"]]["attrs"]
    assert attrs["executed"] == 2 and attrs["cache_hits"] == 1
    assert attrs["counters"]["units.ok"] == 3
    assert attrs["counters"]["units.error"] == 1
    assert attrs["counters"]["events.retry"] == 1
    assert attrs["phy"]["lane.batch.units"] == 2
    assert attrs["phy"]["transmissions"] == 10
    assert attrs["phy"]["numpy_fanout_frames"] == 4
    # Worker-measured timings travel on the unit close record.
    unit0_close = closes[next(u["id"] for u in units
                              if u["attrs"]["index"] == 0)]
    assert unit0_close["attrs"]["timings"] == {"sim_s": 0.5}
    assert unit0_close["attrs"]["phy_lane"] == "batch"


def test_telemetry_heartbeats_cover_every_worker(tmp_path):
    path, tel = scripted_campaign(tmp_path)
    beats = [r for r in read_span_log(path) if r["kind"] == "heartbeat"]
    assert tel.heartbeats == len(beats) >= 1
    assert {b["worker"] for b in beats} == {"w1"}
    final = beats[-1]
    assert final["attrs"]["units_done"] == 2
    assert final["attrs"]["failures"] == 1


def test_telemetry_crash_aborts_batch_and_marks_replacement(tmp_path):
    path = tmp_path / "crash.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(1, "warm", 1)
        tel.worker_spawned("w1", None)
        tel.batch_dispatched("w1", [0, 1])
        tel.unit_result("w1", 0, 1, "crash",
                        error="worker crashed (exit code 13)")
        tel.worker_exited("w1", "crash", exitcode=13)
        tel.worker_spawned("w2", None, replacement=True)
        tel.batch_dispatched("w2", [0, 1])
        tel.unit_result("w2", 0, 2, "ok")
        tel.unit_result("w2", 1, 1, "ok")
        tel.worker_exited("w2", "stop")
        tel.end_campaign(executed=2, cache_hits=0, cache_evictions=0,
                         failed=0)
    assert validate_span_file(path) == []
    records = read_span_log(path)
    closes = [r for r in records if r["kind"] == "span_close"]
    assert any(r["status"] == "aborted" for r in closes)  # the dead batch
    assert any(r["status"] == "crash" for r in closes)  # the dead unit
    spawns = [r for r in records
              if r["kind"] == "event" and r["name"] == "worker.spawn"]
    assert [s["attrs"]["replacement"] for s in spawns] == [False, True]
    assert any(r.get("name") == "worker.crash" for r in records)


def test_telemetry_end_campaign_closes_dangling_state(tmp_path):
    path = tmp_path / "dangling.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(2, "warm", 1)
        tel.worker_spawned("w1", None)
        tel.batch_dispatched("w1", [0, 1])
        tel.end_campaign(executed=0, cache_hits=0, cache_evictions=0,
                         failed=2)
    assert validate_span_file(path) == []  # batch force-closed as aborted
    closes = [r for r in read_span_log(path) if r["kind"] == "span_close"]
    assert {r["status"] for r in closes} == {"aborted", "error"}
    # Idempotent: a second end is a no-op, double-begin raises.
    with SpanWriter(io.StringIO()) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(1, "inproc", 1)
        with pytest.raises(RuntimeError):
            tel.begin_campaign(1, "inproc", 1)
        tel.end_campaign(executed=0, cache_hits=0, cache_evictions=0,
                         failed=0)
        before = writer.records_written
        tel.end_campaign(executed=0, cache_hits=0, cache_evictions=0,
                         failed=0)
        assert writer.records_written == before


def test_telemetry_rejects_bad_heartbeat_interval():
    with pytest.raises(ValueError):
        CampaignTelemetry(SpanWriter(io.StringIO()), heartbeat_interval=0.0)
