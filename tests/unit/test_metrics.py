"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.experiments import ScenarioConfig, run_chain
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_network_metrics,
)


# -- primitives ---------------------------------------------------------------


def test_counter_increments_monotonically():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_set_and_add():
    g = Gauge()
    g.set(2.5)
    g.add(-0.5)
    assert g.value == 2.0


def test_histogram_buckets_and_summary():
    h = Histogram(bounds=(1, 4, 16))
    for v in (0.5, 1.0, 3.0, 16.0, 100.0):
        h.observe(v)
    d = h.to_dict()
    # bounds are inclusive upper edges: 0.5 and 1.0 land in le_1.
    assert d["buckets"] == {"le_1": 2, "le_4": 1, "le_16": 1, "inf": 1}
    assert d["count"] == 5
    assert d["sum"] == pytest.approx(120.5)
    assert d["mean"] == pytest.approx(120.5 / 5)


def test_histogram_rejects_empty_and_duplicate_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(1, 1, 2))


# -- registry semantics -------------------------------------------------------


def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("mac.retries", node=1)
    b = reg.counter("mac.retries", node=1)
    assert a is b
    assert reg.counter("mac.retries", node=2) is not a


def test_registry_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.gauge("tcp.cwnd", node=1, flow=0)
    b = reg.gauge("tcp.cwnd", flow=0, node=1)
    assert a is b


def test_registry_histogram_bounds_conflict_raises():
    reg = MetricsRegistry()
    reg.histogram("h", bounds=(1, 2))
    reg.histogram("h", bounds=(2, 1))  # same set, different order: fine
    with pytest.raises(ValueError):
        reg.histogram("h", bounds=(1, 2, 3))


def test_snapshot_shape_and_rollups():
    reg = MetricsRegistry()
    reg.counter("mac.retries", node=0).inc(3)
    reg.counter("mac.retries", node=1).inc(4)
    reg.counter("ifq.drops", node=1).inc(2)
    reg.counter("campaign.runs").inc()  # unlabelled: global rollup only
    reg.gauge("ifq.len", node=0).set(5.0)
    reg.histogram("tcp.cwnd_samples", node=0).observe(3.0)
    snap = reg.snapshot()
    assert snap["rollups"]["global"] == {
        "campaign.runs": 1, "ifq.drops": 2, "mac.retries": 7,
    }
    assert snap["rollups"]["per_node"] == {
        "0": {"mac.retries": 3},
        "1": {"ifq.drops": 2, "mac.retries": 4},
    }
    assert snap["counters"]["mac.retries"] == {"node=0": 3, "node=1": 4}
    assert snap["gauges"]["ifq.len"]["node=0"] == 5.0
    assert snap["histograms"]["tcp.cwnd_samples"]["node=0"]["count"] == 1


def test_snapshot_is_insertion_order_independent():
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for node in range(4):
        forward.counter("mac.retries", node=node).inc(node)
    for node in reversed(range(4)):
        backward.counter("mac.retries", node=node).inc(node)
    assert json.dumps(forward.snapshot()) == json.dumps(backward.snapshot())


def test_default_buckets_are_sorted():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


# -- network harvest ----------------------------------------------------------


def _chain_result_and_network(seed):
    from repro.routing import install_aodv_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    net = build_chain(2, seed=seed)
    install_aodv_routing(net.nodes, net.sim)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno")
    net.sim.run(until=3.0)
    return net, [flow]


def test_collect_network_metrics_covers_every_layer():
    net, flows = _chain_result_and_network(seed=7)
    snap = collect_network_metrics(net, flows).snapshot()
    rollup = snap["rollups"]["global"]
    assert rollup["mac.data_tx"] > 0
    assert rollup["ifq.enqueued"] > 0
    assert rollup["tcp.data_sent"] > 0
    assert rollup["tcp.delivered_packets"] > 0
    assert rollup["aodv.rreq_tx"] > 0 and rollup["aodv.discoveries"] > 0
    assert "phy.rx_ok" in rollup
    # per-node rollups cover every node in the chain
    assert set(snap["rollups"]["per_node"]) >= {"0", "1", "2"}
    # the cwnd histogram saw at least the initial sample
    hists = snap["histograms"]["tcp.cwnd_samples"]
    assert sum(entry["count"] for entry in hists.values()) > 0


def test_snapshot_determinism_across_identical_seeds():
    snaps = []
    for _ in range(2):
        net, flows = _chain_result_and_network(seed=11)
        snaps.append(json.dumps(collect_network_metrics(net, flows).snapshot(),
                                sort_keys=True))
    assert snaps[0] == snaps[1]


def test_run_chain_result_carries_metrics_snapshot():
    result = run_chain(2, ["newreno"], config=ScenarioConfig(sim_time=2.0, seed=5))
    rollup = result.metrics["rollups"]["global"]
    assert rollup["mac.data_tx"] > 0
    assert result.to_dict()["metrics"] == result.metrics
