"""Policy conformance suite: one parametrized contract, every policy.

Each registered :class:`~repro.core.policy.AdvicePolicy` must satisfy the
family-wide behavioral guarantees regardless of its internals:

* advice always within the five-level DRAI range;
* ``reset()`` restores the initial state exactly;
* identical signal sequences yield identical advice sequences
  (deterministic replay — the property the campaign cache banks on);
* no acceleration while the sampled server/queue is saturated;
* policy parameters round-trip through the config/JSON layer.

Adding a policy to the registry automatically subjects it to this suite.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import (
    HOLD_LEVEL,
    MAX_DRAI,
    MIN_DRAI,
    known_policies,
    make_policy,
    policy_class,
)
from repro.core.policy import PolicySignals
from repro.experiments import ScenarioConfig

EXPECTED_POLICIES = {"fuzzy", "binary-feedback", "queue-trend", "hysteresis"}


def signal_walk(n: int = 400, seed: int = 7) -> list:
    """A deterministic pseudo-random walk through signal space.

    Covers idle, loaded, RTT-inflated and queue-saturated regimes, with
    the trend derived from consecutive queue samples (as the estimator's
    shared sampling window would supply it).
    """
    rng = random.Random(seed)
    samples = []
    queue = 0.0
    for i in range(n):
        # Alternate regimes every 50 samples so state machines get both
        # sustained pressure and sustained recovery.
        regime = (i // 50) % 4
        target = (0.0, 3.0, 1.0, 12.0)[regime]
        prev = queue
        queue = max(0.0, queue + (target - queue) * 0.3 + rng.uniform(-0.5, 0.5))
        util = min(1.0, max(0.0, rng.uniform(0.0, 0.5) + 0.4 * (regime % 2)))
        occ = min(1.0, max(0.0, rng.uniform(0.0, 0.4) + 0.25 * regime))
        samples.append(PolicySignals(queue, util, occ, queue - prev))
    return samples


def run_policy(name: str, samples) -> list:
    policy = make_policy(name)
    return [(policy.advise(s), policy.state()) for s in samples]


def test_registry_has_the_policy_family():
    assert EXPECTED_POLICIES <= set(known_policies())


def test_unknown_policy_is_a_loud_error():
    with pytest.raises(KeyError, match="unknown advice policy"):
        policy_class("no-such-policy")
    with pytest.raises(KeyError, match="no-such-policy"):
        make_policy("no-such-policy")


@pytest.mark.parametrize("name", sorted(EXPECTED_POLICIES))
class TestPolicyConformance:
    def test_advice_always_within_the_five_levels(self, name):
        for advice, _ in run_policy(name, signal_walk()):
            assert MIN_DRAI <= advice <= MAX_DRAI

    def test_reset_restores_initial_state(self, name):
        policy = make_policy(name)
        initial_state = policy.state()
        samples = signal_walk()
        first = [(policy.advise(s), policy.state()) for s in samples]
        policy.reset()
        assert policy.state() == initial_state
        second = [(policy.advise(s), policy.state()) for s in samples]
        assert first == second

    def test_identical_signals_yield_identical_advice(self, name):
        samples = signal_walk()
        assert run_policy(name, samples) == run_policy(name, samples)

    def test_no_acceleration_under_saturation(self, name):
        policy = make_policy(name)
        queue_sat, occ_sat = policy.saturation_bounds()
        for signals in signal_walk():
            advice = policy.advise(signals)
            if signals.queue_len >= queue_sat or signals.occupancy >= occ_sat:
                assert advice <= HOLD_LEVEL, (
                    f"{name} accelerated into a saturated relay: "
                    f"{signals} -> {advice}"
                )
        # Drive the saturated corner explicitly, whatever the prior state.
        saturated = PolicySignals(queue_sat + 5.0, 0.9, min(1.0, occ_sat + 0.1))
        assert policy.advise(saturated) <= HOLD_LEVEL

    def test_params_round_trip_through_the_config_json_layer(self, name):
        policy = make_policy(name)
        payload = policy.params_dict()
        config = ScenarioConfig(sim_time=1.0, policy=name, policy_params=payload)
        # to_dict -> JSON text -> from_dict is the campaign-cache path.
        revived = ScenarioConfig.from_dict(
            json.loads(json.dumps(config.to_dict(), sort_keys=True))
        )
        assert revived.policy == name
        assert revived.policy_params == payload
        rebuilt = make_policy(revived.policy, params=revived.policy_params)
        assert rebuilt.params == policy.params
        assert rebuilt.params_dict() == payload

    def test_replay_after_round_trip_is_identical(self, name):
        """The serialized form must reconstruct the same controller."""
        samples = signal_walk(n=150, seed=11)
        original = make_policy(name)
        rebuilt = make_policy(name, params=original.params_dict())
        assert [original.advise(s) for s in samples] == [
            rebuilt.advise(s) for s in samples
        ]


def test_install_drai_rejects_params_without_policy():
    """Programmatic API mirrors the CLI guard: params need a policy name."""
    from repro.core import install_drai

    with pytest.raises(ValueError, match="requires a policy"):
        install_drai([], None, policy=None, policy_params={"sustain_up": 3})


def test_policies_do_not_share_state_across_instances():
    """install_drai builds one policy per node; two instances fed different
    histories must not interfere (guards against accidental class state)."""
    a = make_policy("hysteresis")
    b = make_policy("hysteresis")
    hot = PolicySignals(20.0, 0.9, 0.95)
    for _ in range(10):
        a.advise(hot)
    assert a.state() == "RED"
    assert b.state() != "RED"
    assert b.advise(PolicySignals(0.0, 0.0, 0.0)) == 5
