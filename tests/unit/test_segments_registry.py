"""Unit tests for TCP segments and the variant registry."""

import pytest

from repro.transport import (
    DEFAULT_MSS,
    TCP_IP_HEADER_BYTES,
    TcpNewReno,
    TcpSegment,
    known_variants,
    register_variant,
    sender_class,
)


class TestSegments:
    def test_wire_bytes_adds_headers(self):
        seg = TcpSegment("data", sport=1, dport=2, seq=0, payload_bytes=DEFAULT_MSS)
        assert seg.wire_bytes() == 1460 + TCP_IP_HEADER_BYTES == 1500

    def test_pure_ack_is_header_only(self):
        seg = TcpSegment("ack", sport=1, dport=2, ack=5)
        assert seg.wire_bytes() == 40

    def test_kind_predicates(self):
        assert TcpSegment("data", 1, 2).is_data
        assert TcpSegment("ack", 1, 2).is_ack
        assert not TcpSegment("ack", 1, 2).is_data


class TestRegistry:
    def test_all_paper_variants_plus_muzha_registered(self):
        names = known_variants()
        for expected in ("tahoe", "reno", "newreno", "sack", "vegas", "muzha"):
            assert expected in names

    def test_ablation_variant_registered(self):
        assert "muzha-nomark" in known_variants()

    def test_lookup_returns_class(self):
        assert sender_class("newreno") is TcpNewReno

    def test_muzha_lazy_import(self):
        from repro.core import TcpMuzha

        assert sender_class("muzha") is TcpMuzha

    def test_unknown_variant_raises_with_known_list(self):
        with pytest.raises(KeyError) as excinfo:
            sender_class("bbr")
        assert "newreno" in str(excinfo.value)

    def test_register_custom_variant(self):
        class Custom(TcpNewReno):
            variant = "custom-test"

        register_variant("custom-test", Custom)
        assert sender_class("custom-test") is Custom
