"""Behavioural unit tests for the TCP Westwood and Veno baselines."""

import pytest

from repro.transport import TcpVeno, TcpWestwood

from .tcp_harness import ack, make_sender


class TestWestwood:
    def test_bandwidth_estimate_tracks_ack_rate(self):
        sim, node, sender = make_sender(TcpWestwood)
        # one cumulative ACK per 10 ms -> 100 packets/s steady state; the
        # Tustin filter's tau is 0.5 s, so give it several time constants.
        for i in range(1, 400):
            sim.scheduler._now = i * 0.01
            ack(sender, i)
        assert sender.bandwidth_estimate == pytest.approx(100.0, rel=0.1)

    def test_loss_sets_ssthresh_to_bdp_not_half(self):
        sim, node, sender = make_sender(TcpWestwood)
        for i in range(1, 30):
            sim.scheduler._now = i * 0.01
            ack(sender, i)
        # srtt is tiny in this harness, so pin a known RTT for the check
        sender.rtt.srtt = 0.1
        sender.rtt.samples = 5
        expected_bdp = max(sender.bandwidth_estimate * 0.1, 2.0)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una)
        assert sender.ssthresh == pytest.approx(expected_bdp, rel=1e-6)
        assert sender.in_recovery

    def test_bdp_floors_at_two_without_estimate(self):
        sim, node, sender = make_sender(TcpWestwood)
        assert sender._bdp_window() == 2.0

    def test_timeout_uses_bdp_ssthresh(self):
        sim, node, sender = make_sender(TcpWestwood)
        for i in range(1, 10):
            sim.scheduler._now = i * 0.01
            ack(sender, i)
        sender.rtt.srtt = 0.05
        sender.rtt.samples = 3
        expected = sender._bdp_window()
        sim.run(until=sim.now + 10.0)
        assert sender.stats.timeouts >= 1
        assert sender.cwnd == 1.0
        assert sender.ssthresh >= 2.0


class TestVeno:
    def make_ca(self, last_rtt, base_rtt=0.1, cwnd=8.0):
        sim, node, sender = make_sender(TcpVeno)
        sender.ssthresh = 2.0  # force congestion avoidance
        sender.base_rtt = base_rtt
        sender._last_rtt = last_rtt
        sender._set_cwnd(cwnd)
        # stop the harness's zero-delay ACKs from sampling a bogus RTT and
        # clobbering the pinned backlog inputs
        sender._timed_seq = None
        sender._maybe_sample_rtt = lambda seg: None
        return sim, node, sender

    def test_backlog_estimate(self):
        sim, node, sender = self.make_ca(last_rtt=0.2)
        # N = 8 * (1 - 0.1/0.2) = 4
        assert sender._backlog() == pytest.approx(4.0)

    def test_uncongested_loss_sheds_one_fifth(self):
        sim, node, sender = self.make_ca(last_rtt=0.105)  # N ~ 0.38 < beta
        for i in range(1, 9):
            ack(sender, i)
        cwnd = sender.cwnd
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una)
        assert sender.ssthresh == pytest.approx(max(cwnd * 4 / 5, 2.0))

    def test_congested_loss_halves_like_reno(self):
        sim, node, sender = self.make_ca(last_rtt=0.3)  # N ~ 5.3 > beta
        for i in range(1, 9):
            ack(sender, i)
        cwnd = sender.cwnd
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una)
        # the halving branch, not the gentle 4/5 cut
        assert sender.ssthresh < cwnd * 4.0 / 5.0

    def test_congested_ca_grows_every_other_ack(self):
        sim, node, sender = self.make_ca(last_rtt=0.3)  # congested
        before = sender.cwnd
        ack(sender, 1)
        mid = sender.cwnd
        ack(sender, 2)
        after = sender.cwnd
        # exactly one of the two ACKs grew the window
        grew = (mid > before) + (after > mid)
        assert grew == 1

    def test_uncongested_ca_grows_every_ack(self):
        sim, node, sender = self.make_ca(last_rtt=0.105)
        before = sender.cwnd
        ack(sender, 1)
        ack(sender, 2)
        assert sender.cwnd > before


class TestRegistry:
    def test_new_variants_registered(self):
        from repro.transport import known_variants

        names = known_variants()
        assert "westwood" in names and "veno" in names

    def test_variants_work_end_to_end(self):
        from repro.experiments import ScenarioConfig, run_chain

        for variant in ("westwood", "veno"):
            result = run_chain(
                3, [variant], config=ScenarioConfig(sim_time=6.0, seed=1)
            )
            assert result.flows[0].goodput_kbps > 50.0, variant
