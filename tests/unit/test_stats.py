"""Unit tests for fairness, time series and throughput statistics."""

import pytest

from repro.stats import (
    differentiate,
    goodput_kbps,
    jain_index,
    resample,
    time_average,
    value_at,
    worst_case_index,
)


class TestJainIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_approaches_one_over_n(self):
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_paper_style_two_flows(self):
        # the 2-flow index used in Fig 5.18
        assert jain_index([300.0, 100.0]) == pytest.approx(
            (400.0**2) / (2 * (300.0**2 + 100.0**2))
        )

    def test_empty_and_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_scale_invariance(self):
        xs = [1.0, 2.0, 3.0]
        assert jain_index(xs) == pytest.approx(jain_index([10 * x for x in xs]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1.0, 1.0])

    def test_worst_case(self):
        assert worst_case_index(4) == 0.25
        with pytest.raises(ValueError):
            worst_case_index(0)


class TestTimeSeries:
    SERIES = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]

    def test_value_at_step_semantics(self):
        assert value_at(self.SERIES, -0.5, default=9.0) == 9.0
        assert value_at(self.SERIES, 0.0) == 1.0
        assert value_at(self.SERIES, 0.99) == 1.0
        assert value_at(self.SERIES, 1.0) == 3.0
        assert value_at(self.SERIES, 99.0) == 2.0

    def test_resample_grid(self):
        grid = resample(self.SERIES, 0.0, 2.0, 0.5)
        assert grid == [
            (0.0, 1.0), (0.5, 1.0), (1.0, 3.0), (1.5, 3.0), (2.0, 2.0)
        ]

    def test_resample_validates_step(self):
        with pytest.raises(ValueError):
            resample(self.SERIES, 0.0, 1.0, 0.0)

    def test_differentiate_rates(self):
        cumulative = [(0.0, 0.0), (1.0, 10.0), (3.0, 30.0)]
        assert differentiate(cumulative) == [(1.0, 10.0), (3.0, 10.0)]

    def test_differentiate_handles_zero_dt(self):
        assert differentiate([(1.0, 0.0), (1.0, 5.0)]) == [(1.0, 0.0)]

    def test_time_average_weighs_durations(self):
        # value 1 for 1 s, then 3 for 1 s -> mean 2 over [0, 2]
        assert time_average(self.SERIES, 0.0, 2.0) == pytest.approx(2.0)

    def test_time_average_partial_window(self):
        assert time_average(self.SERIES, 1.0, 2.0) == pytest.approx(3.0)

    def test_time_average_validates_window(self):
        with pytest.raises(ValueError):
            time_average(self.SERIES, 2.0, 1.0)


class TestThroughput:
    def test_goodput_computation(self):
        class FakeSink:
            delivered_bytes = 125_000  # 1 Mbit

        assert goodput_kbps(FakeSink(), 10.0) == pytest.approx(100.0)

    def test_goodput_validates_duration(self):
        class FakeSink:
            delivered_bytes = 1

        with pytest.raises(ValueError):
            goodput_kbps(FakeSink(), 0.0)

    def test_sampler_records_series_and_rates(self):
        from repro.sim import Simulator
        from repro.stats import ThroughputSampler

        class FakeSink:
            delivered_bytes = 0

        sim = Simulator(seed=1)
        sink = FakeSink()
        sampler = ThroughputSampler(sim, sink, interval=1.0).start()

        def grow():
            sink.delivered_bytes += 1250  # 10 kbit per second

        for t in (0.5, 1.5, 2.5):
            sim.at(t, grow)
        sim.run(until=3.0)
        sampler.stop()
        rates = sampler.rates_kbps()
        assert len(rates) == 3
        assert all(rate == pytest.approx(10.0) for _, rate in rates)
