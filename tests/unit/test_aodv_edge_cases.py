"""Additional AODV edge-case tests (RREP forwarding, buffering limits,
sequence-number hygiene)."""

import pytest

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.routing.aodv import (
    AodvRouting,
    Rrep,
    Rreq,
    constants as C,
    install_aodv_routing,
)
from repro.sim import Simulator


def build(n=3, seed=1, spacing=250.0):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    nodes = [Node(sim, channel, i, Position(spacing * i)) for i in range(n)]
    protocols = install_aodv_routing(nodes, sim)
    return sim, nodes, protocols


def test_buffer_cap_drops_overflow():
    sim, nodes, protocols = build(2)
    for i in range(C.MAX_BUFFERED_PER_DST + 10):
        nodes[0].send(Packet(src=0, dst=99, protocol="raw", size_bytes=100))
    pending = protocols[0]._pending[99]
    assert len(pending.buffered) == C.MAX_BUFFERED_PER_DST
    assert protocols[0].aodv.buffered_drops == 10


def test_duplicate_rreq_not_answered_twice():
    sim, nodes, protocols = build(2)
    rreq = Rreq(orig=0, orig_seq=1, rreq_id=7, dst=1, dst_seq=0, unknown_dst_seq=True)
    packet = Packet(src=0, dst=-1, protocol=C.AODV_PROTOCOL, size_bytes=44,
                    payload=rreq, ttl=30)
    protocols[1]._receive_rreq(rreq, packet, from_addr=0)
    first_replies = protocols[1].aodv.rrep_tx
    protocols[1]._receive_rreq(rreq, packet, from_addr=0)
    assert protocols[1].aodv.rrep_tx == first_replies == 1


def test_destination_bumps_seq_on_reply():
    sim, nodes, protocols = build(2)
    before = protocols[1].seq_no
    rreq = Rreq(orig=0, orig_seq=1, rreq_id=1, dst=1, dst_seq=5, unknown_dst_seq=False)
    packet = Packet(src=0, dst=-1, protocol=C.AODV_PROTOCOL, size_bytes=44,
                    payload=rreq, ttl=30)
    protocols[1]._receive_rreq(rreq, packet, from_addr=0)
    assert protocols[1].seq_no >= max(before + 1, 5)


def test_rrep_without_reverse_route_is_dropped():
    sim, nodes, protocols = build(3)
    rrep = Rrep(orig=99, dst=2, dst_seq=3, lifetime=10.0, hop_count=0)
    protocols[1]._receive_rrep(rrep, from_addr=2)
    # forward route to the destination is installed ...
    assert protocols[1].next_hop(2) == 2
    # ... but with no reverse route to orig 99 nothing is forwarded
    assert protocols[1].aodv.rrep_tx == 0


def test_rreq_ttl_exhaustion_stops_flood():
    sim, nodes, protocols = build(3)
    rreq = Rreq(orig=0, orig_seq=1, rreq_id=3, dst=9, dst_seq=0, unknown_dst_seq=True)
    packet = Packet(src=0, dst=-1, protocol=C.AODV_PROTOCOL, size_bytes=44,
                    payload=rreq, ttl=1)
    protocols[1]._receive_rreq(rreq, packet, from_addr=0)
    assert protocols[1].aodv.rreq_tx == 0  # not rebroadcast


def test_route_refresh_on_data_traffic():
    sim, nodes, protocols = build(3)
    protocols[1].table.update(0, next_hop=0, hop_count=1, seq=1,
                              expiry=sim.now + 0.5)
    packet = Packet(src=0, dst=2, protocol="tcp", size_bytes=100)
    protocols[1].on_data_packet(packet, from_addr=0)
    entry = protocols[1].table.get(0)
    assert entry.expiry >= sim.now + C.ACTIVE_ROUTE_TIMEOUT - 1e-9


def test_expired_route_triggers_rediscovery_not_use():
    sim, nodes, protocols = build(3)
    protocols[0].table.update(2, next_hop=1, hop_count=2, seq=1, expiry=0.5)
    sim.after(1.0, lambda: None)
    sim.run()  # now = 1.0 > expiry
    assert protocols[0].next_hop(2) is None


def test_discovery_timer_backs_off_exponentially():
    sim, nodes, protocols = build(2)
    nodes[0].send(Packet(src=0, dst=99, protocol="raw", size_bytes=100))
    pending = protocols[0]._pending[99]
    first_expiry = pending.timer.expiry
    assert first_expiry == pytest.approx(C.PATH_DISCOVERY_TIME, rel=0.01)
    # run past the first timeout; the retry must wait twice as long
    sim.run(until=first_expiry + 0.001)
    pending = protocols[0]._pending[99]
    assert pending.retries == 1
    assert pending.timer.expiry - sim.now == pytest.approx(
        2 * C.PATH_DISCOVERY_TIME, rel=0.05
    )
