"""Unit tests for the SACK scoreboard and the SACK sender."""

import pytest

from repro.transport import SackScoreboard, TcpSack

from .tcp_harness import ack, make_sender, sent_seqs


class TestScoreboard:
    def test_update_merges_blocks(self):
        sb = SackScoreboard()
        sb.update([(5, 8), (10, 12)], snd_una=0)
        assert sb.is_sacked(5) and sb.is_sacked(7) and sb.is_sacked(11)
        assert not sb.is_sacked(8)
        assert sb.sacked_count() == 5

    def test_update_purges_below_snd_una(self):
        sb = SackScoreboard()
        sb.update([(5, 10)], snd_una=0)
        sb.update([], snd_una=8)
        assert not sb.is_sacked(5)
        assert sb.is_sacked(8)

    def test_next_hole_is_first_unsacked_below_highest(self):
        sb = SackScoreboard()
        sb.update([(5, 6), (8, 10)], snd_una=3)
        assert sb.next_hole(3) == 3
        sb.mark_retransmitted(3)
        assert sb.next_hole(3) == 4
        sb.mark_retransmitted(4)
        sb.mark_retransmitted(6)
        sb.mark_retransmitted(7)
        assert sb.next_hole(3) is None

    def test_next_hole_empty_scoreboard(self):
        assert SackScoreboard().next_hole(0) is None

    def test_reset_episode_clears_retransmission_marks_only(self):
        sb = SackScoreboard()
        sb.update([(5, 6)], snd_una=0)
        sb.mark_retransmitted(0)
        sb.reset_episode()
        assert sb.next_hole(0) == 0
        assert sb.is_sacked(5)

    def test_clear(self):
        sb = SackScoreboard()
        sb.update([(5, 6)], snd_una=0)
        sb.clear()
        assert sb.sacked_count() == 0


class TestSackSender:
    def prime(self, window=32):
        sim, node, sender = make_sender(TcpSack, window=window)
        for i in range(1, 9):
            ack(sender, i)
        return sim, node, sender

    def test_needs_sack_sink_flag(self):
        assert TcpSack.needs_sack_sink

    def test_enter_recovery_halves_without_inflation(self):
        sim, node, sender = self.prime()
        una = sender.snd_una
        for k in range(3):
            ack(sender, una, sacks=[(una + 1 + k, una + 2 + k)])
        assert sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)
        assert sent_seqs(node).count(una) == 2  # hole retransmitted

    def test_holes_filled_before_new_data(self):
        sim, node, sender = self.prime()
        una = sender.snd_una
        # SACK blocks reveal two holes: una and una+2
        ack(sender, una, sacks=[(una + 1, una + 2)])
        ack(sender, una, sacks=[(una + 1, una + 2), (una + 3, una + 5)])
        ack(sender, una, sacks=[(una + 1, una + 2), (una + 3, una + 6)])
        # further dupACKs shrink the pipe until the second hole is sent
        for k in range(6):
            ack(sender, una, sacks=[(una + 1, una + 2), (una + 3, una + 7 + k)])
        sent = sent_seqs(node)
        assert sent.count(una) == 2
        assert sent.count(una + 2) == 2
        # the second hole went out before any new data beyond the recovery
        # point was clocked
        assert sent.index(una + 2, sent.index(una + 2) + 1) < len(sent)

    def test_partial_ack_keeps_recovery_and_decrements_pipe(self):
        sim, node, sender = self.prime()
        una = sender.snd_una
        for k in range(3):
            ack(sender, una, sacks=[(una + 1, una + 2 + k)])
        pipe_before = sender._pipe
        ack(sender, una + 1, sacks=[(una + 2, una + 4)])
        assert sender.in_recovery
        assert sender._pipe <= pipe_before

    def test_full_ack_exits_recovery(self):
        sim, node, sender = self.prime()
        una = sender.snd_una
        for k in range(3):
            ack(sender, una, sacks=[(una + 1, una + 2 + k)])
        ack(sender, sender.recover)
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)

    def test_timeout_resets_pipe_and_episode(self):
        sim, node, sender = self.prime()
        una = sender.snd_una
        for k in range(3):
            ack(sender, una, sacks=[(una + 1, una + 2 + k)])
        sim.run(until=sim.now + 10.0)
        assert sender.stats.timeouts >= 1
        assert sender._pipe == 0
        assert sender.cwnd == 1.0
