"""Golden event-order regression tests for the kernel hot paths.

The tuple-heap scheduler must preserve the exact (time, priority, insertion)
event ordering the previous Event.__lt__ heap produced: these tests pin the
MAC-level frame sequence of a 3-hop RTS/CTS exchange so any kernel change
that perturbs event order (timestamp arithmetic, heap discipline, fan-out
scheduling order) fails loudly and locally, long before the golden-figure
CSVs drift.
"""

from __future__ import annotations

from repro.routing import install_static_routing
from repro.sim.trace import TraceRecorder
from repro.topology import build_chain
from repro.traffic import start_ftp


def _mac_tx_sequence(until: float):
    net = build_chain(3, seed=42)
    install_static_routing(net.nodes, net.channel)
    recorder = TraceRecorder(net.sim.trace, "mac.tx")
    start_ftp(net.sim, net.nodes[0], net.nodes[3], variant="newreno", window=4)
    net.sim.run(until=until)
    return [(r.fields["kind"], r.fields["src"], r.fields["dst"]) for r in recorder]


# First TCP segment crossing the 3-hop chain, then the TCP ACK returning:
# each hop is a full RTS/CTS/DATA/ACK exchange, strictly in hop order.
GOLDEN_FIRST_SEGMENT = [
    ("RTS", 0, 1), ("CTS", 1, 0), ("DATA", 0, 1), ("ACK", 1, 0),
    ("RTS", 1, 2), ("CTS", 2, 1), ("DATA", 1, 2), ("ACK", 2, 1),
    ("RTS", 2, 3), ("CTS", 3, 2), ("DATA", 2, 3), ("ACK", 3, 2),
    # TCP ACK travelling back 3 -> 0
    ("RTS", 3, 2), ("CTS", 2, 3), ("DATA", 3, 2), ("ACK", 2, 3),
    ("RTS", 2, 1), ("CTS", 1, 2), ("DATA", 2, 1), ("ACK", 1, 2),
    ("RTS", 1, 0), ("CTS", 0, 1), ("DATA", 1, 0), ("ACK", 0, 1),
]


def test_three_hop_rts_cts_golden_order():
    sequence = _mac_tx_sequence(until=0.08)
    assert sequence[: len(GOLDEN_FIRST_SEGMENT)] == GOLDEN_FIRST_SEGMENT
    # The full 80 ms window is pinned too: 61 frames on this seed.
    assert len(sequence) == 61


def test_three_hop_sequence_is_reproducible():
    assert _mac_tx_sequence(until=0.08) == _mac_tx_sequence(until=0.08)


def test_every_unicast_data_is_preceded_by_its_rts_cts_handshake():
    sequence = _mac_tx_sequence(until=0.08)
    handshakes = set()
    for kind, src, dst in sequence:
        if kind == "RTS":
            handshakes.add((src, dst))
        elif kind == "CTS":
            assert (dst, src) in handshakes
        elif kind == "DATA":
            assert (src, dst) in handshakes
            handshakes.discard((src, dst))
