"""Behavioural unit tests for TCP Vegas (delay-driven control)."""

import pytest

from repro.transport import TcpVegas

from .tcp_harness import ack, make_sender


def feed_rtt(sim, sender, rtt):
    """Advance time and deliver an ACK so the timed sample equals ``rtt``."""
    target = sender._timed_at + rtt
    if target > sim.now:
        sim.scheduler._now = target  # direct clock hop (test-only)
    ack(sender, sender.snd_nxt)


class TestVegasSlowStart:
    def test_doubles_every_other_rtt_at_low_delay(self):
        sim, node, sender = make_sender(TcpVegas)
        cwnds = [sender.cwnd]
        for _ in range(4):
            feed_rtt(sim, sender, 0.1)  # base == actual: no backlog
            cwnds.append(sender.cwnd)
        # doubling happens on alternating samples only
        assert cwnds[0] == cwnds[1] or cwnds[1] == cwnds[2]
        assert sender.cwnd > 1.0
        assert sender.cwnd <= 4.0

    def test_exits_slow_start_when_backlog_exceeds_gamma(self):
        sim, node, sender = make_sender(TcpVegas)
        feed_rtt(sim, sender, 0.1)   # establishes base RTT
        feed_rtt(sim, sender, 0.1)   # doubling tick -> cwnd 2
        feed_rtt(sim, sender, 0.1)
        feed_rtt(sim, sender, 0.1)   # cwnd 4
        cwnd = sender.cwnd
        feed_rtt(sim, sender, 0.3)   # diff = cwnd*(1-1/3) >> gamma
        assert not sender._in_vegas_ss
        assert sender.cwnd == pytest.approx(max(cwnd * 7 / 8, 2.0))


class TestVegasCongestionAvoidance:
    def make_ca(self):
        sim, node, sender = make_sender(TcpVegas)
        sender._in_vegas_ss = False
        sender.base_rtt = 0.1
        sender._set_cwnd(8.0)
        return sim, node, sender

    def test_low_backlog_increments(self):
        sim, node, sender = self.make_ca()
        # diff = 8*(1-0.1/rtt) < alpha=1  => rtt < 0.1143
        feed_rtt(sim, sender, 0.11)
        assert sender.cwnd == 9.0

    def test_high_backlog_decrements(self):
        sim, node, sender = self.make_ca()
        # diff = 8*(1-0.1/0.2) = 4 > beta=3
        feed_rtt(sim, sender, 0.2)
        assert sender.cwnd == 7.0

    def test_in_band_backlog_holds(self):
        sim, node, sender = self.make_ca()
        # diff = 8*(1-0.1/0.1333) = 2 in [alpha, beta]
        feed_rtt(sim, sender, 8 * 0.1 / 6.0)
        assert sender.cwnd == 8.0

    def test_cwnd_floor_of_two(self):
        sim, node, sender = self.make_ca()
        sender._set_cwnd(2.0)
        feed_rtt(sim, sender, 0.5)
        assert sender.cwnd == 2.0

    def test_base_rtt_tracks_minimum(self):
        sim, node, sender = self.make_ca()
        feed_rtt(sim, sender, 0.05)
        assert sender.base_rtt == pytest.approx(0.05)


class TestVegasLossBehaviour:
    def test_timeout_returns_to_vegas_slow_start(self):
        sim, node, sender = make_sender(TcpVegas)
        sender._in_vegas_ss = False
        sim.run(until=10.0)
        assert sender.stats.timeouts >= 1
        assert sender._in_vegas_ss
        assert sender.cwnd == 1.0

    def test_triple_dupack_uses_reno_recovery_and_leaves_ss(self):
        sim, node, sender = make_sender(TcpVegas)
        sender.base_rtt = 0.1
        sender._set_cwnd(8.0)
        from .tcp_harness import ack as send_ack

        for i in range(1, 9):
            send_ack(sender, i)
        for _ in range(3):
            send_ack(sender, 8)
        assert sender.in_recovery
        assert not sender._in_vegas_ss

    def test_parameter_validation(self):
        from repro.sim import Simulator

        from .tcp_harness import FakeNode

        with pytest.raises(ValueError):
            TcpVegas(
                Simulator(seed=1), FakeNode(), dst=1, sport=1, dport=2,
                alpha=3.0, beta=1.0,
            )
