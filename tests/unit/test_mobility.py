"""Unit tests for the random-waypoint mobility model."""

import pytest

from repro.phy import Area, Position, Radio, RandomWaypointMobility, WirelessChannel
from repro.sim import Simulator


AREA = Area(0.0, 0.0, 1000.0, 1000.0)


def build(n=3, seed=1):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    radios = []
    for i in range(n):
        radio = Radio(sim, i)
        channel.register(radio, Position(500.0, 500.0))
        radios.append(radio)
    return sim, channel, radios


class TestArea:
    def test_contains(self):
        assert AREA.contains(Position(500, 500))
        assert not AREA.contains(Position(-1, 500))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Area(0, 0, 0, 10)


class TestRandomWaypoint:
    def test_nodes_move_once_started(self):
        sim, channel, radios = build()
        RandomWaypointMobility(sim, channel, radios, AREA, pause_time=0.0).start()
        sim.run(until=10.0)
        for radio in radios:
            assert channel.position_of(radio) != Position(500.0, 500.0)

    def test_positions_stay_inside_area(self):
        sim, channel, radios = build(seed=2)
        mob = RandomWaypointMobility(
            sim, channel, radios, AREA, speed_range=(5.0, 20.0), pause_time=0.0
        ).start()
        for _ in range(100):
            sim.run(until=sim.now + 0.5)
            for radio in radios:
                assert AREA.contains(channel.position_of(radio))

    def test_step_length_bounded_by_speed(self):
        sim, channel, radios = build(n=1, seed=3)
        vmax = 10.0
        mob = RandomWaypointMobility(
            sim, channel, radios, AREA, speed_range=(1.0, vmax),
            pause_time=0.0, tick_interval=0.5,
        ).start()
        prev = channel.position_of(radios[0])
        for _ in range(50):
            sim.run(until=sim.now + 0.5)
            current = channel.position_of(radios[0])
            assert prev.distance_to(current) <= vmax * 0.5 + 1e-6
            prev = current

    def test_pause_at_waypoint(self):
        sim, channel, radios = build(n=1, seed=4)
        mob = RandomWaypointMobility(
            sim, channel, radios, AREA, speed_range=(200.0, 200.0),
            pause_time=5.0, tick_interval=0.5,
        ).start()
        # fast node reaches its first waypoint quickly, then must sit still
        arrived_at = None
        last = channel.position_of(radios[0])
        for _ in range(200):
            sim.run(until=sim.now + 0.5)
            current = channel.position_of(radios[0])
            if arrived_at is None and current == mob.destination_of(radios[0]) is None:
                pass
            if current == last and arrived_at is None:
                arrived_at = sim.now
            if arrived_at is not None and sim.now < arrived_at + 4.5:
                assert current == last, "node moved during its pause"
            if arrived_at is not None and sim.now > arrived_at + 6.0:
                break
            last = current

    def test_deterministic_per_seed(self):
        paths = []
        for _ in range(2):
            sim, channel, radios = build(n=2, seed=7)
            RandomWaypointMobility(sim, channel, radios, AREA, pause_time=0.0).start()
            sim.run(until=5.0)
            paths.append(
                [(channel.position_of(r).x, channel.position_of(r).y) for r in radios]
            )
        assert paths[0] == paths[1]

    def test_parameter_validation(self):
        sim, channel, radios = build()
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, channel, radios, AREA, speed_range=(0.0, 5.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, channel, radios, AREA, tick_interval=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, channel, radios, AREA, pause_time=-1.0)

    def test_stop_freezes_everyone(self):
        sim, channel, radios = build(seed=5)
        mob = RandomWaypointMobility(sim, channel, radios, AREA, pause_time=0.0).start()
        sim.run(until=2.0)
        snapshot = [channel.position_of(r) for r in radios]
        mob.stop()
        sim.run(until=10.0)
        assert [channel.position_of(r) for r in radios] == snapshot
