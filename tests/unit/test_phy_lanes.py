"""Unit tests for PHY execution-lane selection and the fan-out kernel."""

import pytest

from repro.phy import batch as batch_mod
from repro.phy import (
    HAVE_NUMPY,
    LANES,
    NUMPY_MIN_FANOUT,
    BatchFanout,
    Position,
    Radio,
    WirelessChannel,
    resolve_lane,
)
from repro.sim.simulator import Simulator

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch lane requires numpy"
)


# -- resolve_lane -----------------------------------------------------------


def test_resolve_lane_rejects_unknown_values():
    with pytest.raises(ValueError, match="unknown phy_lane"):
        resolve_lane("vectorised")


def test_resolve_lane_auto_follows_numpy_availability(monkeypatch):
    monkeypatch.delenv(batch_mod.ENV_VAR, raising=False)
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", True)
    assert resolve_lane("auto") == "batch"
    assert resolve_lane(None) == "batch"
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    assert resolve_lane("auto") == "scalar"


def test_resolve_lane_env_overrides_auto_only(monkeypatch):
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", True)
    monkeypatch.setenv(batch_mod.ENV_VAR, "scalar")
    assert resolve_lane("auto") == "scalar"
    # An explicit lane wins over the environment.
    assert resolve_lane("batch") == "batch"
    monkeypatch.setenv(batch_mod.ENV_VAR, "batch")
    assert resolve_lane("auto") == "batch"
    assert resolve_lane("scalar") == "scalar"


def test_resolve_lane_rejects_bad_env_value(monkeypatch):
    monkeypatch.setenv(batch_mod.ENV_VAR, "turbo")
    with pytest.raises(ValueError, match=batch_mod.ENV_VAR):
        resolve_lane("auto")


def test_resolve_lane_explicit_batch_requires_numpy(monkeypatch):
    monkeypatch.delenv(batch_mod.ENV_VAR, raising=False)
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    with pytest.raises(ValueError, match="requires numpy"):
        resolve_lane("batch")
    # ...including when the environment forces it on an auto config.
    monkeypatch.setenv(batch_mod.ENV_VAR, "batch")
    with pytest.raises(ValueError, match="requires numpy"):
        resolve_lane("auto")


def test_lane_tuple_is_the_cli_contract():
    assert LANES == ("auto", "batch", "scalar")


# -- BatchFanout ------------------------------------------------------------


def _entries(delays):
    def cb(*args):  # pragma: no cover - never invoked here
        raise AssertionError("fan-out callbacks must not fire in this test")

    return [(cb, cb, i % 2 == 0, delay, 1.0 + i) for i, delay in enumerate(delays)]


def _scalar_groupings(delays, now, duration):
    starts = [now + d for d in delays]
    ends = [(now + d) + duration for d in delays]
    departs = [now + (d + duration) for d in delays]
    return starts, ends, departs


@pytest.mark.parametrize("width", [0, 1, 3, NUMPY_MIN_FANOUT - 1])
def test_small_fanouts_use_the_plain_loop(width):
    fan = BatchFanout(_entries([i * 7.3e-7 for i in range(width)]))
    assert fan.width == width
    assert not fan.use_numpy


def test_fanout_preserves_entry_order_and_fields():
    entries = _entries([3e-7, 1e-7, 2e-7])
    fan = BatchFanout(entries)
    assert fan.delays == [3e-7, 1e-7, 2e-7]
    for (cb_s, cb_e, recv, _delay, power), (f_s, f_e, f_recv, f_power) in zip(
        entries, fan.neighbors
    ):
        assert (cb_s, cb_e, recv, power) == (f_s, f_e, f_recv, f_power)


@pytest.mark.parametrize("width", [1, 5, NUMPY_MIN_FANOUT, NUMPY_MIN_FANOUT + 9])
def test_timestamps_match_the_scalar_groupings_bitwise(width):
    # Awkward decimals on purpose: the scalar groupings differ by real ULPs
    # here, so an associativity slip in either path fails loudly.
    delays = [1e-7 + i * 3.1e-9 for i in range(width)]
    fan = BatchFanout(_entries(delays))
    now, duration = 12.3456789, 0.00123456
    starts, ends, departs = fan.timestamps(now, duration)
    exp_starts, exp_ends, exp_departs = _scalar_groupings(delays, now, duration)
    assert [t.hex() for t in starts] == [t.hex() for t in exp_starts]
    assert [t.hex() for t in ends] == [t.hex() for t in exp_ends]
    assert [t.hex() for t in departs] == [t.hex() for t in exp_departs]
    assert all(isinstance(t, float) for t in starts + ends + departs)


@needs_numpy
def test_wide_fanouts_take_the_numpy_path():
    fan = BatchFanout(_entries([i * 1e-8 for i in range(NUMPY_MIN_FANOUT)]))
    assert fan.use_numpy
    # Reusing the preallocated output arrays must not leak between frames.
    first = fan.timestamps(1.0, 0.5)
    second = fan.timestamps(2.0, 0.25)
    assert first[0] != second[0]
    assert second[0][0] == 2.0 + fan.delays[0]


# -- channel dispatch -------------------------------------------------------


def _channel(lane):
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim, phy_lane=lane)
    for i in range(3):
        channel.register(Radio(sim, i), Position(i * 200.0, 0.0))
    return channel


@needs_numpy
def test_batch_channel_dispatches_to_the_batch_transmit():
    channel = _channel("batch")
    assert channel.lane == "batch"
    assert channel.transmit.__func__ is WirelessChannel._transmit_batch


def test_scalar_channel_keeps_the_reference_transmit():
    channel = _channel("scalar")
    assert channel.lane == "scalar"
    assert "transmit" not in vars(channel)  # class method, not shadowed


@needs_numpy
def test_batch_fanout_cache_invalidates_with_topology():
    channel = _channel("batch")
    radios = list(channel._positions)
    channel._batch_map()
    assert channel._batch_fanout is not None
    channel.move(radios[0], Position(50.0, 0.0))
    assert channel._batch_fanout is None
