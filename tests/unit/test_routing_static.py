"""Unit tests for static shortest-path routing."""

from repro.net import Node
from repro.phy import Position, WirelessChannel
from repro.routing import (
    StaticRouting,
    compute_static_routes,
    install_static_routing,
    neighbor_graph,
)
from repro.sim import Simulator


def build(positions, seed=1):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    nodes = [Node(sim, channel, i, pos) for i, pos in enumerate(positions)]
    return sim, channel, nodes


def test_static_routing_lookup():
    routing = StaticRouting({5: 2})
    assert routing.next_hop(5) == 2
    assert routing.next_hop(6) is None
    routing.add_route(6, 3)
    assert routing.next_hop(6) == 3


def test_neighbor_graph_chain():
    sim, channel, nodes = build([Position(250.0 * i) for i in range(4)])
    graph = neighbor_graph(nodes, channel)
    assert graph[0] == [1]
    assert set(graph[1]) == {0, 2}
    assert set(graph[2]) == {1, 3}


def test_compute_static_routes_chain_next_hops():
    sim, channel, nodes = build([Position(250.0 * i) for i in range(5)])
    tables = compute_static_routes(nodes, channel)
    # node 0 reaches everyone via node 1
    assert tables[0] == {1: 1, 2: 1, 3: 1, 4: 1}
    # middle node routes each direction correctly
    assert tables[2][0] == 1
    assert tables[2][4] == 3


def test_unreachable_destinations_absent():
    sim, channel, nodes = build([Position(0), Position(10_000)])
    tables = compute_static_routes(nodes, channel)
    assert 1 not in tables[0]
    assert 0 not in tables[1]


def test_routes_prefer_shortest_path():
    # a 2x2 grid at 250 m spacing: diagonal neighbours are ~354 m apart
    # (out of range), so corner-to-corner is exactly two hops.
    sim, channel, nodes = build(
        [Position(0, 0), Position(250, 0), Position(0, 250), Position(250, 250)]
    )
    tables = compute_static_routes(nodes, channel)
    assert tables[0][3] in (1, 2)


def test_install_attaches_routing_to_every_node():
    sim, channel, nodes = build([Position(250.0 * i) for i in range(3)])
    install_static_routing(nodes, channel)
    for node in nodes:
        assert isinstance(node.routing, StaticRouting)
    assert nodes[0].routing.next_hop(2) == 1
