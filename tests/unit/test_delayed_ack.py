"""Unit tests for the delayed-ACK receiver option."""

import pytest

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.sim import Simulator
from repro.transport import TcpSegment, TcpSink


class Harness:
    def __init__(self, delack_timeout=0.2):
        self.sim = Simulator(seed=1)
        channel = WirelessChannel(self.sim)
        self.node = Node(self.sim, channel, 1, Position(0))
        self.sink = TcpSink(
            self.sim, self.node, port=20,
            delayed_ack=True, delack_timeout=delack_timeout,
        )
        self.acks = []
        self.node.send = lambda packet: self.acks.append(
            (self.sim.now, packet.payload)
        )

    def deliver(self, seq):
        segment = TcpSegment("data", sport=10, dport=20, seq=seq, payload_bytes=100)
        self.sink.receive_packet(
            Packet(src=0, dst=1, protocol="tcp", size_bytes=140, payload=segment)
        )


def test_single_in_order_segment_acked_after_timeout():
    h = Harness()
    h.deliver(0)
    assert h.acks == []  # held
    h.sim.run(until=0.3)
    assert len(h.acks) == 1
    assert h.acks[0][0] == pytest.approx(0.2)
    assert h.acks[0][1].ack == 1
    assert h.sink.delayed_acks == 1


def test_second_segment_forces_immediate_ack():
    h = Harness()
    h.deliver(0)
    h.deliver(1)
    assert len(h.acks) == 1  # ack-every-other
    assert h.acks[0][1].ack == 2
    h.sim.run(until=1.0)
    assert len(h.acks) == 1  # no stale delayed ack later


def test_out_of_order_acked_immediately():
    h = Harness()
    h.deliver(0)  # pending
    h.deliver(5)  # reordering: flush + immediate dup-ack
    assert len(h.acks) == 2
    assert [seg.ack for _, seg in h.acks] == [1, 1]


def test_hole_fill_acked_immediately():
    h = Harness()
    h.deliver(1)  # out of order -> immediate ack 0
    h.deliver(0)  # fills the hole -> immediate cumulative ack 2
    assert [seg.ack for _, seg in h.acks] == [0, 2]
    h.sim.run(until=1.0)
    assert len(h.acks) == 2


def test_dupack_stream_unaffected_by_delack():
    """Loss detection must still see one dup-ACK per out-of-order arrival."""
    h = Harness()
    h.deliver(0)
    h.sim.run(until=0.3)  # flush the first ack
    before = len(h.acks)
    for seq in (2, 3, 4):
        h.deliver(seq)
    assert len(h.acks) - before == 3
    assert all(seg.ack == 1 for _, seg in h.acks[before:])


def test_disabled_by_default():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    node = Node(sim, channel, 1, Position(0))
    sink = TcpSink(sim, node, port=20)
    acks = []
    node.send = lambda packet: acks.append(packet)
    segment = TcpSegment("data", sport=10, dport=20, seq=0, payload_bytes=100)
    sink.receive_packet(
        Packet(src=0, dst=1, protocol="tcp", size_bytes=140, payload=segment)
    )
    assert len(acks) == 1  # immediate


def test_end_to_end_with_delayed_acks():
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.transport import TcpNewReno

    net = build_chain(2, seed=2)
    install_static_routing(net.nodes, net.channel)
    sender = TcpNewReno(net.sim, net.nodes[0], dst=2, sport=10, dport=20, window=8)
    sink = TcpSink(net.sim, net.nodes[2], port=20, delayed_ack=True)
    sender.start(0.0)
    net.sim.run(until=10.0)
    assert sink.delivered_packets > 100
    # delayed acks really happened (ack-every-other or timer flushes)
    assert sink.acks_sent < sink.delivered_packets
