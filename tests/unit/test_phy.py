"""Unit tests for positions, propagation, error models and frame timing."""

import random

import pytest

from repro.phy import (
    DiskPropagation,
    GilbertElliott,
    NoError,
    PacketErrorRate,
    PhyParams,
    Position,
    UniformBitError,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Position(10, -2), Position(-5, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_positions_are_hashable_value_objects(self):
        assert Position(1, 2) == Position(1, 2)
        assert len({Position(1, 2), Position(1, 2)}) == 1


class TestDiskPropagation:
    def test_defaults_match_paper_setup(self):
        model = DiskPropagation()
        assert model.rx_range == 250.0
        assert model.cs_range > model.rx_range

    def test_receive_within_range_only(self):
        model = DiskPropagation(rx_range=250.0, cs_range=550.0)
        a = Position(0, 0)
        assert model.can_receive(a, Position(250, 0))
        assert not model.can_receive(a, Position(251, 0))

    def test_sense_extends_beyond_receive(self):
        model = DiskPropagation(rx_range=250.0, cs_range=550.0)
        a = Position(0, 0)
        assert model.can_sense(a, Position(500, 0))
        assert not model.can_sense(a, Position(551, 0))

    def test_rx_power_follows_inverse_fourth_power(self):
        model = DiskPropagation()
        assert model.rx_power(500.0) == pytest.approx(model.rx_power(250.0) / 16.0)

    def test_rx_power_floors_tiny_distances(self):
        model = DiskPropagation()
        assert model.rx_power(0.0) == model.rx_power(1.0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            DiskPropagation(rx_range=0.0)
        with pytest.raises(ValueError):
            DiskPropagation(rx_range=250.0, cs_range=100.0)


class TestErrorModels:
    def test_no_error_never_corrupts(self):
        rng = random.Random(1)
        model = NoError()
        assert not any(model.frame_corrupted(rng, 1500, 0.0) for _ in range(100))

    def test_uniform_ber_zero_never_corrupts(self):
        rng = random.Random(1)
        model = UniformBitError(0.0)
        assert not any(model.frame_corrupted(rng, 1500, 0.0) for _ in range(100))

    def test_uniform_ber_rate_is_plausible(self):
        rng = random.Random(1)
        ber = 1e-5
        model = UniformBitError(ber)
        n = 5000
        losses = sum(model.frame_corrupted(rng, 1500, 0.0) for _ in range(n))
        expected = 1 - (1 - ber) ** (1500 * 8)  # ~11.3%
        assert losses / n == pytest.approx(expected, abs=0.03)

    def test_uniform_ber_validation(self):
        with pytest.raises(ValueError):
            UniformBitError(-0.1)
        with pytest.raises(ValueError):
            UniformBitError(1.0)

    def test_packet_error_rate_statistics(self):
        rng = random.Random(2)
        model = PacketErrorRate(0.25)
        n = 4000
        losses = sum(model.frame_corrupted(rng, 100, 0.0) for _ in range(n))
        assert losses / n == pytest.approx(0.25, abs=0.03)

    def test_packet_error_rate_validation(self):
        with pytest.raises(ValueError):
            PacketErrorRate(1.5)

    def test_gilbert_elliott_is_burstier_than_uniform(self):
        """In the bad state losses cluster; measure run lengths."""
        rng = random.Random(3)
        model = GilbertElliott(
            ber_good=0.0, ber_bad=0.02, mean_good=1.0, mean_bad=0.2
        )
        outcomes = [
            model.frame_corrupted(rng, 1500, t * 0.01) for t in range(20000)
        ]
        losses = sum(outcomes)
        assert losses > 0
        # consecutive-loss pairs should be far above the independent-loss
        # expectation p^2 * n
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        p = losses / len(outcomes)
        independent_pairs = p * p * len(outcomes)
        assert pairs > 3 * independent_pairs

    def test_gilbert_elliott_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(mean_good=0.0)


class TestPhyParams:
    def test_data_tx_time_includes_plcp(self):
        phy = PhyParams()
        # 1528 bytes at 2 Mb/s = 6.112 ms + 192 us PLCP
        assert phy.data_tx_time(1528) == pytest.approx(0.006112 + 192e-6)

    def test_control_frames_go_at_basic_rate(self):
        phy = PhyParams()
        assert phy.control_tx_time(14) == pytest.approx(192e-6 + 14 * 8 / 1e6)

    def test_control_slower_than_data_per_byte(self):
        phy = PhyParams()
        assert phy.control_tx_time(100) > phy.data_tx_time(100)
