"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import EventScheduler, SchedulerError


def test_runs_events_in_time_order():
    sched = EventScheduler()
    order = []
    sched.schedule(2.0, order.append, "b")
    sched.schedule(1.0, order.append, "a")
    sched.schedule(3.0, order.append, "c")
    sched.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_times():
    sched = EventScheduler()
    times = []
    sched.schedule(0.5, lambda: times.append(sched.now))
    sched.schedule(1.5, lambda: times.append(sched.now))
    sched.run()
    assert times == [0.5, 1.5]


def test_same_time_events_run_in_insertion_order():
    sched = EventScheduler()
    order = []
    for label in "abcde":
        sched.schedule(1.0, order.append, label)
    sched.run()
    assert order == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sched = EventScheduler()
    order = []
    sched.schedule(1.0, order.append, "low", priority=1)
    sched.schedule(1.0, order.append, "high", priority=0)
    sched.run()
    assert order == ["high", "low"]


def test_cancelled_event_does_not_run():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    sched.cancel(event)
    sched.run()
    assert fired == []
    assert sched.pending_events == 0


def test_cancel_none_is_noop():
    sched = EventScheduler()
    sched.cancel(None)  # must not raise


def test_double_cancel_does_not_corrupt_pending_count():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.cancel(event)
    sched.cancel(event)
    assert sched.pending_events == 0


def test_schedule_in_past_raises():
    sched = EventScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule(1.0, lambda: None)


def test_negative_delay_raises():
    sched = EventScheduler()
    with pytest.raises(SchedulerError):
        sched.schedule_after(-0.1, lambda: None)


def test_run_until_stops_at_boundary_and_advances_clock():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(5.0, fired.append, 5)
    sched.run(until=2.0)
    assert fired == [1]
    assert sched.now == 2.0
    # the 5.0 event remains runnable afterwards
    sched.run()
    assert fired == [1, 5]


def test_run_until_includes_events_exactly_at_boundary():
    sched = EventScheduler()
    fired = []
    sched.schedule(2.0, fired.append, "edge")
    sched.run(until=2.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_are_executed():
    sched = EventScheduler()
    order = []

    def first():
        order.append("first")
        sched.schedule_after(1.0, lambda: order.append("second"))

    sched.schedule(1.0, first)
    sched.run()
    assert order == ["first", "second"]


def test_max_events_limits_execution():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), fired.append, i)
    sched.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(2.0, sched.stop)
    sched.schedule(3.0, fired.append, 3)
    sched.run()
    assert fired == [1]


def test_step_returns_false_on_empty_queue():
    sched = EventScheduler()
    assert sched.step() is False


def test_peek_time_skips_cancelled():
    sched = EventScheduler()
    first = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.cancel(first)
    assert sched.peek_time() == 2.0


def test_processed_event_count():
    sched = EventScheduler()
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    sched.run()
    assert sched.processed_events == 5


def test_reentrant_run_raises():
    sched = EventScheduler()

    def reenter():
        with pytest.raises(SchedulerError):
            sched.run()

    sched.schedule(1.0, reenter)
    sched.run()
