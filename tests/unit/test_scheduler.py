"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import EventScheduler, SchedulerError


def test_runs_events_in_time_order():
    sched = EventScheduler()
    order = []
    sched.schedule(2.0, order.append, "b")
    sched.schedule(1.0, order.append, "a")
    sched.schedule(3.0, order.append, "c")
    sched.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_times():
    sched = EventScheduler()
    times = []
    sched.schedule(0.5, lambda: times.append(sched.now))
    sched.schedule(1.5, lambda: times.append(sched.now))
    sched.run()
    assert times == [0.5, 1.5]


def test_same_time_events_run_in_insertion_order():
    sched = EventScheduler()
    order = []
    for label in "abcde":
        sched.schedule(1.0, order.append, label)
    sched.run()
    assert order == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sched = EventScheduler()
    order = []
    sched.schedule(1.0, order.append, "low", priority=1)
    sched.schedule(1.0, order.append, "high", priority=0)
    sched.run()
    assert order == ["high", "low"]


def test_cancelled_event_does_not_run():
    sched = EventScheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    sched.cancel(event)
    sched.run()
    assert fired == []
    assert sched.pending_events == 0


def test_cancel_none_is_noop():
    sched = EventScheduler()
    sched.cancel(None)  # must not raise


def test_double_cancel_does_not_corrupt_pending_count():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.cancel(event)
    sched.cancel(event)
    assert sched.pending_events == 0


def test_schedule_in_past_raises():
    sched = EventScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SchedulerError):
        sched.schedule(1.0, lambda: None)


def test_negative_delay_raises():
    sched = EventScheduler()
    with pytest.raises(SchedulerError):
        sched.schedule_after(-0.1, lambda: None)


def test_run_until_stops_at_boundary_and_advances_clock():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(5.0, fired.append, 5)
    sched.run(until=2.0)
    assert fired == [1]
    assert sched.now == 2.0
    # the 5.0 event remains runnable afterwards
    sched.run()
    assert fired == [1, 5]


def test_run_until_includes_events_exactly_at_boundary():
    sched = EventScheduler()
    fired = []
    sched.schedule(2.0, fired.append, "edge")
    sched.run(until=2.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_are_executed():
    sched = EventScheduler()
    order = []

    def first():
        order.append("first")
        sched.schedule_after(1.0, lambda: order.append("second"))

    sched.schedule(1.0, first)
    sched.run()
    assert order == ["first", "second"]


def test_max_events_limits_execution():
    sched = EventScheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), fired.append, i)
    sched.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(2.0, sched.stop)
    sched.schedule(3.0, fired.append, 3)
    sched.run()
    assert fired == [1]


def test_step_returns_false_on_empty_queue():
    sched = EventScheduler()
    assert sched.step() is False


def test_peek_time_skips_cancelled():
    sched = EventScheduler()
    first = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.cancel(first)
    assert sched.peek_time() == 2.0


def test_processed_event_count():
    sched = EventScheduler()
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    sched.run()
    assert sched.processed_events == 5


def test_cancelled_event_at_exact_until_boundary_is_skipped():
    """A lazily-deleted event sitting exactly at ``until`` must not fire,
    must not block the clock, and must leave the pending count clean."""
    sched = EventScheduler()
    fired = []
    doomed = sched.schedule(2.0, fired.append, "doomed")
    sched.schedule(2.0, fired.append, "live")
    sched.cancel(doomed)
    sched.run(until=2.0)
    assert fired == ["live"]
    assert sched.now == 2.0
    assert sched.pending_events == 0


def test_only_cancelled_events_at_until_boundary_still_advance_clock():
    sched = EventScheduler()
    doomed = sched.schedule(2.0, lambda: None)
    sched.cancel(doomed)
    sched.run(until=2.0)
    assert sched.now == 2.0
    assert sched.pending_events == 0


def test_callback_cancels_simultaneous_event():
    """Cancelling a same-timestamp event from inside a callback must keep
    it from firing even though it is already ordered for this instant."""
    sched = EventScheduler()
    fired = []
    later = sched.schedule(1.0, fired.append, "later")

    def first():
        fired.append("first")
        sched.cancel(later)

    sched.schedule(1.0, first, priority=-1)
    sched.run()
    assert fired == ["first"]
    assert sched.pending_events == 0


def test_callback_cancelling_its_own_event_keeps_pending_consistent():
    """Self-cancellation must be a no-op: the firing event already left
    the pending set, so the count cannot go negative."""
    sched = EventScheduler()
    holder = {}

    def self_cancel():
        sched.cancel(holder["event"])

    holder["event"] = sched.schedule(1.0, self_cancel)
    survivor = sched.schedule(2.0, lambda: None)
    sched.run()
    assert sched.pending_events == 0
    assert not survivor.active


def test_fired_event_is_not_active_and_cancel_after_fire_is_noop():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    assert event.active
    sched.run()
    assert event.fired and not event.active
    sched.cancel(event)
    assert sched.pending_events == 0


def test_truncated_run_does_not_jump_clock_past_queued_events():
    """``run(until=..., max_events=...)`` stopping early must leave the
    clock where it is: advancing to ``until`` would make the remaining
    (earlier) events run with the clock moving backwards."""
    sched = EventScheduler()
    fired = []
    for i in range(1, 6):
        sched.schedule(float(i), fired.append, i)
    sched.run(until=5.0, max_events=2)
    assert fired == [1, 2]
    assert sched.now == 2.0  # not 5.0: events at 3/4/5 are still queued
    observed = []
    sched.schedule(2.5, lambda: observed.append(sched.now))
    sched.run()
    assert fired == [1, 2, 3, 4, 5]
    assert observed == [2.5]
    assert sched.now == 5.0


def test_clock_never_moves_backwards_across_truncated_runs():
    sched = EventScheduler()
    times = []
    for i in range(1, 8):
        sched.schedule(float(i), lambda: times.append(sched.now))
    while sched.pending_events:
        sched.run(until=7.0, max_events=2)
    assert times == sorted(times)
    assert sched.now == 7.0


def test_truncated_run_with_no_remaining_events_still_advances_to_until():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.run(until=3.0, max_events=5)
    assert fired == [1]
    assert sched.now == 3.0


def test_pending_count_across_schedule_cancel_peek_run():
    """peek_time()'s lazy pop of cancelled events must not disturb the
    pending/processed counters at any point in the sequence."""
    sched = EventScheduler()
    doomed = sched.schedule(1.0, lambda: None)
    live = sched.schedule(2.0, lambda: None)
    assert sched.pending_events == 2
    sched.cancel(doomed)
    assert sched.pending_events == 1  # decremented at cancel time...
    assert sched.peek_time() == 2.0
    assert sched.pending_events == 1  # ...not again at the lazy pop
    assert sched.processed_events == 0
    sched.run()
    assert sched.pending_events == 0
    assert sched.processed_events == 1
    assert live.fired


def test_peek_after_cancelling_everything_is_empty_and_consistent():
    sched = EventScheduler()
    events = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
    for event in events:
        sched.cancel(event)
    assert sched.pending_events == 0
    assert sched.peek_time() is None
    sched.run()
    assert sched.pending_events == 0
    assert sched.processed_events == 0


def test_interleaved_cancel_peek_run_chain():
    """Repeated schedule -> cancel -> peek -> run(max_events=1) rounds (the
    MAC backoff shape) keep both counters exact."""
    sched = EventScheduler()
    fired = []
    for i in range(10):
        doomed = sched.schedule(sched.now + 1.0, fired.append, -1)
        sched.cancel(doomed)
        sched.schedule(sched.now + 0.1, fired.append, i)
        assert sched.peek_time() == pytest.approx(sched.now + 0.1)
        assert sched.pending_events == 1
        sched.run(max_events=1)
        assert sched.pending_events == 0
        assert sched.processed_events == i + 1
    assert fired == list(range(10))


def test_cancel_between_peek_and_run_skips_event():
    sched = EventScheduler()
    fired = []
    doomed = sched.schedule(1.0, fired.append, "doomed")
    assert sched.peek_time() == 1.0
    sched.cancel(doomed)
    assert sched.peek_time() is None
    sched.run()
    assert fired == []
    assert sched.pending_events == 0


def test_freelist_reuses_retired_event_objects():
    """Cancelled-and-surfaced and fired events are recycled into later
    schedules; the reissued handle starts a fresh lifecycle."""
    sched = EventScheduler()
    doomed = sched.schedule(1.0, lambda: None)
    sched.cancel(doomed)
    sched.run()  # surfaces the cancelled event -> freelist
    fresh = sched.schedule(2.0, lambda: None)
    assert fresh is doomed  # recycled object...
    assert fresh.active  # ...with reset state
    assert not fresh.fired
    sched.run()
    assert fresh.fired


def test_recycled_handle_preserves_terminal_state_until_reissue():
    """A holder inspecting a retired handle still sees fired/cancelled."""
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.run()
    assert event.fired and not event.active
    cancelled = sched.schedule(2.0, lambda: None)
    # the freelist reissued the fired object; the old handle is the new event
    sched.cancel(cancelled)
    sched.run()
    assert cancelled.cancelled and not cancelled.active
    assert sched.pending_events == 0


def test_freelist_reuse_does_not_leak_callbacks_or_args():
    sched = EventScheduler()
    payload = object()
    event = sched.schedule(1.0, lambda x: None, payload)
    sched.run()
    # retired events drop payload references so the freelist cannot pin them
    assert event.callback is None
    assert event.args == ()


def test_equal_time_priority_and_insertion_order_with_churn():
    """Tuple-heap ordering: equal-time events fire in (priority, insertion)
    order even when recycled event objects are interleaved."""
    sched = EventScheduler()
    # retire a few events first so later schedules draw from the freelist
    for _ in range(3):
        victim = sched.schedule(0.5, lambda: None)
        sched.cancel(victim)
    sched.run(until=0.6)
    order = []
    sched.schedule(1.0, order.append, "c", priority=1)
    sched.schedule(1.0, order.append, "a", priority=-1)
    sched.schedule(1.0, order.append, "d", priority=1)
    sched.schedule(1.0, order.append, "b", priority=-1)
    sched.schedule(1.0, order.append, "e")
    sched.run()
    assert order == ["a", "b", "e", "c", "d"]


def test_reentrant_run_raises():
    sched = EventScheduler()

    def reenter():
        with pytest.raises(SchedulerError):
            sched.run()

    sched.schedule(1.0, reenter)
    sched.run()


# ---------------------------------------------------------------------------
# schedule_batch — the PHY fan-out bulk-insertion API


def test_schedule_batch_empty_is_noop():
    sched = EventScheduler()
    assert sched.schedule_batch([]) == 0
    assert sched.pending_events == 0
    sched.run()
    assert sched.processed_events == 0


def test_schedule_batch_runs_in_time_order():
    sched = EventScheduler()
    order = []
    assert sched.schedule_batch([
        (2.0, order.append, ("b",), None),
        (1.0, order.append, ("a",), None),
        (3.0, order.append, ("c",), None),
    ]) == 3
    sched.run()
    assert order == ["a", "b", "c"]


def test_schedule_batch_ties_fire_in_entry_order():
    sched = EventScheduler()
    order = []
    sched.schedule_batch([(1.0, order.append, (label,), None) for label in "abcde"])
    sched.run()
    assert order == list("abcde")


def test_schedule_batch_interleaves_with_scalar_schedule_by_seq():
    """Batch entries and scalar schedule calls share one seq counter, so
    equal-timestamp events fire in overall insertion order regardless of
    which API inserted them."""
    sched = EventScheduler()
    order = []
    sched.schedule(1.0, order.append, "s1")
    sched.schedule_batch([
        (1.0, order.append, ("b1",), None),
        (1.0, order.append, ("b2",), None),
    ])
    sched.schedule(1.0, order.append, "s2")
    sched.schedule_batch([(1.0, order.append, ("b3",), None)])
    sched.run()
    assert order == ["s1", "b1", "b2", "s2", "b3"]


def test_schedule_batch_matches_scalar_schedule_execution_for_execution():
    """A batch insert executes identically to the same sequence of scalar
    schedule() calls: same order, same clock stops, same counters."""

    def fill(sched, use_batch):
        order = []
        entries = [
            (0.5, lambda: order.append(("x", sched.now)), (), "phy.sig_start"),
            (0.5, lambda: order.append(("y", sched.now)), (), "phy.sig_end"),
            (0.2, lambda: order.append(("z", sched.now)), (), None),
        ]
        if use_batch:
            sched.schedule_batch(entries)
        else:
            for t, cb, args, name in entries:
                sched.schedule(t, cb, *args, name=name)
        return order

    a, b = EventScheduler(), EventScheduler()
    order_a = fill(a, use_batch=True)
    order_b = fill(b, use_batch=False)
    assert a.pending_events == b.pending_events == 3
    a.run(), b.run()
    assert order_a == order_b == [("z", 0.2), ("x", 0.5), ("y", 0.5)]
    assert a.processed_events == b.processed_events == 3
    assert a.pending_events == b.pending_events == 0


def test_schedule_batch_into_past_raises_and_keeps_earlier_entries():
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    sched.run()  # now == 1.0
    fired = []
    with pytest.raises(SchedulerError):
        sched.schedule_batch([
            (2.0, fired.append, ("ok",), None),
            (0.5, fired.append, ("past",), None),
        ])
    # the valid leading entry stays scheduled, as with individual calls
    assert sched.pending_events == 1
    sched.run()
    assert fired == ["ok"]


def test_schedule_batch_seq_counter_survives_a_past_time_error():
    """After a mid-batch error, later scalar inserts continue the seq
    sequence from the last successfully scheduled batch entry."""
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    sched.run()
    order = []
    with pytest.raises(SchedulerError):
        sched.schedule_batch([
            (2.0, order.append, ("batch",), None),
            (0.0, order.append, ("past",), None),
        ])
    sched.schedule(2.0, order.append, "scalar")
    sched.run()
    assert order == ["batch", "scalar"]


def test_schedule_batch_entries_run_under_step_and_peek():
    """The fire-and-forget heap entries work through every execution path,
    not just run(): step() dispatches them and peek_time() sees them."""
    sched = EventScheduler()
    order = []
    sched.schedule_batch([
        (1.0, order.append, ("a",), None),
        (2.0, order.append, ("b",), None),
    ])
    assert sched.peek_time() == 1.0
    assert sched.step()
    assert order == ["a"] and sched.now == 1.0
    assert sched.peek_time() == 2.0
    assert sched.step()
    assert not sched.step()
    assert order == ["a", "b"]


def test_schedule_batch_entries_do_not_touch_the_freelist():
    """Batch entries are Event-free: they neither consume recycled events
    nor park anything on the freelist when they fire."""
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    sched.schedule(1.0, lambda: None)
    sched.run()  # both events retire to the freelist
    before = len(sched._free)
    assert before >= 2
    sched.schedule_batch([
        (2.0, (lambda: None), (), None),
        (2.0, (lambda: None), (), None),
    ])
    assert len(sched._free) == before
    sched.run()
    assert len(sched._free) == before


def test_cancelling_around_batch_entries_is_exact():
    """Scalar events interleaved with (uncancellable) batch entries cancel
    cleanly; the lazy-deletion sweep must recycle only real Events."""
    sched = EventScheduler()
    fired = []
    doomed = sched.schedule(1.0, fired.append, "scalar-doomed")
    sched.schedule_batch([(1.0, fired.append, ("batch",), None)])
    keeper = sched.schedule(1.0, fired.append, "scalar-kept")
    sched.cancel(doomed)
    assert sched.pending_events == 2
    sched.run()
    assert fired == ["batch", "scalar-kept"]
    assert keeper.fired
