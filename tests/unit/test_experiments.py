"""Unit tests for the experiment harness (config, runners, reporting)."""

import pytest

from repro.experiments import (
    PAPER_VARIANTS,
    RunSpec,
    ScenarioConfig,
    SweepConfig,
    Table51Parameters,
    ascii_series,
    execute_run,
    fig_cwnd_traces,
    format_coexistence,
    format_sweep,
    format_table,
    run_chain,
    run_cross,
    stable_digest,
)
from repro.experiments.figures import (
    CoexistencePoint,
    SweepPoint,
    SweepResult,
)


class TestConfig:
    def test_table_5_1_rows_match_paper(self):
        rows = dict(Table51Parameters().rows())
        assert rows["Link Bandwidth"] == "2Mbps"
        assert rows["Transmission Range"] == "250 m"
        assert rows["MAC"] == "802.11"
        assert rows["Routing"] == "AODV"
        assert rows["Number of Nodes"] == "4~32"

    def test_paper_variants(self):
        assert PAPER_VARIANTS == ("muzha", "newreno", "sack", "vegas")

    def test_sweep_scales(self):
        quick = SweepConfig.for_scale(full=False)
        full = SweepConfig.for_scale(full=True)
        assert max(full.hops) == 32
        assert len(full.seeds) >= len(quick.seeds)
        assert full.sim_time >= quick.sim_time


class TestRunSpec:
    def test_rejects_unknown_kind_and_bad_cross_arity(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunSpec(kind="mesh", hops=2, variants=("muzha",))
        with pytest.raises(ValueError, match="exactly two"):
            RunSpec(kind="cross", hops=2, variants=("muzha",))

    def test_dict_round_trip(self):
        spec = RunSpec(
            kind="chain", hops=3, variants=("muzha", "newreno"),
            starts=(0.0, 1.0), record_dynamics=True,
            config=ScenarioConfig(sim_time=2.0, window=4, seed=7),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        # the dict form is canonical-JSON hashable
        assert stable_digest(spec.to_dict()) == stable_digest(spec.to_dict())

    def test_with_seed_changes_only_the_seed(self):
        spec = RunSpec(kind="chain", hops=2, variants=("muzha",))
        reseeded = spec.with_seed(99)
        assert reseeded.config.seed == 99
        assert reseeded.config.replace(seed=spec.config.seed) == spec.config

    def test_execute_run_matches_run_chain(self):
        config = ScenarioConfig(sim_time=2.0, seed=3, window=4)
        spec = RunSpec(kind="chain", hops=2, variants=("newreno",), config=config)
        via_spec = execute_run(spec)
        direct = run_chain(2, ["newreno"], config=config)
        assert via_spec.to_dict() == direct.to_dict()

    def test_execute_run_cross_and_result_round_trip(self):
        from repro.experiments import RunResult

        config = ScenarioConfig(sim_time=2.0, seed=1, window=4)
        spec = RunSpec(kind="cross", hops=2, variants=("muzha", "newreno"),
                       config=config)
        result = execute_run(spec)
        assert len(result.flows) == 2
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.total_goodput_kbps == result.total_goodput_kbps


class TestRunners:
    def test_run_chain_single_flow(self):
        result = run_chain(
            2, ["newreno"], config=ScenarioConfig(sim_time=5.0, seed=1)
        )
        flow = result.flows[0]
        assert flow.variant == "newreno"
        assert flow.goodput_kbps > 0
        assert flow.cwnd_trace[0][1] == 1.0
        assert result.fairness == 1.0  # single flow

    def test_run_chain_static_routing(self):
        result = run_chain(
            2, ["newreno"], config=ScenarioConfig(sim_time=5.0, routing="static")
        )
        assert result.flows[0].goodput_kbps > 0

    def test_run_chain_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            run_chain(2, ["newreno"], config=ScenarioConfig(routing="ospf"))

    def test_run_chain_staggered_flows(self):
        result = run_chain(
            2,
            ["newreno", "newreno"],
            starts=[0.0, 2.0],
            config=ScenarioConfig(sim_time=6.0),
            record_dynamics=True,
        )
        assert len(result.flows) == 2
        assert result.flows[1].start_time == 2.0
        assert result.flows[0].rate_series_kbps  # dynamics recorded

    def test_run_chain_mismatched_starts_rejected(self):
        with pytest.raises(ValueError):
            run_chain(2, ["newreno"], starts=[0.0, 1.0])

    def test_run_cross_two_flows(self):
        result = run_cross(
            4, "newreno", "newreno", config=ScenarioConfig(sim_time=5.0)
        )
        assert len(result.flows) == 2
        assert 0.0 < result.fairness <= 1.0

    def test_muzha_flow_gets_drai_installed(self):
        result = run_chain(2, ["muzha"], config=ScenarioConfig(sim_time=5.0))
        assert result.flows[0].goodput_kbps > 0

    def test_packet_error_rate_injects_loss(self):
        clean = run_chain(2, ["newreno"], config=ScenarioConfig(sim_time=8.0))
        lossy = run_chain(
            2, ["newreno"], config=ScenarioConfig(sim_time=8.0, packet_error_rate=0.2)
        )
        assert lossy.flows[0].goodput_kbps < clean.flows[0].goodput_kbps

    def test_fig_cwnd_traces_covers_variants(self):
        traces = fig_cwnd_traces(2, variants=("muzha", "newreno"), sim_time=3.0)
        assert set(traces) == {"muzha", "newreno"}
        for trace in traces.values():
            assert trace[0] == (0.0, 1.0)


class TestReporting:
    def make_sweep(self):
        result = SweepResult(window=8, hops=(4, 8), variants=("muzha", "newreno"))
        for v in result.variants:
            for h in result.hops:
                result.points[(v, h)] = SweepPoint(
                    goodput_kbps=100.0 + h, goodput_stdev=1.0,
                    retransmits=float(h), timeouts=0.0, samples=3,
                )
        return result

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_format_sweep_goodput_and_retransmits(self):
        sweep = self.make_sweep()
        text = format_sweep(sweep, metric="goodput")
        assert "muzha" in text and "104.0" in text
        text = format_sweep(sweep, metric="retransmits")
        assert "8.0" in text
        with pytest.raises(ValueError):
            format_sweep(sweep, metric="latency")

    def test_sweep_series_accessors(self):
        sweep = self.make_sweep()
        assert sweep.goodput_series("muzha") == [(4, 104.0), (8, 108.0)]
        assert sweep.retransmit_series("newreno") == [(4, 4.0), (8, 8.0)]

    def test_format_coexistence(self):
        points = [CoexistencePoint(4, 100.0, 50.0, 0.9)]
        text = format_coexistence(points, "newreno", "vegas")
        assert "newreno" in text and "0.900" in text

    def test_ascii_series_renders(self):
        chart = ascii_series([(0.0, 0.0), (1.0, 5.0), (2.0, 2.0)], label="x")
        assert "x" in chart
        assert "*" in chart

    def test_ascii_series_empty(self):
        assert "(no data)" in ascii_series([], label="y")
