"""Unit tests for trace sinks, the time-series probe, and schema validation."""

import csv
import json

import pytest

from repro.obs import (
    CsvTraceSink,
    NdjsonTraceSink,
    TimeseriesProbe,
    TraceSink,
    load_schema,
    record_to_json_dict,
    validate,
    validate_manifest_file,
    validate_trace_file,
)
from repro.sim import Simulator, TraceBus, TraceRecord


# -- sinks --------------------------------------------------------------------


def test_ndjson_sink_round_trips_records(tmp_path):
    path = tmp_path / "trace.ndjson"
    bus = TraceBus()
    with NdjsonTraceSink(path).attach(bus) as sink:
        bus.emit(TraceRecord(0.5, "mac.1", "mac.tx", {"node": 1, "dst": 2}))
        bus.emit(TraceRecord(1.5, "ifq.2", "ifq.drop", {"node": 2, "len": 50}))
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == [
        {"t": 0.5, "source": "mac.1", "event": "mac.tx",
         "fields": {"node": 1, "dst": 2}},
        {"t": 1.5, "source": "ifq.2", "event": "ifq.drop",
         "fields": {"node": 2, "len": 50}},
    ]
    assert sink.records_written == 2
    assert sink.counts == {"mac.tx": 1, "ifq.drop": 1}


def test_csv_sink_writes_header_and_json_fields(tmp_path):
    path = tmp_path / "trace.csv"
    bus = TraceBus()
    with CsvTraceSink(path).attach(bus):
        bus.emit(TraceRecord(0.25, "tcp.0", "tcp.cwnd", {"cwnd": 4.0}))
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["time", "source", "event", "fields"]
    assert rows[1][:3] == ["0.25", "tcp.0", "tcp.cwnd"]
    assert json.loads(rows[1][3]) == {"cwnd": 4.0}


def test_sink_event_filter_and_detach_regate(tmp_path):
    bus = TraceBus()
    sink = NdjsonTraceSink(tmp_path / "t.ndjson", events=("ifq.drop",))
    sink.attach(bus)
    assert bus.wants("ifq.drop") and not bus.wants("mac.tx")
    bus.emit(TraceRecord(1.0, "mac.1", "mac.tx", {}))
    bus.emit(TraceRecord(2.0, "ifq.1", "ifq.drop", {}))
    sink.detach()
    assert not bus.active
    bus.emit(TraceRecord(3.0, "ifq.1", "ifq.drop", {}))
    assert sink.records_written == 1


def test_sink_rejects_bad_event_lists(tmp_path):
    with pytest.raises(ValueError):
        TraceSink(tmp_path / "t", events=())
    with pytest.raises(ValueError):
        TraceSink(tmp_path / "t", events=("*", "mac.tx"))


def test_sink_double_attach_raises(tmp_path):
    bus = TraceBus()
    sink = NdjsonTraceSink(tmp_path / "t.ndjson")
    sink.attach(bus)
    with pytest.raises(RuntimeError):
        sink.attach(bus)
    sink.detach()


def test_record_to_json_dict_shape():
    rec = TraceRecord(1.0, "s", "e", {"k": "v"})
    assert record_to_json_dict(rec) == {
        "t": 1.0, "source": "s", "event": "e", "fields": {"k": "v"},
    }


# -- probe --------------------------------------------------------------------


def test_probe_samples_on_interval_and_stop():
    sim = Simulator(seed=1)
    values = iter(range(100))
    probe = TimeseriesProbe(sim, interval=0.5).watch("x", lambda: next(values))
    probe.start()
    sim.run(until=2.1)
    probe.stop()
    sim.run(until=5.0)
    times = [t for t, _ in probe.series["x"]]
    assert times == [0.0, 0.5, 1.0, 1.5, 2.0]


def test_probe_duplicate_watch_raises():
    sim = Simulator(seed=1)
    probe = TimeseriesProbe(sim, interval=1.0).watch("x", lambda: 0.0)
    with pytest.raises(ValueError):
        probe.watch("x", lambda: 1.0)
    with pytest.raises(ValueError):
        TimeseriesProbe(sim, interval=0.0)


def test_probe_publishes_gated_trace_records():
    sim = Simulator(seed=1)
    seen = []
    probe = TimeseriesProbe(sim, interval=1.0).watch("x", lambda: 7.0)
    probe.start()  # not yet subscribed: the immediate sample is untraced
    sim.trace.subscribe("probe.sample", seen.append)
    sim.run(until=2.5)
    probe.stop()
    assert [r.fields["value"] for r in seen] == [7.0, 7.0]
    assert seen[0].fields["name"] == "x"


# -- schema validation --------------------------------------------------------


def test_validate_accepts_good_and_flags_bad_records():
    schema = load_schema("trace_record")
    good = {"t": 1.0, "source": "s", "event": "e", "fields": {}}
    assert validate(good, schema) == []
    assert validate({"t": "late", "source": "s", "event": "e", "fields": {}},
                    schema)  # wrong type
    assert validate({"source": "s", "event": "e", "fields": {}}, schema)
    assert validate(dict(good, extra=1), schema)  # additionalProperties


def test_validate_trace_file_reports_line_numbers(tmp_path):
    path = tmp_path / "trace.ndjson"
    path.write_text(
        '{"t":1.0,"source":"s","event":"e","fields":{}}\n'
        'not json\n'
        '{"t":2.0,"event":"e","fields":{}}\n'
    )
    errors = validate_trace_file(path)
    assert len(errors) == 2
    assert any("line 2" in e for e in errors)
    assert any("line 3" in e for e in errors)


def test_validate_manifest_file_checks_schema_and_consistency(tmp_path):
    from repro.obs import build_manifest, stable_digest

    manifest = build_manifest(
        seed=1, config={"sim_time": 2.0}, sim_time=2.0, wall_time_s=0.1,
        metrics={}, result_digest=stable_digest({"ok": True}),
    )
    path = tmp_path / "m.json"
    path.write_text(json.dumps(manifest))
    assert validate_manifest_file(path) == []
    manifest["config_digest"] = "0" * 64  # break digest consistency
    path.write_text(json.dumps(manifest))
    assert validate_manifest_file(path)


def test_validate_cli_main(tmp_path):
    from repro.obs.validate import main

    path = tmp_path / "trace.ndjson"
    path.write_text('{"t":1.0,"source":"s","event":"e","fields":{}}\n')
    assert main(["--trace", str(path)]) == 0
    path.write_text('{"t":"x"}\n')
    assert main(["--trace", str(path)]) == 1


def test_validate_rejects_empty_ndjson(tmp_path):
    from repro.obs.validate import main

    path = tmp_path / "empty.ndjson"
    path.write_text("")
    errors = validate_trace_file(path)
    assert errors and "empty" in errors[0]
    assert main(["--trace", str(path)]) == 1
    path.write_text("  \n\n")  # whitespace-only counts as empty too
    assert validate_trace_file(path)


def test_validate_rejects_truncated_final_line(tmp_path):
    path = tmp_path / "trunc.ndjson"
    path.write_text('{"t":1.0,"source":"s","event":"e","fields":{}}\n'
                    '{"t":2.0,"source":"s","event":"e","fields":{}}')
    errors = validate_trace_file(path)
    assert any("truncated final line" in e and "line 2" in e for e in errors)
    # With the newline restored the same content is clean.
    path.write_text(path.read_text() + "\n")
    assert validate_trace_file(path) == []


def test_validate_enum_keyword():
    schema = {"type": "string", "enum": ["a", "b"]}
    assert validate("a", schema) == []
    assert validate("c", schema)


def test_validate_span_file_structure(tmp_path):
    from repro.obs import validate_span_file

    path = tmp_path / "spans.ndjson"
    good = (
        '{"kind":"span_open","id":"c1","span":"campaign","parent":null,"t0":1.0}\n'
        '{"kind":"span_open","id":"u2","span":"unit-attempt","parent":"c1","t0":1.0}\n'
        '{"kind":"span_close","id":"u2","t1":2.0,"status":"ok"}\n'
        '{"kind":"span_close","id":"c1","t1":2.0,"status":"ok"}\n'
    )
    path.write_text(good)
    assert validate_span_file(path) == []
    # A root that is not a campaign span, an unknown parent, an unknown
    # status, and a close without an open are each violations.
    path.write_text(
        '{"kind":"span_open","id":"b1","span":"dispatch-batch","parent":null,"t0":1.0}\n'
        '{"kind":"span_open","id":"u2","span":"unit-attempt","parent":"zz","t0":1.0}\n'
        '{"kind":"span_close","id":"u9","t1":2.0,"status":"ok"}\n'
        '{"kind":"span_close","id":"u2","t1":2.0,"status":"nope"}\n'
    )
    errors = validate_span_file(path)
    assert any("only campaign spans may be roots" in e for e in errors)
    assert any("was never opened" in e for e in errors)
    assert any("not open" in e for e in errors)
    assert any("'nope'" in e for e in errors)
    # A span that never closes is a violation on an otherwise clean log.
    path.write_text(
        '{"kind":"span_open","id":"c1","span":"campaign","parent":null,"t0":1.0}\n'
    )
    assert any("never closed" in e for e in validate_span_file(path))


def test_validate_span_cli_main(tmp_path):
    from repro.obs.validate import main

    path = tmp_path / "spans.ndjson"
    path.write_text(
        '{"kind":"span_open","id":"c1","span":"campaign","parent":null,"t0":1.0}\n'
        '{"kind":"span_close","id":"c1","t1":2.0,"status":"ok"}\n'
    )
    assert main(["--spans", str(path)]) == 0
    path.write_text("")
    assert main(["--spans", str(path)]) == 1
