"""Unit tests for the RTT estimator and RTO computation."""

import pytest

from repro.transport import RttEstimator


def test_initial_rto_before_any_sample():
    est = RttEstimator(initial_rto=3.0)
    assert est.rto == 3.0


def test_first_sample_initialises_srtt_and_rttvar():
    est = RttEstimator()
    est.sample(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    assert est.rto == pytest.approx(max(0.1 + 4 * 0.05, est.min_rto))


def test_smoothing_follows_jacobson_gains():
    est = RttEstimator()
    est.sample(0.1)
    est.sample(0.2)
    assert est.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)


def test_rto_clamped_to_min():
    est = RttEstimator(min_rto=0.2)
    for _ in range(20):
        est.sample(0.001)
    assert est.rto == 0.2


def test_rto_clamped_to_max():
    est = RttEstimator(max_rto=8.0)
    est.sample(100.0)
    assert est.rto == 8.0


def test_backoff_doubles_and_caps():
    est = RttEstimator(min_rto=0.2, max_rto=8.0)
    est.sample(0.1)
    base = est.rto
    est.backoff()
    assert est.rto == pytest.approx(min(base * 2, 8.0))
    for _ in range(10):
        est.backoff()
    assert est.rto == 8.0


def test_valid_sample_resets_backoff():
    est = RttEstimator()
    est.sample(0.1)
    est.backoff()
    est.backoff()
    assert est.backoff_factor == 4
    est.sample(0.1)
    assert est.backoff_factor == 1


def test_negative_sample_rejected():
    est = RttEstimator()
    with pytest.raises(ValueError):
        est.sample(-0.1)


def test_constructor_validation():
    with pytest.raises(ValueError):
        RttEstimator(min_rto=0.0)
    with pytest.raises(ValueError):
        RttEstimator(min_rto=2.0, max_rto=1.0)
