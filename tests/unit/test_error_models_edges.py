"""Edge-case coverage for repro.phy.error_models: boundary rates, state
persistence of the Gilbert–Elliott chain, and determinism under the derived
seed scheme the simulator's RNG registry uses."""

import random

import pytest

from repro.phy.error_models import (
    GilbertElliott,
    NoError,
    PacketErrorRate,
    UniformBitError,
)
from repro.sim.rng import derive_seed


FRAME = 1460


# ---------------------------------------------------------------------------
# Rate boundaries


def test_no_error_never_corrupts():
    rng = random.Random(1)
    assert not any(NoError().frame_corrupted(rng, FRAME, t) for t in range(100))


def test_per_zero_never_corrupts_and_draws_nothing():
    rng = random.Random(1)
    state = rng.getstate()
    model = PacketErrorRate(0.0)
    assert not any(model.frame_corrupted(rng, FRAME, t) for t in range(100))
    # the zero-rate shortcut must not consume RNG draws: a zero-loss run's
    # random stream is byte-identical to one with no error model at all
    assert rng.getstate() == state


def test_per_one_always_corrupts():
    rng = random.Random(1)
    model = PacketErrorRate(1.0)
    assert all(model.frame_corrupted(rng, FRAME, t) for t in range(100))


def test_ber_zero_never_corrupts_and_draws_nothing():
    rng = random.Random(1)
    state = rng.getstate()
    model = UniformBitError(0.0)
    assert not any(model.frame_corrupted(rng, FRAME, t) for t in range(100))
    assert rng.getstate() == state


def test_high_ber_corrupts_every_large_frame():
    # P(ok) = (1 - 0.5)^(8*1460) is indistinguishable from zero.
    rng = random.Random(1)
    model = UniformBitError(0.5)
    assert all(model.frame_corrupted(rng, FRAME, t) for t in range(50))


@pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
def test_ber_bounds_validated(bad):
    with pytest.raises(ValueError):
        UniformBitError(bad)


@pytest.mark.parametrize("bad", [-0.1, 1.01])
def test_per_bounds_validated(bad):
    with pytest.raises(ValueError):
        PacketErrorRate(bad)


def test_gilbert_elliott_dwell_times_validated():
    with pytest.raises(ValueError):
        GilbertElliott(mean_good=0.0)
    with pytest.raises(ValueError):
        GilbertElliott(mean_bad=-1.0)


def test_nan_rates_rejected_everywhere():
    nan = float("nan")
    with pytest.raises(ValueError):
        UniformBitError(nan)
    with pytest.raises(ValueError):
        PacketErrorRate(nan)
    with pytest.raises(ValueError):
        GilbertElliott(ber_good=nan)
    with pytest.raises(ValueError):
        GilbertElliott(ber_bad=nan)
    with pytest.raises(ValueError):
        GilbertElliott(mean_good=nan)
    with pytest.raises(ValueError):
        GilbertElliott(mean_bad=nan)


def test_ge_inverted_ber_ordering_rejected():
    """GOOD must be the cleaner state; a swapped pair is a config bug."""
    with pytest.raises(ValueError):
        GilbertElliott(ber_good=0.01, ber_bad=0.001)
    # Equality degenerates to a uniform channel and stays legal.
    GilbertElliott(ber_good=0.01, ber_bad=0.01)


def test_ge_repr_surfaces_state():
    model = GilbertElliott(ber_good=0.0, ber_bad=0.5,
                           mean_good=0.5, mean_bad=0.5)
    assert "state=GOOD" in repr(model)
    assert "unstarted" in repr(model)
    rng = random.Random(3)
    model.frame_corrupted(rng, FRAME, 0.0)
    assert "unstarted" not in repr(model)
    assert "state=GOOD" in repr(model) or "state=BAD" in repr(model)


def test_uniform_bit_error_memo_matches_direct_formula():
    """The memoized survival probability is exactly the historical
    expression, so corruption decisions (and RNG draw counts) are
    bit-identical to the unmemoized model."""
    import math

    model = UniformBitError(1e-5)
    for nbytes in (40, 512, 1460):
        rng_a, rng_b = random.Random(7), random.Random(7)
        direct_p_ok = math.exp(8 * nbytes * math.log1p(-1e-5))
        for t in range(200):
            got = model.frame_corrupted(rng_a, nbytes, float(t))
            assert got == (rng_b.random() >= direct_p_ok)
        assert rng_a.getstate() == rng_b.getstate()


# ---------------------------------------------------------------------------
# Gilbert–Elliott state persistence


def test_ge_starts_good_at_t_zero():
    """Regression: the chain is documented to start GOOD, but the eager
    ``_state_until = 0.0`` seed made the first advance toggle to BAD before
    any dwell had elapsed.  With a certain-loss BAD state and a lossless
    GOOD state, a t=0 frame must survive whenever the first GOOD dwell is
    still running."""
    for seed in range(20):
        model = GilbertElliott(ber_good=0.0, ber_bad=0.999999,
                               mean_good=1000.0, mean_bad=1000.0)
        rng = random.Random(seed)
        corrupted = model.frame_corrupted(rng, FRAME, 0.0)
        # mean_good=1000 makes a dwell shorter than 0 s astronomically
        # unlikely; the first observation must still be in GOOD.
        assert model._state_good
        assert not corrupted


def test_ge_initial_dwell_is_drawn_from_mean_good():
    """The lazy initial dwell uses the GOOD mean (state GOOD from t=0), and
    an identical RNG reproduces it exactly."""
    model = GilbertElliott(ber_good=0.0, ber_bad=0.5,
                           mean_good=0.25, mean_bad=123.0)
    rng = random.Random(11)
    expected_first_dwell = random.Random(11).expovariate(1.0 / 0.25)
    model.frame_corrupted(rng, FRAME, 0.0)
    if model._state_good and model._state_until is not None:
        assert model._state_until == pytest.approx(expected_first_dwell)


def test_ge_state_persists_across_calls():
    """The chain's state boundary only ever moves forward, and identical
    (rng, time) sequences walk through identical state trajectories."""
    model = GilbertElliott(ber_good=0.0, ber_bad=0.5,
                           mean_good=0.5, mean_bad=0.5)
    rng = random.Random(3)
    boundaries = []
    for t in [0.0, 0.3, 0.9, 2.0, 2.0, 7.5]:
        model.frame_corrupted(rng, FRAME, t)
        boundaries.append(model._state_until)
        assert model._state_until > t
    assert boundaries == sorted(boundaries)


def test_ge_same_rng_same_trajectory():
    times = [i * 0.11 for i in range(200)]

    def run(seed):
        model = GilbertElliott(ber_good=0.0, ber_bad=0.3,
                               mean_good=0.4, mean_bad=0.2)
        rng = random.Random(seed)
        return [model.frame_corrupted(rng, FRAME, t) for t in times]

    assert run(9) == run(9)
    assert run(9) != run(10)


def test_ge_good_state_with_zero_ber_is_lossless():
    model = GilbertElliott(ber_good=0.0, ber_bad=0.0,
                           mean_good=1.0, mean_bad=1.0)
    rng = random.Random(5)
    assert not any(
        model.frame_corrupted(rng, FRAME, i * 0.1) for i in range(300)
    )


# ---------------------------------------------------------------------------
# Determinism under derived seeds


def test_per_identical_under_equal_derived_seeds():
    """Two runs that derive the phy.error stream from the same master seed
    see the identical corruption sequence — the property chaos replays and
    manifest verification rely on."""
    model = PacketErrorRate(0.3)

    def sequence(master):
        rng = random.Random(derive_seed(master, "phy.error"))
        return [model.frame_corrupted(rng, FRAME, t) for t in range(500)]

    assert sequence(1) == sequence(1)
    assert sequence(1) != sequence(2)


def test_stream_names_decorrelate_draws():
    a = random.Random(derive_seed(1, "phy.error"))
    b = random.Random(derive_seed(1, "faults.plan"))
    model = PacketErrorRate(0.5)
    seq_a = [model.frame_corrupted(a, FRAME, t) for t in range(200)]
    seq_b = [model.frame_corrupted(b, FRAME, t) for t in range(200)]
    assert seq_a != seq_b
