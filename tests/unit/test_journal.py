"""The campaign write-ahead journal: write/replay round-trips, fsync
batching, plan-mismatch detection, torn-tail tolerance, and the committed
``journal_record`` schema."""

import json
import os

import pytest

from repro.experiments import (
    CampaignJournal,
    JournalError,
    JournalPlanMismatch,
    ScenarioConfig,
    chain_grid,
    plan_campaign,
    plan_digest,
    read_journal,
    replay_journal,
)
from repro.obs.validate import validate_journal_file


def tiny_runs(n_scenarios=2, replications=2, base_seed=7):
    config = ScenarioConfig(sim_time=0.5, window=4)
    grid = chain_grid(["newreno"], [2, 3][:n_scenarios], config=config)
    return plan_campaign(grid, replications=replications, base_seed=base_seed)


def write_generation(path, runs, done_indices, status="interrupted",
                     resumed=False):
    with CampaignJournal(path, resume=resumed) as journal:
        journal.begin(runs, pool_mode="inproc", base_seed=7,
                      replications=2, resumed=resumed)
        for run in runs:
            if run.index in done_indices:
                journal.done(run, f"digest-{run.index}", cached=False)
        journal.end(
            status=status, fingerprint=None,
            executed=len(done_indices), cache_hits=0, quarantined=0,
            remaining=len(runs) - len(done_indices),
        )
    return path


# ---------------------------------------------------------------------------
# Round-trips


def test_write_then_replay_round_trip(tmp_path):
    runs = tiny_runs()
    path = write_generation(tmp_path / "run.journal", runs, {0, 2})

    replay = replay_journal(path)
    assert replay.total == len(runs)
    assert replay.plan_digest == plan_digest(runs)
    assert replay.completed == {0: "digest-0", 2: "digest-2"}
    assert replay.failed == {}
    assert replay.remaining == 2
    assert replay.generations == 1
    assert replay.interrupted  # end status was "interrupted"
    assert not replay.truncated_tail
    assert sorted(replay.planned) == [r.index for r in runs]
    assert validate_journal_file(path) == []


def test_done_clears_an_earlier_failure_across_generations(tmp_path):
    runs = tiny_runs()
    path = tmp_path / "run.journal"
    with CampaignJournal(path) as journal:
        journal.begin(runs, pool_mode="warm", base_seed=7,
                      replications=2, resumed=False)
        journal.failed(runs[1], "worker crashed (exit code 9)", attempts=3)
        journal.end(status="partial", fingerprint="abc", executed=0,
                    cache_hits=0, quarantined=1, remaining=3)
    with CampaignJournal(path, resume=True) as journal:
        journal.begin(runs, pool_mode="warm", base_seed=7,
                      replications=2, resumed=True)
        journal.done(runs[1], "digest-1", cached=False)
        journal.end(status="ok", fingerprint="def", executed=1,
                    cache_hits=3, quarantined=0, remaining=0)

    replay = replay_journal(path)
    assert replay.generations == 2
    assert 1 in replay.completed
    assert replay.failed == {}
    assert not replay.interrupted
    assert replay.last_end["fingerprint"] == "def"
    assert validate_journal_file(path) == []


def test_journal_with_no_end_record_reads_as_interrupted(tmp_path):
    runs = tiny_runs()
    path = tmp_path / "run.journal"
    with CampaignJournal(path) as journal:
        journal.begin(runs, pool_mode="per-attempt", base_seed=7,
                      replications=2, resumed=False)
        journal.done(runs[0], "digest-0", cached=False)
    replay = replay_journal(path)
    assert replay.interrupted
    assert replay.last_end is None
    assert replay.completed == {0: "digest-0"}


# ---------------------------------------------------------------------------
# Durability mechanics


def test_fsync_batching_syncs_every_n_records_and_at_checkpoints(
    tmp_path, monkeypatch
):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))

    runs = tiny_runs()
    journal = CampaignJournal(tmp_path / "run.journal", fsync_every=2)
    journal.write({"kind": "done", "t": 0.0, "index": 0, "digest": "d",
                   "result_digest": "r", "cached": False})
    assert synced == []  # below the batch threshold
    journal.write({"kind": "done", "t": 0.0, "index": 1, "digest": "d",
                   "result_digest": "r", "cached": False})
    assert len(synced) == 1  # batch threshold reached
    journal.checkpoint()
    assert len(synced) == 2  # explicit checkpoint always syncs
    journal.close()


def test_begin_is_checkpointed_before_any_dispatch(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
    runs = tiny_runs()
    with CampaignJournal(tmp_path / "run.journal", fsync_every=10_000) as j:
        j.begin(runs, pool_mode="warm", base_seed=7, replications=2,
                resumed=False)
        assert synced  # the write-ahead step is durable immediately


def test_fresh_journal_refuses_an_existing_nonempty_file(tmp_path):
    path = tmp_path / "run.journal"
    write_generation(path, tiny_runs(), {0})
    with pytest.raises(JournalError, match="already exists"):
        CampaignJournal(path)
    # resume=True appends instead
    journal = CampaignJournal(path, resume=True)
    journal.close()


def test_fsync_every_validation(tmp_path):
    with pytest.raises(ValueError, match="fsync_every"):
        CampaignJournal(tmp_path / "run.journal", fsync_every=0)


# ---------------------------------------------------------------------------
# Damage tolerance


def test_torn_final_line_is_tolerated_and_reported(tmp_path):
    runs = tiny_runs()
    path = write_generation(tmp_path / "run.journal", runs, {0, 1})
    text = path.read_text()
    path.write_text(text + '{"kind": "done", "index": 3, "resu')  # no \n

    records, truncated = read_journal(path)
    assert truncated
    assert all(r.get("index") != 3 or r["kind"] == "planned" for r in records)

    replay = replay_journal(path)
    assert replay.truncated_tail
    assert 3 not in replay.completed  # the torn record never happened
    assert validate_journal_file(path, allow_torn_tail=True) == []
    assert validate_journal_file(path) != []  # strict mode still objects


def test_midfile_corruption_is_fatal(tmp_path):
    path = write_generation(tmp_path / "run.journal", tiny_runs(), {0})
    lines = path.read_text().splitlines()
    lines[2] = '{"kind": broken'
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="line 3"):
        read_journal(path)


def test_missing_journal_is_a_journal_error(tmp_path):
    with pytest.raises(JournalError, match="not found"):
        replay_journal(tmp_path / "nope.journal")


def test_journal_must_start_with_begin(tmp_path):
    path = tmp_path / "bad.journal"
    path.write_text('{"kind": "done", "index": 0}\n')
    with pytest.raises(JournalError, match="begin"):
        replay_journal(path)
    assert any("begin" in err for err in validate_journal_file(path))


def test_wrong_schema_version_is_rejected(tmp_path):
    path = write_generation(tmp_path / "run.journal", tiny_runs(), set())
    records = [json.loads(l) for l in path.read_text().splitlines()]
    records[0]["schema"] = 999
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    with pytest.raises(JournalError, match="schema"):
        replay_journal(path)


# ---------------------------------------------------------------------------
# Plan verification


def test_verify_plan_accepts_the_same_campaign(tmp_path):
    runs = tiny_runs()
    path = write_generation(tmp_path / "run.journal", runs, {0})
    replay_journal(path).verify_plan(tiny_runs())  # fresh, equal expansion


def test_verify_plan_rejects_a_different_seed(tmp_path):
    runs = tiny_runs(base_seed=7)
    path = write_generation(tmp_path / "run.journal", runs, {0})
    with pytest.raises(JournalPlanMismatch, match="different campaign"):
        replay_journal(path).verify_plan(tiny_runs(base_seed=8))


def test_verify_plan_rejects_a_different_size(tmp_path):
    runs = tiny_runs(replications=2)
    path = write_generation(tmp_path / "run.journal", runs, {0})
    with pytest.raises(JournalPlanMismatch, match="units"):
        replay_journal(path).verify_plan(tiny_runs(replications=3))


# ---------------------------------------------------------------------------
# Schema validator structure checks


def test_validator_flags_done_for_unplanned_unit(tmp_path):
    path = write_generation(tmp_path / "run.journal", tiny_runs(), set())
    with CampaignJournal(path, resume=True) as journal:
        journal.write({"kind": "done", "t": 0.0, "index": 999,
                       "digest": "d", "result_digest": "r", "cached": False})
    assert any("unplanned" in err for err in validate_journal_file(path))


def test_validator_flags_unknown_fields_and_kinds(tmp_path):
    path = tmp_path / "bad.journal"
    path.write_text(
        '{"kind": "begin", "t": 0, "schema": 1, "total": 1, "base_seed": 1, '
        '"replications": 1, "pool_mode": "warm", "plan_digest": "x", '
        '"resumed": false, "bogus": 1}\n'
        '{"kind": "vibes"}\n'
    )
    errors = validate_journal_file(path)
    assert any("bogus" in err for err in errors)
    assert any("vibes" in err for err in errors)


def test_validator_flags_mixed_campaigns(tmp_path):
    runs = tiny_runs()
    path = write_generation(tmp_path / "run.journal", runs, set())
    with CampaignJournal(path, resume=True) as journal:
        journal.begin(tiny_runs(base_seed=99), pool_mode="warm", base_seed=99,
                      replications=2, resumed=True)
    assert any("plan_digest" in err for err in validate_journal_file(path))
    with pytest.raises(JournalError, match="mixes campaigns"):
        replay_journal(path)
