"""Unit tests for the 802.11 DCF MAC."""

import pytest

from repro.mac import (
    BROADCAST,
    DcfMac,
    DcfState,
    FrameKind,
    MacFrame,
    MacParams,
    Nav,
    QueuedPacket,
)
from repro.mac.stats import MediumUtilizationMeter
from repro.net.queues import DropTailQueue
from repro.phy import Position, Radio, WirelessChannel
from repro.sim import Simulator


class TestNav:
    def test_initially_idle(self):
        nav = Nav()
        assert not nav.busy(0.0)

    def test_set_and_expire(self):
        nav = Nav()
        assert nav.set(5.0)
        assert nav.busy(4.999)
        assert not nav.busy(5.0)

    def test_only_extends_forward(self):
        nav = Nav()
        nav.set(5.0)
        assert not nav.set(3.0)
        assert nav.until == 5.0

    def test_clear(self):
        nav = Nav()
        nav.set(5.0)
        nav.clear()
        assert not nav.busy(1.0)


class TestMacParams:
    def test_backoff_doubling_caps_at_cw_max(self):
        p = MacParams()
        cw = p.cw_min
        seen = [cw]
        for _ in range(10):
            cw = p.next_cw(cw)
            seen.append(cw)
        assert seen[:6] == [31, 63, 127, 255, 511, 1023]
        assert max(seen) == p.cw_max

    def test_difs_is_sifs_plus_two_slots(self):
        p = MacParams()
        assert p.difs == pytest.approx(p.sifs + 2 * p.slot_time)


class TestUtilizationMeter:
    def test_accumulates_busy_time(self):
        meter = MediumUtilizationMeter()
        meter.on_busy(1.0)
        meter.on_idle(3.0)
        assert meter.total_busy_time(5.0) == pytest.approx(2.0)

    def test_open_busy_interval_counts_up_to_now(self):
        meter = MediumUtilizationMeter()
        meter.on_busy(1.0)
        assert meter.total_busy_time(4.0) == pytest.approx(3.0)

    def test_busy_fraction_window(self):
        meter = MediumUtilizationMeter()
        meter.on_busy(0.0)
        meter.on_idle(1.0)
        baseline = meter.total_busy_time(2.0)
        meter.on_busy(2.0)
        meter.on_idle(2.5)
        assert meter.busy_fraction(2.0, baseline, 4.0) == pytest.approx(0.25)

    def test_double_transitions_are_idempotent(self):
        meter = MediumUtilizationMeter()
        meter.on_busy(0.0)
        meter.on_busy(1.0)
        meter.on_idle(2.0)
        meter.on_idle(3.0)
        assert meter.total_busy_time(4.0) == pytest.approx(2.0)


class UpperLayer:
    """Records MAC delivery callbacks."""

    def __init__(self) -> None:
        self.delivered = []
        self.tx_ok = []
        self.failures = []

    def mac_deliver(self, packet, from_addr):
        self.delivered.append((packet, from_addr))

    def mac_tx_ok(self, next_hop, packet):
        self.tx_ok.append((next_hop, packet))

    def mac_link_failure(self, next_hop, packet):
        self.failures.append((next_hop, packet))


def build_macs(positions):
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim)
    macs, uppers, queues = [], [], []
    for i, pos in enumerate(positions):
        radio = Radio(sim, i)
        channel.register(radio, pos)
        mac = DcfMac(sim, channel, radio, i)
        queue = DropTailQueue(50)
        upper = UpperLayer()
        mac.queue = queue
        mac.listener = upper
        queue.on_wakeup = mac.wakeup
        macs.append(mac)
        uppers.append(upper)
        queues.append(queue)
    return sim, macs, uppers, queues


class Payload:
    def __init__(self, name="p"):
        self.name = name


class TestDcfExchange:
    def test_unicast_delivers_with_rts_cts(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        payload = Payload()
        queues[0].enqueue(QueuedPacket(payload, next_hop=1, size_bytes=1000))
        sim.run(until=0.1)
        assert [p for p, _ in uppers[1].delivered] == [payload]
        assert uppers[0].tx_ok == [(1, payload)]
        assert macs[0].counters.rts_tx == 1
        assert macs[1].counters.cts_tx == 1
        assert macs[1].counters.ack_tx == 1
        assert macs[0].counters.data_tx == 1

    def test_from_addr_is_sender_mac(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        queues[0].enqueue(QueuedPacket(Payload(), next_hop=1, size_bytes=100))
        sim.run(until=0.1)
        assert uppers[1].delivered[0][1] == 0

    def test_multiple_packets_in_order(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        payloads = [Payload(str(i)) for i in range(5)]
        for p in payloads:
            queues[0].enqueue(QueuedPacket(p, next_hop=1, size_bytes=1000))
        sim.run(until=1.0)
        assert [p.name for p, _ in uppers[1].delivered] == ["0", "1", "2", "3", "4"]

    def test_broadcast_reaches_all_neighbors_without_ack(self):
        sim, macs, uppers, queues = build_macs(
            [Position(0), Position(200), Position(-200)]
        )
        payload = Payload()
        queues[0].enqueue(QueuedPacket(payload, next_hop=BROADCAST, size_bytes=100))
        sim.run(until=0.1)
        assert [p for p, _ in uppers[1].delivered] == [payload]
        assert [p for p, _ in uppers[2].delivered] == [payload]
        assert macs[0].counters.broadcast_tx == 1
        assert macs[0].counters.rts_tx == 0

    def test_retry_limit_reports_link_failure(self):
        # Next hop 9 does not exist: every RTS goes unanswered.
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        payload = Payload()
        queues[0].enqueue(QueuedPacket(payload, next_hop=9, size_bytes=1000))
        sim.run(until=2.0)
        assert uppers[0].failures == [(9, payload)]
        assert macs[0].counters.drops_retry_limit == 1
        assert macs[0].counters.retries == macs[0].params.short_retry_limit

    def test_next_packet_sent_after_link_failure(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        queues[0].enqueue(QueuedPacket(Payload("dead"), next_hop=9, size_bytes=100))
        ok = Payload("ok")
        queues[0].enqueue(QueuedPacket(ok, next_hop=1, size_bytes=100))
        sim.run(until=2.0)
        assert [p for p, _ in uppers[1].delivered] == [ok]

    def test_duplicate_data_detected_by_receiver(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        queues[0].enqueue(QueuedPacket(Payload(), next_hop=1, size_bytes=100))
        sim.run(until=0.1)

        # Replay the same frame_id manually: receiver must ACK but not
        # deliver twice.
        frame = MacFrame(
            FrameKind.DATA,
            src=0,
            dst=1,
            size_bytes=128,
            duration=0.0,
            frame_id=macs[0]._frame_id,
            payload=Payload("dup"),
        )
        macs[1].phy_receive(frame)
        sim.run(until=0.2)
        assert len(uppers[1].delivered) == 1
        assert macs[1].counters.duplicates_rx == 1

    def test_third_party_sets_nav_and_defers(self):
        # 0 -> 1 exchange; node 2 hears node 1 (250 m) and must defer.
        sim, macs, uppers, queues = build_macs(
            [Position(0), Position(250), Position(500)]
        )
        queues[0].enqueue(QueuedPacket(Payload(), next_hop=1, size_bytes=1400))
        sim.run(until=0.004)  # mid-exchange
        assert macs[2].nav.busy(sim.now) or macs[2].radio.carrier_busy
        sim.run(until=0.1)
        assert [p for p, _ in uppers[1].delivered]

    def test_hidden_terminals_collide_and_recover(self):
        # 0 and 2 both send to 1; they are 500 m apart (sensed!), so make
        # them hidden: use 3 nodes spaced 300 m with cs=560 -> 0 and 2 are
        # 600 m apart (hidden) but both reach 1?  300 > rx 250, so instead:
        # positions 0, 250, 500 are NOT hidden (500 < 560).  Use a line of
        # 0, 250, 500, 750: nodes 0 and 3 are hidden, both sending to their
        # neighbours concurrently exercises deferral + retries.
        sim, macs, uppers, queues = build_macs(
            [Position(0), Position(250), Position(500), Position(750)]
        )
        for _ in range(5):
            queues[0].enqueue(QueuedPacket(Payload("a"), next_hop=1, size_bytes=1400))
            queues[3].enqueue(QueuedPacket(Payload("b"), next_hop=2, size_bytes=1400))
        sim.run(until=2.0)
        assert len(uppers[1].delivered) == 5
        assert len(uppers[2].delivered) == 5

    def test_service_meter_tracks_packet_in_service(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        assert macs[0].service_meter.total_busy_time(0.0) == 0.0
        queues[0].enqueue(QueuedPacket(Payload(), next_hop=1, size_bytes=1000))
        sim.run(until=1.0)
        busy = macs[0].service_meter.total_busy_time(sim.now)
        assert 0.0 < busy < 0.1  # one exchange worth of service time

    def test_state_returns_to_idle(self):
        sim, macs, uppers, queues = build_macs([Position(0), Position(200)])
        queues[0].enqueue(QueuedPacket(Payload(), next_hop=1, size_bytes=100))
        sim.run(until=1.0)
        assert macs[0].state is DcfState.IDLE
        assert not macs[0].busy_with_packet
