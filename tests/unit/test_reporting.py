"""Unit tests for text rendering of experiment results."""

import pytest

from repro.experiments.figures import CoexistencePoint, SweepPoint, SweepResult
from repro.experiments.reporting import (
    ascii_series,
    format_coexistence,
    format_sweep,
    format_table,
    format_traces_summary,
)


def make_sweep():
    sweep = SweepResult(window=8, hops=(4, 8), variants=("muzha", "newreno"))
    for v in sweep.variants:
        for h in sweep.hops:
            sweep.points[(v, h)] = SweepPoint(
                goodput_kbps=100.0 + h, goodput_stdev=2.0,
                retransmits=float(h), timeouts=1.0, samples=3,
            )
    return sweep


def test_format_table_aligns_columns():
    out = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    # all rows padded to the same width
    assert len(lines[3]) == len(lines[4])


def test_format_table_with_no_rows_keeps_header():
    out = format_table(["a", "bb"], [])
    assert "a" in out and "bb" in out
    assert len(out.splitlines()) == 2


def test_format_sweep_goodput_and_retransmits():
    sweep = make_sweep()
    goodput = format_sweep(sweep, metric="goodput")
    assert "window_=8" in goodput and "kbps" in goodput
    assert "104.0" in goodput  # hops=4 point
    retrans = format_sweep(sweep, metric="retransmits")
    assert "count" in retrans and "8.0" in retrans


def test_format_sweep_rejects_unknown_metric():
    with pytest.raises(ValueError, match="unknown metric"):
        format_sweep(make_sweep(), metric="latency")


def test_format_coexistence_lists_every_hop_row():
    points = [CoexistencePoint(4, 120.0, 80.0, 0.96),
              CoexistencePoint(8, 60.0, 55.0, 0.99)]
    out = format_coexistence(points, "newreno", "muzha")
    assert "newreno vs muzha" in out
    assert "0.960" in out and "0.990" in out
    assert len(out.splitlines()) == 5  # title + header + rule + 2 rows


def test_ascii_series_empty_and_flat():
    assert "(no data)" in ascii_series([], label="cwnd")
    flat = ascii_series([(0.0, 0.0), (1.0, 0.0)], width=8, height=4)
    assert "+" + "-" * 8 in flat  # axis renders even for all-zero series


def test_ascii_series_marks_extremes():
    out = ascii_series([(0.0, 0.0), (10.0, 5.0)], width=16, height=4, label="y")
    lines = out.splitlines()
    assert "max=5.0" in lines[0]
    assert lines[1].rstrip().endswith("*")  # peak in the top row, last column
    assert "x: 0.0 .. 10.0" in lines[-1]


def test_format_traces_summary_counts_changes():
    traces = {
        "muzha": [(0.0, 1.0), (1.0, 2.0)],
        "newreno": [(0.0, 1.0), (0.5, 2.0), (1.0, 1.0), (1.5, 2.0)],
    }
    out = format_traces_summary(traces, sim_time=2.0)
    assert "cwnd summary" in out
    assert "muzha" in out and "newreno" in out
    assert "cwnd: muzha" in out  # per-variant chart blocks
