"""Unit tests for the Node glue layer (packet + forwarding + stampers)."""

import pytest

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.routing import install_static_routing
from repro.sim import Simulator


class PortProbe:
    def __init__(self):
        self.packets = []

    def receive_packet(self, packet):
        self.packets.append(packet)


class Probe:
    """Payload carrying a dport so the node can demux it."""

    def __init__(self, dport):
        self.dport = dport


def build_chain_nodes(n, seed=1):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    nodes = [Node(sim, channel, i, Position(250.0 * i)) for i in range(n)]
    install_static_routing(nodes, channel)
    return sim, nodes


class TestPacket:
    def test_uids_are_unique(self):
        a = Packet(src=0, dst=1, protocol="x", size_bytes=10)
        b = Packet(src=0, dst=1, protocol="x", size_bytes=10)
        assert a.uid != b.uid

    def test_aged_copy_decrements_ttl_and_keeps_fields(self):
        p = Packet(src=0, dst=5, protocol="x", size_bytes=10, ttl=7, avbw_s=3)
        q = p.aged_copy()
        assert (q.ttl, q.src, q.dst, q.avbw_s) == (6, 0, 5, 3)
        assert q.uid != p.uid


class TestNodeDelivery:
    def test_end_to_end_delivery_over_two_hops(self):
        sim, nodes = build_chain_nodes(3)
        probe = PortProbe()
        nodes[2].bind_port(80, probe)
        nodes[0].send(
            Packet(src=0, dst=2, protocol="raw", size_bytes=500, payload=Probe(80))
        )
        sim.run(until=1.0)
        assert len(probe.packets) == 1
        assert nodes[1].counters.forwarded == 1
        assert nodes[2].counters.delivered == 1

    def test_unbound_port_counts_drop(self):
        sim, nodes = build_chain_nodes(2)
        nodes[0].send(
            Packet(src=0, dst=1, protocol="raw", size_bytes=100, payload=Probe(99))
        )
        sim.run(until=1.0)
        assert nodes[1].counters.no_handler_drops == 1

    def test_loopback_delivery(self):
        sim, nodes = build_chain_nodes(1)
        probe = PortProbe()
        nodes[0].bind_port(5, probe)
        nodes[0].send(
            Packet(src=0, dst=0, protocol="raw", size_bytes=10, payload=Probe(5))
        )
        assert len(probe.packets) == 1

    def test_ttl_exhaustion_drops(self):
        sim, nodes = build_chain_nodes(3)
        probe = PortProbe()
        nodes[2].bind_port(80, probe)
        nodes[0].send(
            Packet(
                src=0, dst=2, protocol="raw", size_bytes=100, payload=Probe(80), ttl=1
            )
        )
        sim.run(until=1.0)
        assert probe.packets == []
        assert nodes[1].counters.ttl_drops == 1

    def test_double_bind_rejected(self):
        sim, nodes = build_chain_nodes(1)
        nodes[0].bind_port(1, PortProbe())
        with pytest.raises(ValueError):
            nodes[0].bind_port(1, PortProbe())

    def test_no_route_consults_routing(self):
        sim, nodes = build_chain_nodes(2)
        # destination 99 unknown to the static table
        nodes[0].send(Packet(src=0, dst=99, protocol="raw", size_bytes=10))
        assert nodes[0].routing.counters.no_route_drops == 1


class TestStampers:
    def test_stampers_run_on_origination_and_forwarding(self):
        sim, nodes = build_chain_nodes(3)
        stamped = []
        for node in nodes:
            node.stampers.append(
                lambda pkt, nid=node.node_id: stamped.append(nid)
            )
        probe = PortProbe()
        nodes[2].bind_port(80, probe)
        nodes[0].send(
            Packet(src=0, dst=2, protocol="raw", size_bytes=100, payload=Probe(80))
        )
        sim.run(until=1.0)
        # stamped at origin (0) and at the forwarder (1), not at delivery.
        assert stamped == [0, 1]

    def test_stamper_lowers_avbw_s_like_drai(self):
        sim, nodes = build_chain_nodes(3)
        nodes[1].stampers.append(
            lambda pkt: setattr(pkt, "avbw_s", min(pkt.avbw_s, 2))
            if pkt.avbw_s is not None
            else None
        )
        probe = PortProbe()
        nodes[2].bind_port(80, probe)
        pkt = Packet(
            src=0, dst=2, protocol="raw", size_bytes=100, payload=Probe(80), avbw_s=5
        )
        nodes[0].send(pkt)
        sim.run(until=1.0)
        assert probe.packets[0].avbw_s == 2
