"""Differential and golden-fixture regression tests for the policy layer.

Two guarantees pinned here:

* the policy extraction is a pure refactor for the default path — a seeded
  3-hop muzha chain with ``policy=None`` must be byte-identical (full trace
  stream and result digest) to one with ``policy="fuzzy"`` spelled out;
* the hysteresis controller's advice sequence on a canned signal trace is
  pinned to a committed golden fixture, so any behavioral drift in the
  state machine (thresholds, sustain counts, floors) fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import make_policy
from repro.core.policy import PolicySignals
from repro.experiments import ScenarioConfig, run_chain
from repro.obs import stable_digest
from repro.sim.trace import TraceRecorder

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


def _traced_run(config: ScenarioConfig):
    recorder_box = {}

    def instrument(network, flows):
        recorder_box["recorder"] = TraceRecorder(network.sim.trace, "*")

    result = run_chain(3, ["muzha"], config=config, instrument=instrument)
    records = [
        (r.time, r.source, r.event, sorted(r.fields.items()))
        for r in recorder_box["recorder"]
    ]
    return result, records


class TestDefaultPolicyIsByteIdentical:
    def test_default_and_explicit_fuzzy_runs_are_byte_identical(self):
        default_result, default_trace = _traced_run(
            ScenarioConfig(sim_time=2.0, seed=42)
        )
        fuzzy_result, fuzzy_trace = _traced_run(
            ScenarioConfig(sim_time=2.0, seed=42, policy="fuzzy")
        )
        assert default_trace == fuzzy_trace
        assert stable_digest(default_result.to_dict()) == stable_digest(
            fuzzy_result.to_dict()
        )

    def test_drai_samples_are_tagged_with_policy_and_state(self):
        _, trace = _traced_run(ScenarioConfig(sim_time=1.0, seed=42))
        samples = [
            dict(fields) for _, _, event, fields in trace if event == "drai.sample"
        ]
        assert samples, "expected drai.sample records on a muzha run"
        for fields in samples:
            assert fields["policy"] == "fuzzy"
            assert fields["state"].startswith("L")


class TestHysteresisGoldenFixture:
    def load(self):
        with open(FIXTURES / "hysteresis_golden.json") as f:
            return json.load(f)

    def test_advice_sequence_matches_committed_golden(self):
        fixture = self.load()
        policy = make_policy(fixture["policy"], params=fixture["params"])
        produced = []
        for queue, util, occ, trend in fixture["signals"]:
            advice = policy.advise(PolicySignals(queue, util, occ, trend))
            produced.append([advice, policy.state()])
        assert produced == fixture["expected"]

    def test_fixture_exercises_every_state(self):
        fixture = self.load()
        states = {state for _, state in fixture["expected"]}
        assert states == {"GREEN", "YELLOW", "SOFT_RED", "RED"}

    def test_fixture_params_match_registry_defaults(self):
        """The golden was generated with default parameters; if defaults
        drift, regenerate the fixture deliberately rather than silently."""
        fixture = self.load()
        assert fixture["params"] == make_policy("hysteresis").params_dict()
