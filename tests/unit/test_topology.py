"""Unit tests for topology builders (Fig 5.1 chain, Fig 5.15 cross, grid)."""

import pytest

from repro.topology import (
    build_chain,
    build_cross,
    build_grid,
    chain_positions,
    cross_positions,
    grid_node,
    grid_positions,
    make_network,
)


class TestChain:
    def test_positions_spacing(self):
        pts = chain_positions(4)
        assert len(pts) == 5
        assert pts[1].distance_to(pts[0]) == 250.0
        assert pts[4].x == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_positions(0)

    def test_build_chain_connectivity_is_line(self):
        net = build_chain(4)
        graph = {
            node.node_id: sorted(
                peer.node_id
                for peer in (
                    net.channel.neighbors_of(node.radio)
                )
            )
            for node in net.nodes
        }
        assert graph[0] == [1]
        assert graph[2] == [1, 3]
        assert graph[4] == [3]

    def test_node_lookup(self):
        net = build_chain(2)
        assert net.node(1).node_id == 1
        with pytest.raises(KeyError):
            net.node(99)


class TestCross:
    def test_fig_5_15_has_nine_nodes_for_four_hops(self):
        positions, *_ = cross_positions(4)
        assert len(positions) == 9

    def test_landmarks_are_at_extremes(self):
        net = build_cross(4)
        assert (net.left.node_id, net.right.node_id) != (None, None)
        pos = {n.node_id: net.channel.position_of(n.radio) for n in net.nodes}
        assert pos[net.left.node_id].x == -500.0
        assert pos[net.right.node_id].x == 500.0
        assert pos[net.top.node_id].y == 500.0
        assert pos[net.bottom.node_id].y == -500.0
        assert (pos[net.center.node_id].x, pos[net.center.node_id].y) == (0, 0)

    def test_both_arms_are_h_hop_paths(self):
        from repro.routing import compute_static_routes

        net = build_cross(4)
        tables = compute_static_routes(net.nodes, net.channel)
        # left -> right must go through the centre
        hop = net.left.node_id
        path = [hop]
        while hop != net.right.node_id:
            hop = tables[hop][net.right.node_id]
            path.append(hop)
        assert len(path) == 5  # 4 hops
        assert net.center.node_id in path

    def test_odd_hops_rejected(self):
        with pytest.raises(ValueError):
            cross_positions(3)
        with pytest.raises(ValueError):
            cross_positions(0)

    def test_larger_cross_sizes(self):
        for hops in (6, 8):
            positions, *_ = cross_positions(hops)
            assert len(positions) == 2 * hops + 1


class TestGrid:
    def test_positions_count_and_layout(self):
        pts = grid_positions(2, 3)
        assert len(pts) == 6
        assert pts[0].distance_to(pts[1]) == 250.0
        assert pts[0].distance_to(pts[3]) == 250.0

    def test_grid_node_lookup(self):
        net = build_grid(2, 3)
        node = grid_node(net, 2, 3, 1, 2)
        assert node.node_id == 5
        with pytest.raises(IndexError):
            grid_node(net, 2, 3, 2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_positions(0, 5)


class TestNetwork:
    def test_add_node_assigns_sequential_ids(self):
        net = make_network(seed=1)
        from repro.phy import Position

        a = net.add_node(Position(0))
        b = net.add_node(Position(250))
        assert (a.node_id, b.node_id) == (0, 1)
        assert net.ids == [0, 1]
