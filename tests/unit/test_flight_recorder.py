"""Unit tests for the flight recorder (repro.obs.flight)."""

import json

import pytest

from repro.obs import AnomalyRule, FlightRecorder
from repro.obs.flight import record_node
from repro.sim import TraceBus, TraceRecord


def _emit(bus, t, event, node, **fields):
    fields["node"] = node
    bus.emit(TraceRecord(t, f"test.{node}", event, fields))


def test_anomaly_rule_rejects_zero_threshold():
    with pytest.raises(ValueError):
        AnomalyRule("bad", "x", threshold=0)
    with pytest.raises(ValueError):
        FlightRecorder(TraceBus(), capacity=0)


def test_record_node_prefers_node_then_src_then_source():
    assert record_node(TraceRecord(0, "s", "e", {"node": 3, "src": 9})) == 3
    assert record_node(TraceRecord(0, "s", "e", {"src": 9})) == 9
    assert record_node(TraceRecord(0, "mac.2", "e", {})) == "mac.2"


def test_single_occurrence_rule_dumps_ring_in_order(tmp_path):
    bus = TraceBus()
    rec = FlightRecorder(
        bus, capacity=8, dump_dir=tmp_path,
        rules=(AnomalyRule("route_failure", "aodv.route_failure"),),
    )
    _emit(bus, 0.5, "mac.tx", node=1)
    _emit(bus, 1.0, "mac.tx", node=1)
    _emit(bus, 1.5, "aodv.route_failure", node=1, dst=4)
    assert len(rec.dumps) == 1
    dump = rec.dumps[0]
    assert (dump.rule, dump.node, dump.time, dump.records) == \
        ("route_failure", 1, 1.5, 3)
    lines = [json.loads(line) for line in dump.path.read_text().splitlines()]
    assert lines[0] == {"anomaly": "route_failure", "node": 1,
                        "time": 1.5, "records": 3}
    assert [line["t"] for line in lines[1:]] == [0.5, 1.0, 1.5]


def test_threshold_rule_needs_hits_inside_window():
    bus = TraceBus()
    rec = FlightRecorder(
        bus, rules=(AnomalyRule("rto_storm", "tcp.timeout",
                                threshold=3, window=1.0),),
    )
    # Three timeouts spread over 4 s: the window test must reject them.
    for t in (0.0, 2.0, 4.0):
        _emit(bus, t, "tcp.timeout", node=0)
    assert rec.dumps == []
    # Three timeouts in 0.4 s trip the rule.
    for t in (10.0, 10.2, 10.4):
        _emit(bus, t, "tcp.timeout", node=0)
    assert [d.rule for d in rec.dumps] == ["rto_storm"]


def test_rules_track_nodes_independently():
    bus = TraceBus()
    rec = FlightRecorder(
        bus, rules=(AnomalyRule("burst", "ifq.drop", threshold=2, window=1.0),),
    )
    _emit(bus, 0.0, "ifq.drop", node=1)
    _emit(bus, 0.1, "ifq.drop", node=2)
    assert rec.dumps == []  # one hit per node: below threshold
    _emit(bus, 0.2, "ifq.drop", node=2)
    assert [(d.rule, d.node) for d in rec.dumps] == [("burst", 2)]


def test_cooldown_suppresses_repeat_dumps():
    bus = TraceBus()
    rec = FlightRecorder(
        bus, cooldown=5.0,
        rules=(AnomalyRule("route_failure", "aodv.route_failure"),),
    )
    _emit(bus, 1.0, "aodv.route_failure", node=1)
    _emit(bus, 2.0, "aodv.route_failure", node=1)  # inside cooldown
    _emit(bus, 7.0, "aodv.route_failure", node=1)  # past cooldown
    assert [d.time for d in rec.dumps] == [1.0, 7.0]


def test_ring_is_bounded_by_capacity():
    bus = TraceBus()
    rec = FlightRecorder(bus, capacity=4, rules=())
    for i in range(10):
        _emit(bus, float(i), "mac.tx", node=1)
    assert [r.time for r in rec.ring(1)] == [6.0, 7.0, 8.0, 9.0]


def test_on_anomaly_callback_and_detach():
    bus = TraceBus()
    seen = []
    with FlightRecorder(
        bus, rules=(AnomalyRule("route_failure", "aodv.route_failure"),),
        on_anomaly=lambda dump, records: seen.append((dump.rule, len(records))),
    ):
        _emit(bus, 1.0, "aodv.route_failure", node=1)
    assert seen == [("route_failure", 1)]
    assert not bus.active  # detach re-gated the bus
    _emit(bus, 2.0, "aodv.route_failure", node=1)
    assert len(seen) == 1


def test_recorder_captures_real_rto_storm():
    """A 2-hop run with a mid-run link break produces tcp.timeout records
    that the default rules turn into an rto_storm or route_failure dump."""
    from repro.phy import Position
    from repro.routing import install_aodv_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    net = build_chain(2, seed=3)
    install_aodv_routing(net.nodes, net.sim)
    start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno")
    rec = FlightRecorder(net.sim.trace, capacity=64)
    # Break the relay at t=2s by moving it out of range.
    net.sim.at(2.0, lambda: net.channel.move(net.nodes[1].radio,
                                             Position(1e6, 1e6)))
    net.sim.run(until=12.0)
    rec.detach()
    assert any(d.rule in ("rto_storm", "route_failure") for d in rec.dumps)
