"""Unit tests for the cluster worker transport.

Covers the TCP wire layer in isolation — length-prefixed JSON framing,
endpoint parsing, the hello/welcome handshake with its version gates, and
the liveness registry files the doctor later hunts — without running any
campaign.  The end-to-end cluster behaviour (byte-identity, disconnect
requeue, work stealing) lives in ``tests/integration/test_cluster.py``.
"""

import json
import socket
import struct

import pytest

from repro.experiments.config import CACHE_SCHEMA_VERSION
from repro.experiments.transport import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    TcpTransport,
    TransportError,
    parse_endpoint,
    recv_frame,
    send_frame,
)


# ---------------------------------------------------------------------------
# framing


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_frames_roundtrip_in_order():
    a, b = socket_pair()
    try:
        messages = [
            {"kind": "hello", "host": "nodeb", "pid": 42},
            {"kind": "batch", "units": [{"index": 0, "spec": {"x": 1}}]},
            {"kind": "ok", "index": 0, "metrics": {"goodput": 1.5},
             "manifest": None},
        ]
        for message in messages:
            send_frame(a, message)
        for message in messages:
            assert recv_frame(b) == message
    finally:
        a.close()
        b.close()


def test_closed_peer_raises_eof():
    a, b = socket_pair()
    a.close()
    try:
        with pytest.raises(EOFError):
            recv_frame(b)
    finally:
        b.close()


def test_mid_frame_close_raises_eof():
    """A peer dying after the length prefix is EOF, not a hang or garbage."""
    a, b = socket_pair()
    try:
        a.sendall(struct.pack(">I", 100) + b'{"kind"')
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)
    finally:
        b.close()


def test_oversized_length_prefix_is_rejected_before_allocation():
    a, b = socket_pair()
    try:
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError, match="exceeds"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


@pytest.mark.parametrize("body", [
    b"\xff\xfe not json at all",     # undecodable bytes
    b'"just a string"',              # JSON, but not an object
    b'{"no": "kind field"}',         # object without the discriminator
])
def test_garbage_frames_raise_transport_error(body):
    a, b = socket_pair()
    try:
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(TransportError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# endpoints


def test_parse_endpoint_accepts_host_port():
    assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_endpoint("nodeb.example:80") == ("nodeb.example", 80)
    # rpartition: everything before the last colon is the host.
    assert parse_endpoint("fe80::1:8080") == ("fe80::1", 8080)


@pytest.mark.parametrize("text", ["9000", ":9000", "host:", "host:abc"])
def test_parse_endpoint_rejects_malformed_input(text):
    with pytest.raises(ValueError):
        parse_endpoint(text)


# ---------------------------------------------------------------------------
# handshake


@pytest.fixture()
def listening_transport():
    transport = TcpTransport(spawn_agents=False, cache_spec="/shared/cache")
    assert transport.open()
    yield transport
    transport.close()


def dial(transport):
    sock = socket.create_connection(
        parse_endpoint(transport.endpoint), timeout=5.0
    )
    sock.settimeout(5.0)
    return sock


def hello(**overrides):
    message = {
        "kind": "hello", "host": "nodeb", "pid": 4242,
        "wire": WIRE_VERSION, "schema": CACHE_SCHEMA_VERSION,
    }
    message.update(overrides)
    return message


def test_handshake_welcomes_a_matching_agent(listening_transport):
    sock = dial(listening_transport)
    try:
        send_frame(sock, hello())
        links = listening_transport.accept()
        assert len(links) == 1
        link = links[0]
        assert link.remote
        assert link.host == "nodeb"
        assert link.pid == 4242
        assert not link.pid_is_local  # "nodeb" is not this host
        welcome = recv_frame(sock)
        assert welcome == {"kind": "welcome", "cache": "/shared/cache"}
        link.stop()
    finally:
        sock.close()


@pytest.mark.parametrize("bad,expect", [
    ({"wire": WIRE_VERSION + 1}, "wire version"),
    ({"schema": -1}, "cache schema"),
])
def test_handshake_rejects_mismatched_builds(listening_transport, bad, expect):
    sock = dial(listening_transport)
    try:
        send_frame(sock, hello(**bad))
        assert listening_transport.accept() == []
        reply = recv_frame(sock)
        assert reply["kind"] == "reject"
        assert expect in reply["reason"]
    finally:
        sock.close()


def test_handshake_drops_silent_probes(listening_transport):
    """A connect-and-close (doctor's liveness probe) is not a worker."""
    sock = dial(listening_transport)
    sock.close()
    assert listening_transport.accept() == []


def test_open_is_idempotent_and_reports_ownership():
    transport = TcpTransport(spawn_agents=False)
    try:
        assert transport.open() is True
        endpoint = transport.endpoint
        assert transport.open() is False  # second open: not the owner
        assert transport.endpoint == endpoint
    finally:
        transport.close()


# ---------------------------------------------------------------------------
# liveness registry


def test_registry_files_appear_on_open_and_vanish_on_close(tmp_path):
    registry = tmp_path / ".cluster"
    transport = TcpTransport(spawn_agents=False, registry=registry)
    assert transport.open()
    files = list(registry.glob("*.json"))
    assert len(files) == 1
    record = json.loads(files[0].read_text())
    assert record["kind"] == "coordinator"
    assert record["endpoint"] == transport.endpoint
    assert record["host"] == socket.gethostname()

    sock = dial(transport)
    try:
        send_frame(sock, hello())
        (link,) = transport.accept()
        names = {json.loads(p.read_text())["kind"]
                 for p in registry.glob("*.json")}
        assert names == {"coordinator", "worker"}
        link.stop()
    finally:
        sock.close()

    transport.close()
    assert list(registry.glob("*.json")) == []
