"""Unit tests for run provenance (repro.obs.provenance + runner/campaign)."""

import json

import pytest

from repro.experiments import (
    RunSpec,
    ScenarioConfig,
    execute_run,
    replay_manifest,
    run_campaign,
    run_chain,
    verify_manifest,
)
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    attach_spec,
    build_manifest,
    manifest_consistent,
    stable_digest,
)


def _quick_config(seed=1):
    return ScenarioConfig(sim_time=2.0, seed=seed)


# -- stable_digest ------------------------------------------------------------


def test_stable_digest_is_key_order_independent():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest({"a": 1}) != stable_digest({"a": 2})


def test_stable_digest_reexported_from_experiments_config():
    from repro.experiments.config import stable_digest as reexported

    assert reexported is stable_digest


# -- build_manifest / manifest_consistent ------------------------------------


def test_build_manifest_fields_and_consistency():
    config = _quick_config().to_dict()
    manifest = build_manifest(
        seed=1, config=config, sim_time=2.0, wall_time_s=0.5,
        metrics={"rollups": {}}, result_digest="d" * 64,
    )
    assert manifest["manifest_schema"] == MANIFEST_SCHEMA_VERSION
    assert manifest["config_digest"] == stable_digest(config)
    assert manifest["spec"] is None and manifest["spec_digest"] is None
    assert manifest_consistent(manifest)
    manifest["config"]["sim_time"] = 99.0
    assert not manifest_consistent(manifest)


def test_attach_spec_records_digest():
    manifest = build_manifest(
        seed=1, config={}, sim_time=1.0, wall_time_s=0.0,
        metrics={}, result_digest="",
    )
    spec = RunSpec(kind="chain", hops=2, variants=("newreno",),
                   config=_quick_config()).to_dict()
    attach_spec(manifest, spec)
    assert manifest["spec_digest"] == stable_digest(spec)
    assert manifest_consistent(manifest)
    manifest["spec"]["hops"] = 9
    assert not manifest_consistent(manifest)


# -- runner integration -------------------------------------------------------


def test_run_chain_attaches_manifest_but_keeps_it_out_of_to_dict():
    result = run_chain(2, ["newreno"], config=_quick_config())
    manifest = result.manifest
    assert manifest is not None
    assert manifest["seed"] == 1
    assert manifest["config"] == _quick_config().to_dict()
    assert manifest["sim_time"] == 2.0
    assert manifest["wall_time_s"] > 0
    assert manifest["metrics"] == result.metrics
    assert manifest["result_digest"] == stable_digest(result.to_dict())
    # Environment facts must never leak into the canonical serialization.
    assert "manifest" not in result.to_dict()
    assert "wall_time_s" not in result.to_dict()


def test_execute_run_manifest_replays_byte_identically():
    spec = RunSpec(kind="chain", hops=2, variants=("newreno",),
                   config=_quick_config(seed=42))
    result = execute_run(spec)
    manifest = result.manifest
    assert manifest["spec"] == spec.to_dict()
    # The acceptance claim: seed + config reproduce the run bit for bit.
    replayed = replay_manifest(manifest)
    assert stable_digest(replayed.to_dict()) == manifest["result_digest"]
    assert verify_manifest(manifest)


def test_replay_manifest_without_spec_raises():
    manifest = build_manifest(
        seed=1, config={}, sim_time=1.0, wall_time_s=0.0,
        metrics={}, result_digest="",
    )
    with pytest.raises(ValueError):
        replay_manifest(manifest)


def test_manifest_json_serializable():
    result = run_chain(2, ["newreno"], config=_quick_config())
    json.dumps(result.manifest)  # must not raise


# -- campaign integration -----------------------------------------------------


def test_campaign_manifests_survive_the_cache(tmp_path):
    from repro.experiments import CampaignCache

    spec = RunSpec(kind="chain", hops=2, variants=("newreno",),
                   config=_quick_config())
    cold = run_campaign([spec], jobs=1, cache=CampaignCache(tmp_path))
    warm = run_campaign([spec], jobs=1, cache=CampaignCache(tmp_path))
    assert cold.records[0].cached is False
    assert warm.records[0].cached is True
    m_cold, m_warm = cold.records[0].manifest, warm.records[0].manifest
    assert m_cold is not None and m_warm is not None
    assert m_warm["result_digest"] == m_cold["result_digest"]
    # The embedded spec is the *planned* unit (campaign-assigned seed).
    assert m_warm["spec"] == m_cold["spec"]
    assert m_warm["spec"]["kind"] == "chain"
    assert m_warm["spec"]["config"]["seed"] == m_warm["seed"]
    # The cache hit hands the manifest back through RunRecord.result too.
    assert warm.records[0].result.manifest["result_digest"] == \
        m_cold["result_digest"]
    # Manifests must not perturb the determinism fingerprint.
    assert warm.fingerprint() == cold.fingerprint()
