"""Unit tests for fault plans (repro.faults): validation, serialization,
seeded-random expansion, and the injector's scheduling behaviour."""

import json
import random

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    RandomFaults,
    build_error_model,
    install_faults,
)
from repro.phy.error_models import (
    GilbertElliott,
    NoError,
    PacketErrorRate,
    UniformBitError,
)
from repro.topology import build_chain


# ---------------------------------------------------------------------------
# Event validation


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError, match="unknown fault kind"):
        FaultEvent(time=1.0, kind="meteor_strike")


def test_negative_time_rejected():
    with pytest.raises(FaultPlanError, match="time"):
        FaultEvent(time=-0.5, kind="node_crash", node=1)


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(kind="node_crash"), "node_crash needs a node"),
        (dict(kind="link_blackout", node=1, peer=2), "duration"),
        (dict(kind="link_blackout", node=1, peer=1, duration=1.0), "differ"),
        (dict(kind="error_burst", duration=1.0), "model"),
        (dict(kind="queue_spike", node=1, duration=1.0), "capacity"),
        (dict(kind="queue_spike", node=1, capacity=0, duration=1.0), ">= 1"),
        (dict(kind="partition", duration=1.0), "groups"),
        (dict(kind="partition", groups=((0, 1),), duration=1.0), "two groups"),
        (
            dict(kind="partition", groups=((0, 1), (1, 2)), duration=1.0),
            "two partition groups",
        ),
    ],
)
def test_per_kind_required_fields(kwargs, message):
    with pytest.raises(FaultPlanError, match=message):
        FaultEvent(time=1.0, **kwargs)


def test_error_burst_model_validated_eagerly():
    with pytest.raises(FaultPlanError, match="error-model"):
        FaultEvent(time=1.0, kind="error_burst",
                   model={"kind": "warp"}, duration=1.0)
    with pytest.raises(FaultPlanError, match="bad error-model spec"):
        FaultEvent(time=1.0, kind="error_burst",
                   model={"kind": "per", "per": 3.0}, duration=1.0)


def test_build_error_model_every_kind():
    assert isinstance(build_error_model({"kind": "per", "per": 0.1}),
                      PacketErrorRate)
    assert isinstance(build_error_model({"kind": "ber", "ber": 1e-5}),
                      UniformBitError)
    assert isinstance(
        build_error_model({"kind": "gilbert_elliott", "ber_bad": 0.05}),
        GilbertElliott,
    )
    assert isinstance(build_error_model({"kind": "none"}), NoError)


# ---------------------------------------------------------------------------
# Serialization


def scripted_plan():
    return FaultPlan(events=(
        FaultEvent(time=2.0, kind="node_crash", node=1, duration=2.0),
        FaultEvent(time=4.0, kind="link_blackout", node=0, peer=1, duration=1.0),
        FaultEvent(time=5.0, kind="error_burst",
                   model={"kind": "per", "per": 0.2}, duration=0.5),
        FaultEvent(time=6.0, kind="queue_spike", node=1, capacity=2, duration=1.0),
        FaultEvent(time=7.0, kind="partition", groups=((0,), (1, 2)), duration=1.0),
    ))


def test_to_dict_elides_none_fields():
    payload = FaultEvent(time=2.0, kind="node_crash", node=1).to_dict()
    assert payload == {"time": 2.0, "kind": "node_crash", "node": 1}


def test_plan_round_trips_through_dict_and_json(tmp_path):
    plan = scripted_plan()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.loads(json.dumps(plan.to_dict())) == plan
    path = plan.save(tmp_path / "plan.json")
    assert FaultPlan.load(path) == plan


def test_random_spec_round_trips():
    plan = FaultPlan(random=RandomFaults(crashes=2, blackouts=1, nodes=(1, 2)))
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_unknown_plan_keys_rejected():
    with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
        FaultPlan.from_dict({"events": [], "surprise": 1})
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.loads("{truncated")


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert scripted_plan()
    assert FaultPlan(random=RandomFaults(crashes=1))


# ---------------------------------------------------------------------------
# Seeded-random expansion


def test_expansion_is_a_pure_function_of_the_rng_seed():
    spec = RandomFaults(crashes=3, blackouts=2, start=1.0)
    ids = list(range(6))
    a = spec.expand(random.Random(42), horizon=10.0, node_ids=ids)
    b = spec.expand(random.Random(42), horizon=10.0, node_ids=ids)
    c = spec.expand(random.Random(43), horizon=10.0, node_ids=ids)
    assert a == b
    assert a != c


def test_expansion_respects_window_and_eligible_nodes():
    spec = RandomFaults(crashes=8, blackouts=4, start=2.0)
    ids = list(range(5))
    events = spec.expand(random.Random(7), horizon=9.0, node_ids=ids)
    assert len(events) == 12
    assert events == sorted(events, key=lambda e: e.time)
    for event in events:
        assert 2.0 <= event.time <= 9.0
        if event.kind == "node_crash":
            # default eligibility: interior nodes only (the chain's relays)
            assert event.node in (1, 2, 3)
        else:
            assert event.node != event.peer


def test_expansion_without_eligible_nodes_raises():
    with pytest.raises(FaultPlanError, match="not enough nodes"):
        RandomFaults(crashes=1).expand(random.Random(1), 10.0, [0, 1])


# ---------------------------------------------------------------------------
# Injector scheduling


def test_install_twice_raises():
    network = build_chain(2)
    injector = FaultInjector(network, scripted_plan())
    injector.install()
    with pytest.raises(RuntimeError, match="already installed"):
        injector.install()


def test_random_plan_needs_a_horizon():
    network = build_chain(2)
    plan = FaultPlan(random=RandomFaults(crashes=1))
    with pytest.raises(FaultPlanError, match="horizon"):
        FaultInjector(network, plan).install()


def test_install_faults_skips_empty_plans():
    network = build_chain(2)
    assert install_faults(network, None) is None
    assert install_faults(network, FaultPlan()) is None


def test_unknown_node_in_plan_fails_at_fire_time():
    network = build_chain(2)
    plan = FaultPlan(events=(FaultEvent(time=0.5, kind="node_crash", node=99),))
    install_faults(network, plan)
    with pytest.raises(FaultPlanError, match="node 99"):
        network.sim.run(until=1.0)


def test_all_fault_kinds_fire_and_restore(monkeypatch):
    network = build_chain(2, ifq_capacity=50)
    injector = install_faults(network, scripted_plan(), horizon=10.0)
    original_model = network.channel.error_model
    network.sim.run(until=10.0)
    counters = injector.counters
    assert counters.crashes == 1
    assert counters.restarts == 1
    assert counters.blackouts == 1
    assert counters.heals == 1
    assert counters.error_bursts == 1
    assert counters.queue_spikes == 1
    assert counters.partitions == 1
    # every transient effect was rolled back
    assert network.channel.error_model is original_model
    assert network.node(1).ifq.capacity == 50
    assert not network.node(1).down
    for src in network.nodes:
        assert network.channel.neighbors_of(src.radio), "vetoes left behind"


def test_same_seed_yields_identical_schedules():
    def scheduled(seed):
        network = build_chain(3, seed=seed)
        plan = FaultPlan(random=RandomFaults(crashes=2, blackouts=1))
        return install_faults(network, plan, horizon=8.0).scheduled

    assert scheduled(5) == scheduled(5)
    assert scheduled(5) != scheduled(6)
