"""Unit tests for the interface queues (drop-tail and RED)."""

import random

import pytest

from repro.mac.dcf import QueuedPacket
from repro.net.queues import DropTailQueue, RedQueue


def entry(tag=0, next_hop=1):
    return QueuedPacket(packet=tag, next_hop=next_hop, size_bytes=100)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        for i in range(3):
            q.enqueue(entry(i))
        assert [q.dequeue().packet for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(5).dequeue() is None

    def test_overflow_drops_tail(self):
        q = DropTailQueue(2)
        assert q.enqueue(entry(0))
        assert q.enqueue(entry(1))
        assert not q.enqueue(entry(2))
        assert q.drops == 1
        assert len(q) == 2
        assert [q.dequeue().packet, q.dequeue().packet] == [0, 1]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_occupancy(self):
        q = DropTailQueue(4)
        q.enqueue(entry())
        assert q.occupancy == 0.25

    def test_wakeup_called_on_enqueue_only_when_admitted(self):
        q = DropTailQueue(1)
        calls = []
        q.on_wakeup = lambda: calls.append(1)
        q.enqueue(entry())
        q.enqueue(entry())  # dropped
        assert len(calls) == 1

    def test_on_drop_callback(self):
        q = DropTailQueue(1)
        dropped = []
        q.on_drop = dropped.append
        q.enqueue(entry(0))
        q.enqueue(entry(1))
        assert [e.packet for e in dropped] == [1]

    def test_counters(self):
        q = DropTailQueue(2)
        q.enqueue(entry())
        q.enqueue(entry())
        q.enqueue(entry())
        q.dequeue()
        assert (q.enqueued, q.dequeued, q.drops, q.high_water) == (2, 1, 1, 2)

    def test_remove_if_returns_matching_entries_without_counting_drops(self):
        q = DropTailQueue(10)
        for i in range(5):
            q.enqueue(entry(i, next_hop=i % 2))
        removed = q.remove_if(lambda e: e.next_hop == 0)
        assert [e.packet for e in removed] == [0, 2, 4]
        assert len(q) == 2
        assert q.drops == 0

    def test_remove_if_no_match_leaves_queue_alone(self):
        q = DropTailQueue(10)
        q.enqueue(entry(1))
        assert q.remove_if(lambda e: False) == []
        assert len(q) == 1


class TestRed:
    def test_below_min_threshold_never_drops(self):
        q = RedQueue(50, min_th=5, max_th=15, rng=random.Random(1))
        for i in range(4):
            assert q.enqueue(entry(i))
        assert q.early_drops == 0

    def test_hard_capacity_still_enforced(self):
        q = RedQueue(3, min_th=1000, max_th=2000, rng=random.Random(1))
        for i in range(5):
            q.enqueue(entry(i))
        assert len(q) == 3

    def test_sustained_congestion_produces_early_drops(self):
        q = RedQueue(
            50, min_th=3, max_th=8, max_p=0.5, weight=0.5, rng=random.Random(7)
        )
        admitted = 0
        for i in range(200):
            if q.enqueue(entry(i)):
                admitted += 1
            if len(q) > 10 and i % 3 == 0:
                q.dequeue()
        assert q.early_drops > 0
        assert admitted < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            RedQueue(min_th=10, max_th=5)
        with pytest.raises(ValueError):
            RedQueue(max_p=0.0)

    def test_avg_tracks_queue_with_ewma(self):
        q = RedQueue(50, min_th=5, max_th=15, weight=0.5, rng=random.Random(1))
        for i in range(10):
            q.enqueue(entry(i))
        assert 0.0 < q.avg < 10.0
