"""Unit tests for the radio / channel collision machinery."""

import pytest

from repro.phy import (
    DiskPropagation,
    PacketErrorRate,
    Position,
    Radio,
    WirelessChannel,
)
from repro.sim import Simulator


class Frame:
    """Minimal frame stand-in."""

    def __init__(self, size_bytes: int = 100, tag: str = "") -> None:
        self.size_bytes = size_bytes
        self.tag = tag


class RecordingMac:
    """Captures PHY callbacks for assertions."""

    def __init__(self) -> None:
        self.received = []
        self.errors = 0
        self.busy_edges = 0
        self.idle_edges = 0

    def phy_channel_busy(self):
        self.busy_edges += 1

    def phy_channel_idle(self):
        self.idle_edges += 1

    def phy_receive(self, frame):
        self.received.append(frame)

    def phy_rx_error(self):
        self.errors += 1


def setup(positions, **channel_kwargs):
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim, **channel_kwargs)
    radios, macs = [], []
    for i, pos in enumerate(positions):
        radio = Radio(sim, i)
        mac = RecordingMac()
        radio.listener = mac
        channel.register(radio, pos)
        radios.append(radio)
        macs.append(mac)
    return sim, channel, radios, macs


def test_frame_delivered_within_range():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    frame = Frame(tag="hello")
    channel.transmit(radios[0], frame, 0.001)
    sim.run()
    assert [f.tag for f in macs[1].received] == ["hello"]
    assert macs[1].errors == 0


def test_frame_not_delivered_beyond_rx_range():
    sim, channel, radios, macs = setup([Position(0), Position(400)])
    channel.transmit(radios[0], Frame(), 0.001)
    sim.run()
    assert macs[1].received == []
    # but the medium was sensed busy (within cs range)
    assert macs[1].busy_edges == 1
    assert macs[1].idle_edges == 1


def test_no_energy_beyond_cs_range():
    sim, channel, radios, macs = setup([Position(0), Position(600)])
    channel.transmit(radios[0], Frame(), 0.001)
    sim.run()
    assert macs[1].busy_edges == 0
    assert macs[1].received == []


def test_equal_power_collision_destroys_both():
    sim, channel, radios, macs = setup([Position(0), Position(250), Position(500)])
    # radios 0 and 2 both transmit to radio 1, equidistant -> equal power.
    channel.transmit(radios[0], Frame(tag="a"), 0.001)
    channel.transmit(radios[2], Frame(tag="b"), 0.001)
    sim.run()
    assert macs[1].received == []
    assert macs[1].errors == 2


def test_capture_preserves_much_stronger_frame():
    # receiver at 0; strong sender at 250 (power P); weak interferer at
    # 530 (power ~P/20 < P/10) -> strong frame survives.
    sim, channel, radios, macs = setup([Position(0), Position(250), Position(-530)])
    channel.transmit(radios[2], Frame(tag="weak"), 0.001)
    channel.transmit(radios[1], Frame(tag="strong"), 0.001)
    sim.run()
    assert [f.tag for f in macs[0].received] == ["strong"]


def test_capture_works_regardless_of_arrival_order():
    sim, channel, radios, macs = setup([Position(0), Position(250), Position(-530)])
    channel.transmit(radios[1], Frame(tag="strong"), 0.001)
    channel.transmit(radios[2], Frame(tag="weak"), 0.001)
    sim.run()
    assert [f.tag for f in macs[0].received] == ["strong"]


def test_half_duplex_cannot_receive_while_transmitting():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    channel.transmit(radios[0], Frame(tag="mine"), 0.002)
    channel.transmit(radios[1], Frame(tag="other"), 0.001)
    sim.run()
    assert macs[0].received == []


def test_busy_idle_edges_are_paired():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    channel.transmit(radios[0], Frame(), 0.001)
    sim.run()
    for mac in macs:
        assert mac.busy_edges == mac.idle_edges


def test_error_model_drops_frames_and_reports_error():
    sim, channel, radios, macs = setup(
        [Position(0), Position(200)], error_model=PacketErrorRate(1.0)
    )
    channel.transmit(radios[0], Frame(), 0.001)
    sim.run()
    assert macs[1].received == []
    assert macs[1].errors == 1


def test_move_invalidates_neighbor_cache():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    channel.transmit(radios[0], Frame(tag="1"), 0.001)
    sim.run()
    channel.move(radios[1], Position(10_000))
    channel.transmit(radios[0], Frame(tag="2"), 0.001)
    sim.run()
    assert [f.tag for f in macs[1].received] == ["1"]


def test_move_unknown_radio_raises():
    sim, channel, radios, macs = setup([Position(0)])
    with pytest.raises(KeyError):
        channel.move(Radio(sim, 99), Position(0))


def test_neighbors_of_uses_rx_range():
    sim, channel, radios, macs = setup(
        [Position(0), Position(250), Position(500)]
    )
    assert channel.neighbors_of(radios[0]) == [radios[1]]
    assert set(channel.neighbors_of(radios[1])) == {radios[0], radios[2]}


def test_transmissions_counter():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    channel.transmit(radios[0], Frame(), 0.001)
    sim.run()
    channel.transmit(radios[1], Frame(), 0.001)
    sim.run()
    assert channel.transmissions == 2


def test_begin_transmit_while_transmitting_raises():
    sim, channel, radios, macs = setup([Position(0), Position(200)])
    channel.transmit(radios[0], Frame(), 0.002)
    with pytest.raises(RuntimeError):
        radios[0].begin_transmit(0.001)
