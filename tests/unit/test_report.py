"""Unit tests for span-log aggregation and the ``report`` rendering."""

import json

import pytest

from repro.obs import (
    CampaignTelemetry,
    SpanWriter,
    aggregate_span_log,
    format_report,
    render_report,
)
from repro.obs.report import SpanLogError
from repro.obs import spans as spans_mod


@pytest.fixture
def span_log(tmp_path, monkeypatch):
    """A deterministic scripted span log: fixed wall clock, known shape."""
    clock = iter(x / 10.0 for x in range(1000, 2000))
    monkeypatch.setattr(spans_mod, "wall_clock", lambda: next(clock))
    path = tmp_path / "spans.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer, heartbeat_interval=0.001)
        tel.begin_campaign(4, "warm", 2)
        tel.worker_spawned("w1", None)
        tel.worker_spawned("w2", None)
        tel.cache_hit(3, "d" * 64)
        tel.unit_result("cache", 3, 0, "ok", cached=True)
        for index in (0, 1, 2):
            tel.cache_miss(index, f"{index}{'a' * 63}")
        tel.batch_dispatched("w1", [0, 1])
        tel.batch_dispatched("w2", [2])
        tel.unit_result("w1", 0, 1, "ok",
                        manifest={"timings": {"sim_s": 0.2, "setup_s": 0.01},
                                  "engine": {"lane": "scalar",
                                             "transmissions": 5,
                                             "numpy_fanout_frames": 0,
                                             "loop_fanout_frames": 5}})
        tel.unit_result("w2", 2, 1, "crash",
                        error="worker crashed (exit code 9)")
        tel.worker_exited("w2", "crash", exitcode=9)
        tel.retry_scheduled(2, 1, 0.25, "worker crashed (exit code 9)")
        tel.worker_spawned("w3", None, replacement=True)
        tel.unit_result("w1", 1, 1, "ok")
        tel.batch_dispatched("w3", [2])
        tel.unit_result("w3", 2, 2, "error", error="ValueError: nope")
        tel.quarantined(2, 2, "ValueError: nope")
        tel.worker_exited("w1", "stop")
        tel.worker_exited("w3", "stop")
        tel.progress(4, 4, 1)
        tel.end_campaign(executed=2, cache_hits=1, cache_evictions=0,
                         failed=1)
    return path


def test_aggregate_campaign_and_unit_counts(span_log):
    summary = aggregate_span_log(span_log)
    campaign = summary["campaign"]
    assert campaign["status"] == "error"  # one unit quarantined
    assert campaign["pool_mode"] == "warm" and campaign["jobs"] == 2
    assert campaign["executed"] == 2 and campaign["cache_hits"] == 1
    assert summary["units"] == {
        "total_attempts": 5, "ok": 3, "cached": 1, "executed": 2,
    }
    assert summary["batches"] == 3
    assert summary["cache"] == {
        "hits": 1, "misses": 3, "evictions": 0, "hit_ratio": 0.25,
    }
    assert summary["worker_events"] == {
        "spawned": 3, "replaced": 1, "crashed": 1, "timed_out": 0,
    }
    assert summary["retries"] == {
        "2": {"retries": 1, "last_error": "worker crashed (exit code 9)"},
    }
    assert summary["quarantined"] == [
        {"index": 2, "attempts": 2, "error": "ValueError: nope"},
    ]
    assert summary["last_progress"]["done"] == 4
    assert summary["phy"]["lane.scalar.units"] == 1
    assert summary["phy"]["transmissions"] == 5


def test_aggregate_workers_last_heartbeat_wins(span_log):
    summary = aggregate_span_log(span_log)
    workers = summary["workers"]
    assert set(workers) == {"w1", "w2", "w3"}
    assert workers["w1"]["units_done"] == 2
    assert workers["w2"]["failures"] == 1
    for stats in workers.values():
        assert 0.0 <= stats["utilization"] <= 1.0
        assert stats["heartbeats"] >= 1


def test_aggregate_timeline_and_slowest(span_log):
    summary = aggregate_span_log(span_log, buckets=5, top_k=1)
    assert len(summary["timeline"]["completions"]) == 5
    assert sum(summary["timeline"]["completions"]) == 3  # ok units
    slowest = summary["slowest_units"]
    assert len(slowest) == 1  # top_k honoured
    assert slowest[0]["dur_s"] > 0
    assert not slowest[0]["cached"]


def test_format_report_mentions_every_section(span_log):
    text = format_report(aggregate_span_log(span_log))
    for needle in ("campaign c1", "throughput over time", "workers",
                   "cache: 1 hits / 3 misses", "worker faults",
                   "retried units", "quarantined units", "slowest units",
                   "phy: lanes [scalar=1]"):
        assert needle in text, needle


def test_render_report_json_round_trips(span_log):
    payload = json.loads(render_report(span_log, as_json=True))
    assert payload["units"]["ok"] == 3
    assert render_report(span_log).startswith("campaign c1")


def test_aggregate_tolerates_unclosed_campaign(tmp_path):
    path = tmp_path / "cut.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(2, "warm", 1)
        tel.worker_spawned("w1", None)
        tel.batch_dispatched("w1", [0])
        tel.unit_result("w1", 0, 1, "ok")
        # coordinator killed here: no worker_exited / end_campaign
    summary = aggregate_span_log(path)
    assert summary["campaign"]["status"] == "interrupted"
    assert summary["campaign"]["partial"] is True
    assert summary["units"]["ok"] == 1
    # The partial aggregates still render, flagged as such.
    text = format_report(summary)
    assert "aggregates below are PARTIAL" in text


def test_aggregate_tolerates_killed_campaign_with_torn_tail(tmp_path):
    """A SIGKILLed campaign's log — unclosed spans AND a half-written
    final line — aggregates to a partial summary instead of erroring."""
    path = tmp_path / "killed.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(4, "warm", 2)
        tel.worker_spawned("w1", 101)
        tel.worker_spawned("w2", 102)
        tel.batch_dispatched("w1", [0, 1])
        tel.batch_dispatched("w2", [2, 3])
        tel.unit_result("w1", 0, 1, "ok")
        tel.unit_result("w2", 2, 1, "ok")
    # Kill mid-write: the final record is torn.
    intact = path.read_text()
    path.write_text(intact + '{"kind": "span_close", "id": "u9", "t1"')

    summary = aggregate_span_log(path)
    campaign = summary["campaign"]
    assert campaign["status"] == "interrupted"
    assert campaign["partial"] is True
    assert summary["units"]["ok"] == 2  # what was recorded before the kill
    assert summary["batches"] == 2
    text = format_report(summary)
    assert "aggregates below are PARTIAL" in text


def test_gracefully_interrupted_campaign_renders_resume_hint(tmp_path):
    """A campaign closed via graceful shutdown (SIGTERM + drain) reports
    ``interrupted`` with the remaining-unit count and a --resume hint."""
    path = tmp_path / "interrupted.ndjson"
    with SpanWriter(path) as writer:
        tel = CampaignTelemetry(writer)
        tel.begin_campaign(4, "inproc", 1)
        tel.unit_result("inline", 0, 1, "ok")
        tel.unit_result("inline", 1, 1, "ok")
        tel.campaign_interrupted("SIGTERM", done=2, total=4)
        tel.end_campaign(executed=2, cache_hits=0, cache_evictions=0,
                         failed=0, interrupted=True, remaining=2)
    summary = aggregate_span_log(path)
    campaign = summary["campaign"]
    assert campaign["status"] == "interrupted"
    assert campaign["partial"] is False  # the log itself closed cleanly
    assert campaign["remaining"] == 2
    text = format_report(summary)
    assert "interrupted by graceful shutdown" in text
    assert "2 units remaining" in text
    assert "--resume" in text
    assert "PARTIAL" not in text


def test_aggregate_rejects_log_without_campaign(tmp_path):
    path = tmp_path / "no-campaign.ndjson"
    with SpanWriter(path) as writer:
        writer.write({"kind": "event", "name": "x", "t": 0.0})
    with pytest.raises(SpanLogError):
        aggregate_span_log(path)
    with pytest.raises(ValueError):
        aggregate_span_log(path, buckets=0)
