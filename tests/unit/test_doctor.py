"""``repro-muzha doctor``: diagnosis and repair of campaign artifacts —
orphaned tmp files, corrupt cache envelopes, journal damage and drift,
unclosed span logs."""

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    CampaignCache,
    CampaignJournal,
    ScenarioConfig,
    chain_grid,
    diagnose_cache,
    diagnose_journal,
    diagnose_spans,
    run_campaign,
    run_doctor,
)
from repro.experiments.doctor import format_report


def tiny_grid():
    config = ScenarioConfig(sim_time=0.5, window=4)
    return chain_grid(["newreno"], [2], config=config)


@pytest.fixture
def campaign_state(tmp_path):
    """A completed journaled campaign: (cache, journal path, result)."""
    cache = CampaignCache(tmp_path / "cache")
    journal_path = tmp_path / "run.journal"
    with CampaignJournal(journal_path) as journal:
        result = run_campaign(tiny_grid(), replications=2, jobs=1,
                              cache=cache, pool_mode="inproc",
                              journal=journal)
    assert result.complete
    return cache, journal_path, result


# ---------------------------------------------------------------------------
# Cache diagnosis


def test_healthy_state_has_no_findings(campaign_state):
    cache, journal_path, _ = campaign_state
    report = run_doctor(cache=cache.root, journal=journal_path)
    assert report.healthy
    assert report.findings == []
    assert "healthy" in format_report(report)


def test_orphan_tmp_files_are_found_and_repaired(campaign_state):
    cache, _, _ = campaign_state
    shard = next(cache.root.glob("*/"))
    hidden = shard / ".deadbeef.1234.tmp"
    legacy = shard / "deadbeef.tmp"
    hidden.write_text("partial")
    legacy.write_text("partial")

    findings = diagnose_cache(cache.root)
    assert sorted(f.category for f in findings) == ["orphan-tmp", "orphan-tmp"]
    assert all(f.severity == "warn" for f in findings)
    assert hidden.exists() and legacy.exists()  # report mode never mutates

    repaired = diagnose_cache(cache.root, repair=True)
    assert all(f.repaired for f in repaired)
    assert not hidden.exists() and not legacy.exists()


def test_corrupt_envelopes_are_errors_and_repair_deletes_them(campaign_state):
    cache, _, _ = campaign_state
    entries = sorted(cache.root.glob("*/*.json"))
    entries[0].write_text("")  # zero-length
    payload = json.loads(entries[1].read_text())
    payload["result"]["mac_drops"] += 1  # checksum now wrong
    entries[1].write_text(json.dumps(payload))

    findings = diagnose_cache(cache.root)
    assert sorted(f.category for f in findings) == ["corrupt-envelope"] * 2
    assert all(f.severity == "error" for f in findings)
    assert not run_doctor(cache=cache.root).healthy

    report = run_doctor(cache=cache.root, repair=True)
    assert report.healthy  # repaired errors no longer count
    assert not entries[0].exists() and not entries[1].exists()


def test_missing_cache_directory_is_an_error(tmp_path):
    findings = diagnose_cache(tmp_path / "nope")
    assert [f.category for f in findings] == ["cache-missing"]


# ---------------------------------------------------------------------------
# Journal diagnosis


def test_torn_journal_tail_is_truncated_by_repair(campaign_state):
    cache, journal_path, _ = campaign_state
    intact = journal_path.read_text()
    journal_path.write_text(intact + '{"kind": "done", "ind')

    findings = diagnose_journal(journal_path, cache=cache.root)
    assert "journal-torn-tail" in [f.category for f in findings]

    diagnose_journal(journal_path, cache=cache.root, repair=True)
    assert journal_path.read_text() == intact  # cut back to the last line
    assert diagnose_journal(journal_path, cache=cache.root) == []


def test_journal_cache_drift_is_reported_and_repair_clears_it(campaign_state):
    cache, journal_path, _ = campaign_state
    entries = sorted(cache.root.glob("*/*.json"))
    # Entry content changes but stays internally consistent: cache.get would
    # serve it happily, only the journal knows it is not the recorded result.
    payload = json.loads(entries[0].read_text())
    payload["result"]["mac_drops"] += 1
    from repro.experiments.campaign import _envelope_checksum
    payload["checksum"] = _envelope_checksum(
        payload["result"], payload.get("manifest")
    )
    entries[0].write_text(json.dumps(payload, sort_keys=True))
    entries[1].unlink()  # and one entry simply vanished

    findings = diagnose_journal(journal_path, cache=cache.root)
    drift = [f for f in findings if f.category == "journal-drift"]
    assert len(drift) == 2
    assert all(f.severity == "warn" for f in drift)
    assert all("re-executes on resume" in f.detail for f in drift)

    diagnose_journal(journal_path, cache=cache.root, repair=True)
    assert not entries[0].exists()  # drifted entry removed for a clean re-run


def test_interrupted_journal_is_informational(tmp_path, campaign_state):
    cache, _, _ = campaign_state
    path = tmp_path / "int.journal"
    from repro.experiments import plan_campaign
    runs = plan_campaign(tiny_grid(), replications=2, base_seed=1)
    with CampaignJournal(path) as journal:
        journal.begin(runs, pool_mode="warm", base_seed=1, replications=2,
                      resumed=False)  # killed before any done/end record
    findings = diagnose_journal(path)
    assert [f.category for f in findings] == ["journal-interrupted"]
    assert findings[0].severity == "info"
    assert run_doctor(journal=path).healthy


def test_missing_journal_is_an_error(tmp_path):
    findings = diagnose_journal(tmp_path / "nope.journal")
    assert [f.category for f in findings] == ["journal-missing"]


# ---------------------------------------------------------------------------
# Span-log diagnosis


def test_unclosed_spans_are_flagged_as_a_killed_campaign(tmp_path):
    spans = tmp_path / "spans.ndjson"
    spans.write_text(
        '{"kind":"span_open","id":"c1","span":"campaign","parent":null,"t0":1.0}\n'
        '{"kind":"span_open","id":"u2","span":"unit-attempt","parent":"c1","t0":1.1}\n'
        '{"kind":"span_close","id":"u2","t1":1.5,"status":"ok"}\n'
    )
    findings = diagnose_spans(spans)
    assert [f.category for f in findings] == ["spans-unclosed"]
    assert "c1" in findings[0].detail
    assert run_doctor(spans=spans).healthy  # warning, not error


def test_torn_span_tail_is_repairable(tmp_path):
    spans = tmp_path / "spans.ndjson"
    spans.write_text(
        '{"kind":"span_open","id":"c1","span":"campaign","parent":null,"t0":1.0}\n'
        '{"kind":"span_close","id":"c1","t1":2.0,"status":"ok"}\n'
        '{"kind":"progr'
    )
    findings = diagnose_spans(spans, repair=True)
    assert any(f.category == "spans-torn-tail" and f.repaired
               for f in findings)
    assert spans.read_text().endswith('"status":"ok"}\n')


# ---------------------------------------------------------------------------
# CLI surface


def test_doctor_cli_reports_and_exits_by_health(campaign_state, capsys):
    cache, journal_path, _ = campaign_state
    assert cli_main(["doctor", "--cache", str(cache.root),
                     "--journal", str(journal_path)]) == 0
    assert "healthy" in capsys.readouterr().out

    next(cache.root.glob("*/*.json")).write_text("")
    assert cli_main(["doctor", "--cache", str(cache.root), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["healthy"] is False
    assert payload["findings"][0]["category"] == "corrupt-envelope"

    assert cli_main(["doctor", "--cache", str(cache.root), "--repair"]) == 0


def test_doctor_cli_requires_a_target():
    with pytest.raises(SystemExit):
        cli_main(["doctor"])


# ---------------------------------------------------------------------------
# Cluster artifact diagnosis


def dead_local_pid():
    """A pid guaranteed dead: a child we already reaped."""
    import subprocess
    import sys

    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def closed_endpoint():
    """A 127.0.0.1 endpoint that refuses connections."""
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def write_registration(cache_root, kind, host, pid, endpoint):
    from repro.experiments import CLUSTER_REGISTRY_DIRNAME

    registry = cache_root / CLUSTER_REGISTRY_DIRNAME
    registry.mkdir(parents=True, exist_ok=True)
    path = registry / f"{kind}-{host}-{pid}.json"
    path.write_text(json.dumps({
        "kind": kind, "host": host, "pid": pid,
        "endpoint": endpoint, "started": 1.0,
    }))
    return path


def test_stale_cluster_registrations_are_found_and_repaired(campaign_state):
    import socket

    cache, _, _ = campaign_state
    path = write_registration(
        cache.root, "worker", socket.gethostname(), dead_local_pid(),
        closed_endpoint(),
    )

    findings = diagnose_cache(cache.root)
    assert [f.category for f in findings] == ["cluster-orphan"]
    assert findings[0].severity == "warn"
    assert path.exists()  # report mode never mutates

    repaired = diagnose_cache(cache.root, repair=True)
    assert all(f.repaired for f in repaired)
    assert not path.exists()
    # An emptied registry directory is cleaned up with its last file.
    assert not path.parent.exists()


def test_live_cluster_registrations_are_informational_and_kept(campaign_state):
    import os
    import socket

    cache, _, _ = campaign_state
    path = write_registration(
        cache.root, "coordinator", socket.gethostname(), os.getpid(),
        closed_endpoint(),
    )
    findings = diagnose_cache(cache.root, repair=True)
    assert [f.category for f in findings] == ["cluster-active"]
    assert findings[0].severity == "info"
    assert not findings[0].repaired
    assert path.exists()  # a live campaign's registration is never deleted
    assert run_doctor(cache=cache.root).healthy


def test_remote_registrations_are_probed_by_endpoint(campaign_state):
    import socket

    cache, _, _ = campaign_state
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    live = f"127.0.0.1:{listener.getsockname()[1]}"
    try:
        write_registration(cache.root, "worker", "elsewhere", 99, live)
        write_registration(
            cache.root, "worker", "elsewhere", 100, closed_endpoint()
        )
        categories = sorted(
            f.category for f in diagnose_cache(cache.root)
        )
        assert categories == ["cluster-active", "cluster-orphan"]
    finally:
        listener.close()


def test_corrupt_registrations_are_repairable(campaign_state):
    from repro.experiments import CLUSTER_REGISTRY_DIRNAME

    cache, _, _ = campaign_state
    registry = cache.root / CLUSTER_REGISTRY_DIRNAME
    registry.mkdir()
    bad = registry / "worker-x-1.json"
    bad.write_text("{not json")

    findings = diagnose_cache(cache.root)
    assert [f.category for f in findings] == ["cluster-registry-corrupt"]
    diagnose_cache(cache.root, repair=True)
    assert not bad.exists()


def test_interrupted_cluster_journal_probes_the_coordinator_endpoint(tmp_path):
    import socket

    from repro.experiments import plan_campaign

    runs = plan_campaign(tiny_grid(), replications=2, base_seed=1)

    # Dead endpoint: safe to resume, informational.
    stale = tmp_path / "stale.journal"
    with CampaignJournal(stale) as journal:
        journal.begin(runs, pool_mode="cluster", base_seed=1, replications=2,
                      resumed=False,
                      transport={"kind": "tcp", "endpoint": closed_endpoint()})
    categories = {f.category: f.severity for f in diagnose_journal(stale)}
    assert categories == {"journal-interrupted": "info",
                          "cluster-endpoint-stale": "info"}
    assert run_doctor(journal=stale).healthy

    # Answering endpoint: the campaign may still be running — warn.
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        live = tmp_path / "live.journal"
        with CampaignJournal(live) as journal:
            journal.begin(
                runs, pool_mode="cluster", base_seed=1, replications=2,
                resumed=False,
                transport={
                    "kind": "tcp",
                    "endpoint": f"127.0.0.1:{listener.getsockname()[1]}",
                },
            )
        findings = {f.category: f for f in diagnose_journal(live)}
        assert findings["cluster-endpoint-live"].severity == "warn"
        assert "risks executing" in findings["cluster-endpoint-live"].detail
    finally:
        listener.close()
