"""Unit tests for the pluggable campaign result stores.

The local :class:`CampaignCache` behaviour (atomic writes, locking,
corruption eviction) is covered by the campaign robustness suite; this
file exercises what PR 10 added on top — the :class:`CacheStore` spec
round-trip, the ``.cluster`` registry staying invisible to entry walks,
and the HTTP store/server pair sharing one envelope contract with the
directory store, including end-to-end corruption detection.
"""

import json

import pytest

from repro.experiments.cachestore import (
    CLUSTER_REGISTRY_DIRNAME,
    CacheCorruptionWarning,
    CacheServer,
    CacheStore,
    CampaignCache,
    HttpCacheStore,
    make_store,
)

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
PAYLOAD = {"result": {"goodput": 123.0, "rtx": 4},
           "manifest": {"result_digest": "deadbeef"}}


# ---------------------------------------------------------------------------
# make_store / describe round-trip


def test_make_store_builds_each_kind(tmp_path):
    assert make_store(None) is None
    local = make_store(tmp_path / "cache")
    assert isinstance(local, CampaignCache)
    assert make_store(local) is local  # instances pass through
    remote = make_store("http://127.0.0.1:9/cache")
    assert isinstance(remote, HttpCacheStore)
    assert isinstance(make_store("https://example/cache"), HttpCacheStore)


def test_describe_round_trips_through_make_store(tmp_path):
    local = CampaignCache(tmp_path / "cache")
    rebuilt = make_store(local.describe())
    assert isinstance(rebuilt, CampaignCache)
    assert rebuilt.root == local.root.resolve()
    remote = HttpCacheStore("http://127.0.0.1:9/cache/")
    rebuilt = make_store(remote.describe())
    assert isinstance(rebuilt, HttpCacheStore)
    assert rebuilt.base_url == remote.base_url


# ---------------------------------------------------------------------------
# the .cluster registry is not cache content


def test_cluster_registry_is_invisible_to_entry_walks(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    cache.put(DIGEST, PAYLOAD)
    registry = cache.root / CLUSTER_REGISTRY_DIRNAME
    registry.mkdir()
    liveness = registry / "coordinator-host-1.json"
    liveness.write_text('{"kind": "coordinator"}')

    assert len(cache) == 1
    assert cache.clear() == 1
    assert liveness.is_file()  # clear() must not eat liveness records
    assert cache.get(DIGEST) is None


# ---------------------------------------------------------------------------
# HTTP store against a live CacheServer


@pytest.fixture()
def served(tmp_path):
    with CacheServer(tmp_path / "cache") as server:
        yield server, HttpCacheStore(server.url)


def test_http_roundtrip_shares_envelopes_with_the_directory_store(served):
    server, remote = served
    assert remote.get(DIGEST) is None
    remote.put(DIGEST, PAYLOAD)
    assert remote.get(DIGEST) == PAYLOAD
    assert DIGEST in remote
    # Same envelope the local store would have written: a directory-store
    # reader on the served root sees an identical payload.
    assert server.cache.get(DIGEST) == PAYLOAD


def test_http_clear_empties_the_store(served):
    _, remote = served
    remote.put(DIGEST, PAYLOAD)
    remote.put(OTHER, PAYLOAD)
    assert remote.clear() == 2
    assert remote.get(DIGEST) is None


def test_http_get_evicts_corrupt_entries(served):
    server, remote = served
    remote.put(DIGEST, PAYLOAD)
    entry = server.cache._path(DIGEST)
    envelope = json.loads(entry.read_text())
    envelope["result"]["goodput"] = 999.0  # flip a byte past the checksum
    entry.write_text(json.dumps(envelope))
    with pytest.warns(CacheCorruptionWarning):
        assert remote.get(DIGEST) is None
    assert remote.evictions == 1
    assert not entry.exists()  # the DELETE eviction reached the server


def test_server_refuses_envelopes_with_bad_checksums(served):
    server, remote = served
    import urllib.error
    import urllib.request

    body = json.dumps({"result": {"x": 1}, "manifest": None,
                       "checksum": "not-the-checksum"}).encode()
    request = urllib.request.Request(
        f"{server.url}/{DIGEST[:2]}/{DIGEST}.json", data=body, method="PUT"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5.0)
    assert excinfo.value.code == 400
    excinfo.value.close()
    assert remote.get(DIGEST) is None  # the bad write never landed


def test_network_failures_degrade_to_misses(tmp_path):
    """A dead cache server slows a shard down; it never fails it."""
    # A fresh CacheServer bound then torn down yields a port with nothing
    # listening — connection refused, immediately.
    with CacheServer(tmp_path / "cache") as server:
        dead_url = server.url
    remote = HttpCacheStore(dead_url, timeout=1.0)
    assert remote.get(DIGEST) is None
    remote.put(DIGEST, PAYLOAD)  # must not raise
    assert remote.clear() == 0
    assert remote.errors >= 2


def test_cache_store_contract_default_contains():
    class Probe(CacheStore):
        def get(self, digest):
            return PAYLOAD if digest == DIGEST else None

    probe = Probe()
    assert DIGEST in probe
    assert OTHER not in probe
