"""Behavioural unit tests for the TCP Muzha sender (Table 4.1)."""

import pytest

from repro.core import MAX_DRAI, TcpMuzha

from .tcp_harness import ack, make_sender, sent_seqs


class TestRouterAssistPlumbing:
    def test_data_packets_carry_avbw_s_option(self):
        sim, node, sender = make_sender(TcpMuzha)
        assert node.sent[0].avbw_s == MAX_DRAI

    def test_no_slow_start_growth_without_feedback(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=None)
        assert sender.cwnd == 1.0  # no MRAI, no adjustment


class TestTable52Adjustments:
    """New-ACK row of Table 4.1: adjust per the echoed MRAI, once per RTT."""

    def test_mrai_5_doubles(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=5)
        assert sender.cwnd == 2.0

    def test_mrai_4_adds_one(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=4)
        assert sender.cwnd == 2.0
        ack(sender, sender.snd_nxt, echo_mrai=4)
        assert sender.cwnd == 3.0

    def test_mrai_3_holds(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=3)
        assert sender.cwnd == 1.0

    def test_mrai_2_subtracts_one_with_floor(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=5)  # 2.0
        ack(sender, sender.snd_nxt, echo_mrai=2)
        assert sender.cwnd == 1.0
        ack(sender, sender.snd_nxt, echo_mrai=2)
        assert sender.cwnd == 1.0  # floored

    def test_mrai_1_halves(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=5)
        ack(sender, sender.snd_nxt, echo_mrai=5)  # 4.0
        ack(sender, sender.snd_nxt, echo_mrai=1)
        assert sender.cwnd == 2.0

    def test_at_most_one_adjustment_per_rtt(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=4)  # adjusts; barrier at snd_nxt
        barrier = sender.snd_nxt
        # acks below the barrier must not adjust again
        ack(sender, 2, echo_mrai=4)
        assert sender.cwnd == 2.0
        ack(sender, barrier, echo_mrai=4)
        assert sender.cwnd == 3.0

    def test_adjustment_histogram_recorded(self):
        sim, node, sender = make_sender(TcpMuzha)
        ack(sender, 1, echo_mrai=5)
        ack(sender, sender.snd_nxt, echo_mrai=3)
        assert sender.muzha.rate_adjustments[5] == 1
        assert sender.muzha.rate_adjustments[3] == 1

    def test_cwnd_clamped_to_advertised_window(self):
        sim, node, sender = make_sender(TcpMuzha, window=4)
        for _ in range(5):
            ack(sender, sender.snd_nxt, echo_mrai=5)
        assert sender.cwnd == 4.0


def grow_to(sender, target_cwnd):
    """Drive cwnd up with MRAI=5 doublings."""
    while sender.cwnd < target_cwnd:
        ack(sender, sender.snd_nxt, echo_mrai=5)


class TestLossClassification:
    """Rows 2-3 of Table 4.1: marked vs unmarked triple duplicate ACKs."""

    def test_marked_triple_dupack_halves_and_enters_ff(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=1)
        assert sender.in_recovery
        assert sender.muzha.marked_loss_events == 1
        assert sender._ff_exit_cwnd == pytest.approx(4.0)
        assert sent_seqs(node).count(una) == 2  # fast retransmit

    def test_unmarked_triple_dupack_keeps_window(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=4)  # acceleration band: random loss
        assert sender.in_recovery
        assert sender.muzha.random_loss_events == 1
        assert sender._ff_exit_cwnd == pytest.approx(8.0)
        assert sent_seqs(node).count(una) == 2

    def test_missing_echo_counts_as_random(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 4)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=None)
        assert sender.muzha.random_loss_events == 1

    def test_ff_exit_restores_classified_window(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=1)
        ack(sender, sender.recover, echo_mrai=3)  # full ACK
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(4.0)

    def test_partial_ack_in_ff_retransmits_next_hole(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=1)
        partial = una + 2
        assert partial < sender.recover
        ack(sender, partial, echo_mrai=3)
        assert sender.in_recovery
        assert partial in sent_seqs(node)[-2:]

    def test_no_mrai_adjustment_during_ff(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=1)
        inflated = sender.cwnd
        ack(sender, una + 1, echo_mrai=5)  # partial ack with accel MRAI
        assert sender.muzha.rate_adjustments[5] <= 3  # only the growth calls


class TestTimeout:
    """Row 4 of Table 4.1: timeout resets cwnd to 1, stays in CA."""

    def test_timeout_resets_to_one_and_recovers_via_mrai(self):
        sim, node, sender = make_sender(TcpMuzha)
        grow_to(sender, 8)
        sim.run(until=sim.now + 10.0)  # unanswered -> RTO
        assert sender.stats.timeouts >= 1
        assert sender.cwnd == 1.0
        assert not sender.in_recovery
        # recovery continues through router feedback, not slow start
        ack(sender, sender.snd_nxt, echo_mrai=5)
        assert sender.cwnd == 2.0
