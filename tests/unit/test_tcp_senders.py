"""Behavioural unit tests for the loss-driven TCP senders."""

import pytest

from repro.transport import TcpNewReno, TcpReno, TcpTahoe

from .tcp_harness import ack, make_sender, sent_seqs


class TestWindowMechanics:
    def test_initial_window_is_one_segment(self):
        sim, node, sender = make_sender(TcpTahoe)
        assert sent_seqs(node) == [0]
        assert sender.snd_nxt == 1

    def test_slow_start_doubles_per_rtt(self):
        sim, node, sender = make_sender(TcpTahoe)
        ack(sender, 1)  # cwnd 1 -> 2, sends 2
        assert sender.cwnd == 2
        assert sent_seqs(node) == [0, 1, 2]
        ack(sender, 2)
        ack(sender, 3)
        assert sender.cwnd == 4

    def test_congestion_avoidance_grows_linearly(self):
        sim, node, sender = make_sender(TcpTahoe, initial_ssthresh=2)
        ack(sender, 1)  # reaches ssthresh
        ack(sender, 2)
        cwnd_before = sender.cwnd
        ack(sender, 3)
        assert sender.cwnd == pytest.approx(cwnd_before + 1 / cwnd_before)

    def test_advertised_window_caps_cwnd(self):
        sim, node, sender = make_sender(TcpTahoe, window=4)
        for i in range(1, 30):
            ack(sender, i)
        assert sender.cwnd == 4.0
        assert sender.usable_window == 4

    def test_bounded_transfer_stops_at_max_packets(self):
        sim, node, sender = make_sender(TcpTahoe, max_packets=3)
        ack(sender, 1)
        ack(sender, 2)
        ack(sender, 3)
        assert sender.snd_nxt == 3
        assert sender.finished

    def test_stale_ack_ignored(self):
        sim, node, sender = make_sender(TcpTahoe)
        ack(sender, 1)
        before = sender.cwnd
        ack(sender, 0)  # below snd_una
        assert sender.cwnd == before

    def test_limited_transmit_sends_on_first_two_dupacks(self):
        sim, node, sender = make_sender(TcpTahoe, window=4)
        for i in range(1, 5):
            ack(sender, i)  # cwnd reaches the cap, 4 in flight
        base = len(sent_seqs(node))
        ack(sender, sender.snd_una)  # dup 1
        ack(sender, sender.snd_una)  # dup 2
        assert len(sent_seqs(node)) == base + 2

    def test_window_validation(self):
        from repro.sim import Simulator

        from .tcp_harness import FakeNode

        with pytest.raises(ValueError):
            TcpTahoe(Simulator(seed=1), FakeNode(), dst=1, sport=1, dport=2, window=0)


class TestRtoBehaviour:
    def test_timeout_collapses_to_one_and_retransmits(self):
        sim, node, sender = make_sender(TcpTahoe)
        ack(sender, 1)
        ack(sender, 2)  # cwnd 3, several in flight
        flight = sender.outstanding
        sim.run(until=sim.now + 10.0)  # let RTO fire
        assert sender.stats.timeouts >= 1
        assert sender.cwnd == 1.0
        assert sender.ssthresh == pytest.approx(max(min(3.0, flight) / 2, 2.0))
        assert sent_seqs(node).count(sender.snd_una) >= 2  # retransmitted

    def test_rto_timer_stops_when_everything_acked(self):
        sim, node, sender = make_sender(TcpTahoe, max_packets=1)
        ack(sender, 1)
        assert not sender._rto_timer.running

    def test_karn_backoff_on_repeated_timeouts(self):
        sim, node, sender = make_sender(TcpTahoe)
        sim.run(until=20.0)  # several unanswered RTOs
        assert sender.stats.timeouts >= 2
        assert sender.rtt.backoff_factor > 1


class TestTahoe:
    def test_triple_dupack_fast_retransmits_to_slow_start(self):
        sim, node, sender = make_sender(TcpTahoe)
        for i in range(1, 6):
            ack(sender, i)
        for _ in range(3):
            ack(sender, 5)
        assert sender.stats.fast_retransmits == 1
        assert sender.cwnd == 1.0
        assert sent_seqs(node).count(5) == 2  # original + fast retransmit


class TestReno:
    def test_fast_recovery_halves_and_inflates(self):
        sim, node, sender = make_sender(TcpReno)
        for i in range(1, 9):
            ack(sender, i)
        cwnd = sender.cwnd
        for _ in range(3):
            ack(sender, 8)
        assert sender.in_recovery
        expected_ssthresh = max(min(cwnd, sender.snd_nxt - 8) / 2, 2)
        assert sender.ssthresh == pytest.approx(expected_ssthresh)
        assert sender.cwnd == pytest.approx(sender.ssthresh + 3)
        ack(sender, 8)  # 4th dupack inflates
        assert sender.cwnd == pytest.approx(sender.ssthresh + 4)

    def test_any_new_ack_ends_reno_recovery(self):
        sim, node, sender = make_sender(TcpReno)
        for i in range(1, 9):
            ack(sender, i)
        for _ in range(3):
            ack(sender, 8)
        ack(sender, 9)  # partial or full: Reno exits either way
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)

    def test_duplicate_triple_dupack_does_not_reenter(self):
        sim, node, sender = make_sender(TcpReno)
        for i in range(1, 9):
            ack(sender, i)
        for _ in range(6):
            ack(sender, 8)
        assert sender.stats.fast_retransmits == 1


class TestNewReno:
    def test_partial_ack_retransmits_next_hole_and_stays_in_recovery(self):
        sim, node, sender = make_sender(TcpNewReno)
        for i in range(1, 9):
            ack(sender, i)
        recover_point = sender.snd_nxt
        for _ in range(3):
            ack(sender, 8)
        # limited transmit clocked out two new segments on dupacks 1-2, so
        # the recovery point is the (advanced) highest sequence sent.
        assert sender.recover == recover_point + 2 == sender.snd_nxt
        ack(sender, 10)  # partial: below recover
        assert sender.in_recovery
        assert 10 in sent_seqs(node)[-2:]  # hole retransmitted immediately

    def test_full_ack_exits_recovery_at_ssthresh(self):
        sim, node, sender = make_sender(TcpNewReno)
        for i in range(1, 9):
            ack(sender, i)
        for _ in range(3):
            ack(sender, 8)
        ack(sender, sender.recover)
        assert not sender.in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)
