"""Unit tests for the AODV routing table and protocol mechanics."""

import pytest

from repro.net import Node, Packet
from repro.phy import Position, WirelessChannel
from repro.routing.aodv import (
    AodvRouting,
    Rerr,
    Rrep,
    Rreq,
    RoutingTable,
    constants as C,
    install_aodv_routing,
)
from repro.sim import Simulator


class TestRoutingTable:
    def test_install_and_lookup(self):
        table = RoutingTable()
        assert table.update(5, next_hop=2, hop_count=3, seq=1, expiry=10.0)
        entry = table.lookup(5, now=1.0)
        assert entry.next_hop == 2

    def test_expired_entry_not_usable(self):
        table = RoutingTable()
        table.update(5, 2, 3, 1, expiry=10.0)
        assert table.lookup(5, now=10.0) is None
        assert table.get(5) is not None  # raw entry still exists

    def test_fresher_sequence_replaces(self):
        table = RoutingTable()
        table.update(5, 2, 3, seq=1, expiry=10.0)
        assert table.update(5, 7, 9, seq=2, expiry=10.0)
        assert table.lookup(5, 0.0).next_hop == 7

    def test_same_seq_shorter_path_replaces(self):
        table = RoutingTable()
        table.update(5, 2, hop_count=3, seq=1, expiry=10.0)
        assert table.update(5, 7, hop_count=2, seq=1, expiry=10.0)
        assert not table.update(5, 9, hop_count=4, seq=1, expiry=10.0)
        assert table.lookup(0.0, 0.0) is None
        assert table.lookup(5, 0.0).next_hop == 7

    def test_stale_sequence_rejected(self):
        table = RoutingTable()
        table.update(5, 2, 3, seq=5, expiry=10.0)
        assert not table.update(5, 7, 1, seq=4, expiry=10.0)

    def test_invalidate_via_bumps_seq_and_lists_routes(self):
        table = RoutingTable()
        table.update(5, 2, 3, 1, 10.0)
        table.update(6, 2, 4, 1, 10.0)
        table.update(7, 3, 1, 1, 10.0)
        broken = table.invalidate_via(2)
        assert sorted(e.dst for e in broken) == [5, 6]
        assert table.lookup(5, 0.0) is None
        assert table.lookup(7, 0.0) is not None
        assert table.get(5).seq == 2

    def test_refresh_extends_lifetime(self):
        table = RoutingTable()
        table.update(5, 2, 3, 1, expiry=10.0)
        table.refresh(5, expiry=20.0)
        assert table.lookup(5, 15.0) is not None

    def test_invalid_entry_can_be_reinstalled(self):
        table = RoutingTable()
        table.update(5, 2, 3, 1, 10.0)
        table.invalidate(5)
        assert table.update(5, 4, 2, 1, 10.0)
        assert table.lookup(5, 0.0).next_hop == 4


class TestMessages:
    def test_rreq_hopped_increments(self):
        rreq = Rreq(orig=1, orig_seq=1, rreq_id=1, dst=5, dst_seq=0, unknown_dst_seq=True)
        assert rreq.hopped().hop_count == 1
        assert rreq.hop_count == 0

    def test_rrep_hopped_increments(self):
        rrep = Rrep(orig=1, dst=5, dst_seq=3, lifetime=10.0)
        assert rrep.hopped().hop_count == 1


def build_aodv_chain(n, seed=1):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    nodes = [Node(sim, channel, i, Position(250.0 * i)) for i in range(n)]
    protocols = install_aodv_routing(nodes, sim)
    return sim, nodes, protocols


class PortProbe:
    def __init__(self):
        self.packets = []

    def receive_packet(self, packet):
        self.packets.append(packet)


class Probe:
    def __init__(self, dport):
        self.dport = dport


class TestAodvProtocol:
    def test_discovery_installs_routes_and_delivers(self):
        sim, nodes, protocols = build_aodv_chain(4)
        probe = PortProbe()
        nodes[3].bind_port(80, probe)
        nodes[0].send(
            Packet(src=0, dst=3, protocol="raw", size_bytes=500, payload=Probe(80))
        )
        sim.run(until=2.0)
        assert len(probe.packets) == 1
        assert protocols[0].next_hop(3) == 1
        # reverse routes toward the originator exist along the path
        assert protocols[3].next_hop(0) == 2

    def test_packets_buffered_during_discovery_all_flow(self):
        sim, nodes, protocols = build_aodv_chain(4)
        probe = PortProbe()
        nodes[3].bind_port(80, probe)
        for _ in range(5):
            nodes[0].send(
                Packet(src=0, dst=3, protocol="raw", size_bytes=500, payload=Probe(80))
            )
        sim.run(until=2.0)
        assert len(probe.packets) == 5

    def test_unreachable_destination_fails_after_retries(self):
        sim, nodes, protocols = build_aodv_chain(2)
        nodes[0].send(Packet(src=0, dst=77, protocol="raw", size_bytes=100))
        sim.run(until=30.0)
        assert protocols[0].aodv.discovery_failures == 1
        assert protocols[0].counters.no_route_drops >= 1

    def test_rreq_dedup_suppresses_rebroadcast_storm(self):
        sim, nodes, protocols = build_aodv_chain(4)
        nodes[0].send(Packet(src=0, dst=3, protocol="raw", size_bytes=100))
        sim.run(until=2.0)
        # each intermediate node forwards one copy of the flood
        assert protocols[1].aodv.rreq_tx <= 2
        assert protocols[2].aodv.rreq_tx <= 2

    def test_confirmed_link_failure_invalidates_and_rediscovers(self):
        sim, nodes, protocols = build_aodv_chain(3)
        # Seed a bogus route at node 0 through a dead next hop 9.
        protocols[0].table.update(2, next_hop=9, hop_count=1, seq=99, expiry=1e9)
        probe = PortProbe()
        nodes[2].bind_port(80, probe)
        for _ in range(4):
            nodes[0].send(
                Packet(src=0, dst=2, protocol="raw", size_bytes=300, payload=Probe(80))
            )
        sim.run(until=10.0)
        # after two MAC failures the route flips to the real path
        assert protocols[0].next_hop(2) == 1
        assert len(probe.packets) >= 1

    def test_single_link_failure_is_salvaged_not_invalidated(self):
        sim, nodes, protocols = build_aodv_chain(2)
        protocols[0].table.update(1, next_hop=1, hop_count=1, seq=1, expiry=1e9)
        packet = Packet(src=0, dst=1, protocol="raw", size_bytes=100)
        protocols[0].on_link_failure(1, packet)
        # first strike: the route survives
        assert protocols[0].next_hop(1) == 1

    def test_link_ok_clears_suspicion(self):
        sim, nodes, protocols = build_aodv_chain(2)
        protocols[0].table.update(1, next_hop=1, hop_count=1, seq=1, expiry=1e9)
        packet = Packet(src=0, dst=1, protocol="raw", size_bytes=100)
        protocols[0].on_link_failure(1, packet)
        protocols[0].on_link_ok(1)
        protocols[0].on_link_failure(1, packet)
        # suspicion was cleared, so this counted as a first strike again
        assert protocols[0].next_hop(1) == 1

    def test_rerr_invalidates_downstream_routes(self):
        sim, nodes, protocols = build_aodv_chain(3)
        protocols[0].table.update(2, next_hop=1, hop_count=2, seq=1, expiry=1e9)
        rerr = Rerr(unreachable=[(2, 2)])
        protocols[0]._receive_rerr(rerr, from_addr=1)
        assert protocols[0].next_hop(2) is None

    def test_rerr_from_other_neighbor_ignored(self):
        sim, nodes, protocols = build_aodv_chain(3)
        protocols[0].table.update(2, next_hop=1, hop_count=2, seq=1, expiry=1e9)
        protocols[0]._receive_rerr(Rerr(unreachable=[(2, 2)]), from_addr=7)
        assert protocols[0].next_hop(2) == 1

    def test_control_packets_never_salvaged(self):
        sim, nodes, protocols = build_aodv_chain(2)
        control = Packet(
            src=0, dst=-1, protocol=C.AODV_PROTOCOL, size_bytes=44,
            payload=Rrep(orig=0, dst=1, dst_seq=1, lifetime=10.0),
        )
        protocols[0].on_link_failure(1, control)
        protocols[0].on_link_failure(1, control)
        assert not protocols[0]._pending  # no bogus discovery started
