"""Unit tests for traffic sources (FTP flows and CBR)."""

import pytest

from repro.routing import install_static_routing
from repro.topology import build_chain
from repro.traffic import CbrSink, CbrSource, FtpFlow, start_ftp


def build(hops=2, seed=1):
    net = build_chain(hops, seed=seed)
    install_static_routing(net.nodes, net.channel)
    return net


class TestFtp:
    def test_start_ftp_wires_sender_and_sink(self):
        net = build()
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="newreno")
        net.sim.run(until=5.0)
        assert flow.sink.delivered_packets > 0
        assert flow.variant == "newreno"
        assert flow.goodput_kbps(5.0) > 0

    def test_sack_variant_gets_sack_sink(self):
        net = build()
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="sack")
        assert flow.sink.sack_enabled

    def test_non_sack_variant_gets_plain_sink(self):
        net = build()
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha")
        assert not flow.sink.sack_enabled

    def test_delayed_start(self):
        net = build()
        flow = start_ftp(
            net.sim, net.nodes[0], net.nodes[-1], variant="newreno", start_time=2.0
        )
        net.sim.run(until=1.9)
        assert flow.sink.delivered_packets == 0
        net.sim.run(until=4.0)
        assert flow.sink.delivered_packets > 0

    def test_bounded_transfer_completes(self):
        net = build()
        flow = start_ftp(
            net.sim, net.nodes[0], net.nodes[-1], variant="newreno", max_packets=10
        )
        net.sim.run(until=10.0)
        assert flow.sink.delivered_packets == 10
        assert flow.sender.finished

    def test_unknown_variant_rejected(self):
        net = build()
        with pytest.raises(KeyError):
            start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="cubic")

    def test_goodput_validates_duration(self):
        net = build()
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1])
        with pytest.raises(ValueError):
            flow.goodput_kbps(0.0)


class TestCbr:
    def test_rate_and_packet_count(self):
        net = build()
        sink = CbrSink(net.sim, net.nodes[-1], port=99)
        CbrSource(
            net.sim, net.nodes[0], net.nodes[-1], port=99,
            rate_bps=64_000, packet_bytes=400, start_time=0.0, stop_time=5.0,
        )
        net.sim.run(until=6.0)
        # 64 kb/s for 5 s = 320 kbit = 100 packets of 400 B
        assert sink.received_packets == pytest.approx(100, abs=5)
        assert sink.received_bytes == sink.received_packets * 400

    def test_rate_validation(self):
        net = build()
        with pytest.raises(ValueError):
            CbrSource(net.sim, net.nodes[0], net.nodes[1], port=9, rate_bps=0)
