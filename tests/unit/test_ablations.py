"""Unit tests for the ablation variants (binary feedback, no-marking)."""

import pytest

from repro.core import BinaryFeedbackDrai, DraiParams, TcpMuzhaNoMarking, compute_drai
from repro.net import Node
from repro.phy import Position, WirelessChannel
from repro.sim import Simulator

from .tcp_harness import ack, make_sender

P = DraiParams()


class TestBinaryFeedback:
    def build(self):
        sim = Simulator(seed=1)
        channel = WirelessChannel(sim)
        node = Node(sim, channel, 0, Position(0))
        return BinaryFeedbackDrai(sim, node)

    def test_only_two_levels_published_while_unsaturated(self):
        est = self.build()
        levels = {
            est._compute(q / 2.0, u / 10.0, o / 20.0)
            for q in range(0, 15)  # below queue_hard_hi = 8.0
            for u in range(0, 11)
            for o in range(0, 14)  # below occ_sat_hi = 0.75
        }
        assert levels <= {1, 4}

    def test_saturated_sample_is_clamped_to_hold(self):
        """The family-wide guard: even the one-bit ablation may not push
        acceleration into an instantaneously saturated server/queue."""
        est = self.build()
        # fine-grained level here is 3 -> binary would publish 4, but the
        # MAC server is saturated, so the shared clamp caps it at 3
        assert est._compute(0.5, 0.5, 0.8) <= 3
        levels = {
            est._compute(q, 0.5, 0.9) for q in (0.0, 2.0, 10.0, 20.0)
        }
        assert all(level <= 3 for level in levels)

    def test_congested_maps_to_aggressive_deceleration(self):
        est = self.build()
        assert est._compute(20.0, 0.9, 0.9) == 1

    def test_uncongested_maps_to_acceleration_even_when_holding_would_win(self):
        est = self.build()
        # the fine-grained DRAI would say "stabilize" here
        assert compute_drai(2.0, 0.5, 0.2, P) == 3
        assert est._compute(2.0, 0.5, 0.2) == 4


class TestNoMarking:
    def test_every_triple_dupack_treated_as_congestion(self):
        sim, node, sender = make_sender(TcpMuzhaNoMarking)
        while sender.cwnd < 8:
            ack(sender, sender.snd_nxt, echo_mrai=5)
        una = sender.snd_una
        for _ in range(3):
            ack(sender, una, echo_mrai=5)  # acceleration band = "random"
        # ... but the ablation still halves
        assert sender.muzha.marked_loss_events == 1
        assert sender.muzha.random_loss_events == 0
        assert sender._ff_exit_cwnd == pytest.approx(4.0)

    def test_variant_name(self):
        assert TcpMuzhaNoMarking.variant == "muzha-nomark"
