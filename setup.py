"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs wheel for PEP 660 editable
builds; `python setup.py develop` does not.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
