"""The :class:`FaultInjector`: drives a :class:`~repro.faults.plan.FaultPlan`
through a built network.

The injector schedules one simulator event per fault action (plus the
matching heal/restart action), so faults are ordinary deterministic events
in the run: same seed + same plan ⇒ byte-identical schedule, and the
provenance ``result_digest`` replay check covers chaos runs unchanged.

Every action emits a gated ``fault.*`` trace record (``fault.node_crash``,
``fault.node_restart``, ``fault.link_blackout``, ``fault.link_heal``,
``fault.error_burst``, ``fault.error_restore``, ``fault.queue_spike``,
``fault.queue_restore``, ``fault.partition``, ``fault.partition_heal``), so
trace sinks and the flight recorder can correlate protocol anomalies with
the injected cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Dict, List, Optional

from .plan import FaultEvent, FaultPlan, FaultPlanError, build_error_model

#: Name of the RNG stream used to expand :class:`RandomFaults` specs.
PLAN_STREAM = "faults.plan"


@dataclass
class FaultCounters:
    """How many fault actions actually fired (inspection/testing aid)."""

    crashes: int = 0
    restarts: int = 0
    blackouts: int = 0
    heals: int = 0
    error_bursts: int = 0
    queue_spikes: int = 0
    partitions: int = 0


class FaultInjector:
    """Schedules the actions of one fault plan against one network."""

    def __init__(self, network, plan: FaultPlan) -> None:
        self.network = network
        self.sim = network.sim
        self.plan = plan
        self.counters = FaultCounters()
        #: The concrete events scheduled (scripted + expanded random), in
        #: schedule order — recorded for inspection and tests.
        self.scheduled: List[FaultEvent] = []
        self._installed = False

    # -- wiring -------------------------------------------------------------

    def install(self, horizon: Optional[float] = None) -> "FaultInjector":
        """Expand the plan and schedule every action.  Idempotent-hostile by
        design: installing twice would double-fire, so it raises instead."""
        if self._installed:
            raise RuntimeError("fault plan is already installed")
        self._installed = True
        events = list(self.plan.events)
        if self.plan.random is not None:
            if horizon is None:
                raise FaultPlanError(
                    "random fault specs need a horizon (the run's sim_time)"
                )
            rng = self.sim.stream(PLAN_STREAM)
            events.extend(
                self.plan.random.expand(rng, horizon, self.network.ids)
            )
        events.sort(key=lambda e: (e.time, e.kind, e.node or 0, e.peer or 0))
        self.scheduled = events
        for event in events:
            self._schedule(event)
        return self

    def _schedule(self, event: FaultEvent) -> None:
        actions = {
            "node_crash": self._do_crash,
            "link_blackout": self._do_blackout,
            "error_burst": self._do_error_burst,
            "queue_spike": self._do_queue_spike,
            "partition": self._do_partition,
        }
        self.sim.at(event.time, actions[event.kind], event, name=f"fault.{event.kind}")

    def _emit(self, name: str, **fields: Any) -> None:
        # Gate before building the field dict (sim.trace discipline).
        if self.sim.trace.active and self.sim.trace.wants(name):
            self.sim.emit("faults", name, **fields)

    def _node(self, node_id: int):
        try:
            return self.network.node(node_id)
        except KeyError as exc:
            raise FaultPlanError(
                f"fault plan names node {node_id}, which does not exist"
            ) from exc

    # -- actions ------------------------------------------------------------

    def _do_crash(self, event: FaultEvent) -> None:
        node = self._node(event.node)
        if node.down:
            return  # overlapping crash windows collapse into one outage
        self.counters.crashes += 1
        self._emit("fault.node_crash", node=event.node, duration=event.duration)
        node.crash()
        if event.duration is not None:
            self.sim.after(event.duration, self._do_restart, event,
                           name="fault.node_restart")

    def _do_restart(self, event: FaultEvent) -> None:
        node = self._node(event.node)
        if not node.down:
            return
        self.counters.restarts += 1
        self._emit("fault.node_restart", node=event.node)
        node.restart()

    def _do_blackout(self, event: FaultEvent) -> None:
        channel = self.network.channel
        self.counters.blackouts += 1
        self._emit("fault.link_blackout", a=event.node, b=event.peer,
                   duration=event.duration)
        channel.block_link(event.node, event.peer)
        self.sim.after(event.duration, self._heal_link, event,
                       name="fault.link_heal")

    def _heal_link(self, event: FaultEvent) -> None:
        self.counters.heals += 1
        self._emit("fault.link_heal", a=event.node, b=event.peer)
        self.network.channel.unblock_link(event.node, event.peer)

    def _do_error_burst(self, event: FaultEvent) -> None:
        channel = self.network.channel
        self.counters.error_bursts += 1
        self._emit("fault.error_burst", model=dict(event.model),
                   duration=event.duration)
        saved = channel.error_model
        channel.error_model = build_error_model(event.model)
        self.sim.after(event.duration, self._restore_error_model, saved,
                       name="fault.error_restore")

    def _restore_error_model(self, saved) -> None:
        self._emit("fault.error_restore")
        self.network.channel.error_model = saved

    def _do_queue_spike(self, event: FaultEvent) -> None:
        node = self._node(event.node)
        self.counters.queue_spikes += 1
        self._emit("fault.queue_spike", node=event.node,
                   capacity=event.capacity, duration=event.duration)
        saved = node.ifq.capacity
        node.ifq.capacity = min(saved, event.capacity)
        self.sim.after(event.duration, self._restore_queue, node, saved,
                       name="fault.queue_restore")

    def _restore_queue(self, node, saved: int) -> None:
        self._emit("fault.queue_restore", node=node.node_id, capacity=saved)
        node.ifq.capacity = saved

    def _do_partition(self, event: FaultEvent) -> None:
        channel = self.network.channel
        self.counters.partitions += 1
        self._emit("fault.partition",
                   groups=[list(g) for g in event.groups],
                   duration=event.duration)
        pairs = self._cross_pairs(event.groups)
        for a, b in pairs:
            channel.block_link(a, b)
        self.sim.after(event.duration, self._heal_partition, event, pairs,
                       name="fault.partition_heal")

    def _heal_partition(self, event: FaultEvent, pairs) -> None:
        self._emit("fault.partition_heal",
                   groups=[list(g) for g in event.groups])
        for a, b in pairs:
            self.network.channel.unblock_link(a, b)

    @staticmethod
    def _cross_pairs(groups) -> List[tuple]:
        pairs: List[tuple] = []
        for g1, g2 in combinations(groups, 2):
            for a in g1:
                for b in g2:
                    pairs.append((a, b))
        return pairs


def install_faults(network, plan: Optional[FaultPlan],
                   horizon: Optional[float] = None) -> Optional[FaultInjector]:
    """Runner-facing helper: install ``plan`` if there is one."""
    if plan is None or not plan:
        return None
    return FaultInjector(network, plan).install(horizon=horizon)
