"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a picklable, JSON-round-trippable value object — the
same contract :class:`~repro.experiments.runner.RunSpec` obeys — so fault
scenarios participate in campaign cache keys, provenance manifests and the
byte-identity replay check for free.  A plan is either fully *scripted*
(an explicit list of :class:`FaultEvent`) or *seeded-random*: a
:class:`RandomFaults` spec that the injector expands into concrete events
through a dedicated ``faults.plan`` RNG stream, so identical master seeds
always yield the identical fault schedule.

Supported fault kinds:

``node_crash``
    The node powers off at ``time``: radio down, MAC timers cancelled, IFQ
    flushed, routing state wiped.  ``duration`` (if given) schedules a
    restart; omitted means the node stays dead.
``link_blackout``
    The ``node``–``peer`` pair stops hearing each other for ``duration``
    seconds (a per-pair channel veto: deep fade / obstruction).
``error_burst``
    The channel's error model is swapped for ``duration`` seconds — e.g. a
    Gilbert–Elliott bad-state burst mid-run — then restored.
``queue_spike``
    ``node``'s IFQ capacity is clamped to ``capacity`` for ``duration``
    seconds, forcing queue pressure without extra traffic.
``partition``
    Every link between different ``groups`` is vetoed for ``duration``
    seconds, then healed (nodes absent from all groups are unaffected).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..phy.error_models import (
    ErrorModel,
    GilbertElliott,
    NoError,
    PacketErrorRate,
    UniformBitError,
)

PathLike = Union[str, Path]

FAULT_KINDS = (
    "node_crash",
    "link_blackout",
    "error_burst",
    "queue_spike",
    "partition",
)


class FaultPlanError(ValueError):
    """A fault plan is malformed (unknown kind, missing field, bad JSON)."""


def build_error_model(spec: Dict[str, Any]) -> ErrorModel:
    """Construct an :class:`ErrorModel` from a plain-data ``error_burst`` spec.

    ``{"kind": "per", "per": 0.3}``, ``{"kind": "ber", "ber": 1e-5}``,
    ``{"kind": "gilbert_elliott", ...GilbertElliott kwargs}`` or
    ``{"kind": "none"}``.
    """
    params = {k: v for k, v in spec.items() if k != "kind"}
    kind = spec.get("kind")
    try:
        if kind == "per":
            return PacketErrorRate(**params)
        if kind == "ber":
            return UniformBitError(**params)
        if kind == "gilbert_elliott":
            return GilbertElliott(**params)
        if kind == "none":
            return NoError(**params)
    except (TypeError, ValueError) as exc:
        raise FaultPlanError(f"bad error-model spec {spec!r}: {exc}") from exc
    raise FaultPlanError(f"unknown error-model kind {kind!r} in {spec!r}")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  Field relevance depends on ``kind`` (see module
    docstring); irrelevant fields must stay ``None`` so plans hash stably."""

    time: float
    kind: str
    node: Optional[int] = None
    peer: Optional[int] = None
    duration: Optional[float] = None
    capacity: Optional[int] = None
    model: Optional[Dict[str, Any]] = None
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise FaultPlanError(
                f"fault duration must be positive, got {self.duration}"
            )
        kind = self.kind
        if kind == "node_crash" and self.node is None:
            raise FaultPlanError("node_crash needs a node")
        if kind == "link_blackout":
            if self.node is None or self.peer is None or self.duration is None:
                raise FaultPlanError("link_blackout needs node, peer and duration")
            if self.node == self.peer:
                raise FaultPlanError("link_blackout endpoints must differ")
        if kind == "error_burst":
            if self.model is None or self.duration is None:
                raise FaultPlanError("error_burst needs a model spec and duration")
            build_error_model(self.model)  # validate eagerly
        if kind == "queue_spike":
            if self.node is None or self.capacity is None or self.duration is None:
                raise FaultPlanError("queue_spike needs node, capacity and duration")
            if self.capacity < 1:
                raise FaultPlanError(
                    f"queue_spike capacity must be >= 1, got {self.capacity}"
                )
        if kind == "partition":
            if self.groups is None or self.duration is None:
                raise FaultPlanError("partition needs groups and duration")
            if len(self.groups) < 2:
                raise FaultPlanError("partition needs at least two groups")
            object.__setattr__(
                self, "groups", tuple(tuple(g) for g in self.groups)
            )
            seen: set = set()
            for group in self.groups:
                for node_id in group:
                    if node_id in seen:
                        raise FaultPlanError(
                            f"node {node_id} appears in two partition groups"
                        )
                    seen.add(node_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-data form; ``None`` fields are omitted so the
        serialization (and therefore every digest over it) is minimal."""
        payload: Dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.node is not None:
            payload["node"] = self.node
        if self.peer is not None:
            payload["peer"] = self.peer
        if self.duration is not None:
            payload["duration"] = self.duration
        if self.capacity is not None:
            payload["capacity"] = self.capacity
        if self.model is not None:
            payload["model"] = dict(self.model)
        if self.groups is not None:
            payload["groups"] = [list(g) for g in self.groups]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        data = dict(payload)
        groups = data.get("groups")
        if groups is not None:
            data["groups"] = tuple(tuple(g) for g in groups)
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultPlanError(f"bad fault event {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class RandomFaults:
    """Seeded-random fault load, expanded deterministically at install time.

    ``crashes`` node-crash events (each down for ``crash_downtime`` seconds)
    and ``blackouts`` link-blackout events (each ``blackout_duration`` long)
    are drawn uniformly over ``[start, horizon]`` against the eligible
    ``nodes`` (default: every node except the first and last, i.e. the
    relays of a chain).  Expansion uses a dedicated RNG stream derived from
    the run's master seed, so the schedule is a pure function of the seed —
    two replications differ, two runs of one replication do not.
    """

    crashes: int = 0
    blackouts: int = 0
    crash_downtime: float = 2.0
    blackout_duration: float = 1.0
    start: float = 1.0
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.crashes < 0 or self.blackouts < 0:
            raise FaultPlanError("fault counts must be non-negative")
        if self.crash_downtime <= 0 or self.blackout_duration <= 0:
            raise FaultPlanError("fault durations must be positive")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "crashes": self.crashes,
            "blackouts": self.blackouts,
            "crash_downtime": self.crash_downtime,
            "blackout_duration": self.blackout_duration,
            "start": self.start,
        }
        if self.nodes is not None:
            payload["nodes"] = list(self.nodes)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RandomFaults":
        data = dict(payload)
        if data.get("nodes") is not None:
            data["nodes"] = tuple(data["nodes"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultPlanError(f"bad random-faults spec {payload!r}: {exc}") from exc

    def expand(
        self,
        rng: random.Random,
        horizon: float,
        node_ids: Sequence[int],
    ) -> List[FaultEvent]:
        """Draw the concrete events this spec describes.

        Draw order is fixed (crash times, then per-crash nodes, then
        blackout times/pairs) so the expansion is reproducible for a given
        ``rng`` state.
        """
        eligible = list(self.nodes) if self.nodes is not None else list(node_ids[1:-1])
        if (self.crashes and not eligible) or (self.blackouts and len(node_ids) < 2):
            raise FaultPlanError("not enough nodes for the requested random faults")
        end = max(horizon, self.start)
        events: List[FaultEvent] = []
        for _ in range(self.crashes):
            at = rng.uniform(self.start, end)
            victim = eligible[rng.randrange(len(eligible))]
            events.append(
                FaultEvent(time=at, kind="node_crash", node=victim,
                           duration=self.crash_downtime)
            )
        all_ids = list(node_ids)
        for _ in range(self.blackouts):
            at = rng.uniform(self.start, end)
            a = all_ids[rng.randrange(len(all_ids))]
            b = a
            while b == a:
                b = all_ids[rng.randrange(len(all_ids))]
            events.append(
                FaultEvent(time=at, kind="link_blackout", node=a, peer=b,
                           duration=self.blackout_duration)
            )
        events.sort(key=lambda e: (e.time, e.kind, e.node or 0, e.peer or 0))
        return events


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule: scripted events plus optional random load."""

    events: Tuple[FaultEvent, ...] = ()
    random: Optional[RandomFaults] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events) or self.random is not None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "events": [event.to_dict() for event in self.events]
        }
        if self.random is not None:
            payload["random"] = self.random.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be an object, got {payload!r}")
        unknown = set(payload) - {"events", "random"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys {sorted(unknown)}")
        events = tuple(
            FaultEvent.from_dict(item) for item in payload.get("events", ())
        )
        spec = payload.get("random")
        rand = RandomFaults.from_dict(spec) if spec is not None else None
        return cls(events=events, random=rand)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        return cls.loads(Path(path).read_text(encoding="utf-8"))

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path
