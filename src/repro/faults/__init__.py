"""Deterministic fault injection: crashes, blackouts, bursts, partitions.

The paper's claim — router advice lets TCP react correctly to losses that
are *not* congestion — is only testable under adversarial conditions:
wireless corruption bursts, link breaks, node churn.  This package scripts
exactly those conditions as first-class, reproducible experiment inputs:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`/:class:`FaultEvent`/
  :class:`RandomFaults`: declarative, JSON-round-trippable fault schedules
  that hash into campaign cache keys and provenance manifests;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`: turns a plan into
  ordinary simulator events (crash/restart, veto/heal, swap/restore), with
  gated ``fault.*`` trace emits.

Determinism contract: a faulted run is still a pure function of
``(config, seed)`` — random fault expansion draws from the dedicated
``faults.plan`` RNG stream, and every action is a scheduled event, so
``verify_manifest`` holds for chaos runs exactly as for clean ones.
"""

from .injector import FaultCounters, FaultInjector, PLAN_STREAM, install_faults
from .plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    RandomFaults,
    build_error_model,
)

__all__ = [
    "FAULT_KINDS",
    "FaultCounters",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "PLAN_STREAM",
    "RandomFaults",
    "build_error_model",
    "install_faults",
]
