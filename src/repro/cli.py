"""Command-line interface: ``repro-muzha``.

Subcommands mirror the paper's three simulations plus the parameter tables:

* ``repro-muzha chain --hops 8 --variant muzha`` — single-flow chain run;
* ``repro-muzha sweep --window 8`` — Figs 5.8–5.13 series;
* ``repro-muzha cross --a newreno --b muzha`` — Simulation 3A coexistence;
* ``repro-muzha dynamics --variant muzha`` — Simulation 3B staggered flows;
* ``repro-muzha campaign --jobs 4`` — parallel cached scenario campaigns
  (``--spans out.ndjson`` streams live campaign telemetry; ``--journal
  run.journal`` write-ahead-journals every unit so an interrupted campaign
  — Ctrl-C / SIGTERM exits with code 3 — resumes with ``--resume
  run.journal``, executing only the remainder; ``--pool-mode cluster
  --listen HOST:PORT`` runs the coordinator over TCP so worker agents can
  join from other hosts);
* ``repro-muzha worker --connect HOST:PORT`` — a cluster worker agent:
  dials a campaign coordinator, pulls unit batches, streams results back
  (``--cache`` points it at a shared result store; otherwise it uses the
  one the coordinator offers);
* ``repro-muzha report out.ndjson`` — aggregate a campaign span log into a
  human-readable summary (throughput, worker utilization, cache hit ratio,
  retries/quarantine, slowest units);
* ``repro-muzha doctor --cache results/cache --journal run.journal`` —
  fsck campaign artifacts (orphaned tmp files, corrupt cache envelopes,
  journal damage/drift, unclosed span logs); ``--repair`` fixes what it
  safely can;
* ``repro-muzha trace chain --out run.ndjson`` — traced run: NDJSON/CSV
  event trace + provenance manifest (+ optional flight-recorder dumps);
* ``repro-muzha stats chain`` — metrics snapshot of a run (rollup tables
  or the full JSON document);
* ``repro-muzha profile chain`` — cProfile a scenario's simulator hot spots;
* ``repro-muzha tables`` — Tables 5.1/5.2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .core.drai import DRAI_TABLE, apply_drai
from .experiments import (
    CLUSTER_REGISTRY_DIRNAME,
    PAPER_VARIANTS,
    CampaignCache,
    CampaignJournal,
    GracefulShutdown,
    JournalError,
    JournalPlanMismatch,
    POOL_MODES,
    RetryPolicy,
    ScenarioConfig,
    SweepConfig,
    Table51Parameters,
    TcpTransport,
    ascii_series,
    chain_grid,
    export_campaign_csv,
    fig_coexistence,
    fig_dynamics,
    format_coexistence,
    format_sweep,
    format_table,
    make_store,
    parse_endpoint,
    replay_journal,
    run_campaign,
    run_chain,
    run_cross,
    run_doctor,
    run_worker_agent,
    throughput_retransmit_sweep,
)
from .faults import FaultPlan, FaultPlanError
from .obs import (
    CampaignTelemetry,
    CsvTraceSink,
    FlightRecorder,
    NdjsonTraceSink,
    SpanWriter,
    attach_run_probe,
    render_report,
)
from .phy.batch import LANES
from .stats import jain_index, resample


def _positive_int(text: str) -> int:
    """argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a finite number strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text}"
        )
    return value


def _nonneg_float(text: str) -> float:
    """argparse type: a finite number greater than or equal to zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value >= 0:  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"must be zero or positive, got {text}"
        )
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer greater than or equal to zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be zero or positive, got {value}"
        )
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    parser.add_argument("--time", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--window", type=int, default=8, help="advertised window")
    parser.add_argument(
        "--routing", choices=("aodv", "static"), default="aodv", help="routing protocol"
    )
    parser.add_argument(
        "--phy-lane", choices=LANES, default="auto", dest="phy_lane",
        help="PHY fan-out execution lane: 'auto' picks the vectorized batch "
             "lane when numpy is importable (scalar otherwise); lanes are "
             "byte-identical — this trades speed, never results",
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="fault-injection plan (crashes/blackouts/...) to run under",
    )


def _add_policy(parser: argparse.ArgumentParser) -> None:
    from .core import known_policies

    parser.add_argument(
        "--policy", choices=known_policies(), default=None,
        help="router-advice policy for Muzha runs (default: the paper's "
             "fuzzy quantiser)",
    )
    parser.add_argument(
        "--policy-params", default=None, metavar="JSON",
        help="JSON object of parameters for --policy, e.g. "
             "'{\"sustain_up\": 3}'",
    )


def _load_policy(args: argparse.Namespace):
    """(policy, policy_params) from the CLI flags, validated."""
    policy = getattr(args, "policy", None)
    raw = getattr(args, "policy_params", None)
    if raw is None:
        return policy, None
    if policy is None:
        raise SystemExit("--policy-params requires --policy")
    try:
        params = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"bad --policy-params JSON: {exc}")
    try:
        from .core import make_policy

        make_policy(policy, params=params)  # validate field names early
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad --policy-params for {policy!r}: {exc}")
    return policy, params


def _load_faults(args: argparse.Namespace):
    """The parsed FaultPlan named by ``--faults``, or None."""
    path = getattr(args, "faults", None)
    if path is None:
        return None
    try:
        return FaultPlan.load(path)
    except FileNotFoundError:
        raise SystemExit(f"fault plan not found: {path}")
    except FaultPlanError as exc:
        raise SystemExit(f"bad fault plan {path}: {exc}")


def _cmd_chain(args: argparse.Namespace) -> int:
    policy, policy_params = _load_policy(args)
    config = ScenarioConfig(
        sim_time=args.time, seed=args.seed, window=args.window, routing=args.routing,
        packet_error_rate=args.loss, faults=_load_faults(args),
        policy=policy, policy_params=policy_params, phy_lane=args.phy_lane,
    )
    result = run_chain(args.hops, [args.variant], config=config)
    flow = result.flows[0]
    print(f"{args.variant} over a {args.hops}-hop chain ({args.time:g}s):")
    print(f"  goodput        : {flow.goodput_kbps:8.1f} kbps")
    print(f"  delivered      : {flow.delivered_packets} packets")
    print(f"  retransmissions: {flow.retransmits}")
    print(f"  timeouts       : {flow.timeouts}")
    if args.trace:
        grid = resample(flow.cwnd_trace, 0.0, args.time, args.time / 64)
        print(ascii_series(grid, label="cwnd"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep_config = SweepConfig(
        hops=tuple(args.hops), seeds=tuple(range(1, args.seeds + 1)), sim_time=args.time
    )
    sweep = throughput_retransmit_sweep(args.window, sweep=sweep_config)
    print(format_sweep(sweep, metric="goodput"))
    print()
    print(format_sweep(sweep, metric="retransmits"))
    return 0


def _cmd_cross(args: argparse.Namespace) -> int:
    points = fig_coexistence(
        args.a,
        args.b,
        hops_list=tuple(args.hops),
        sim_time=args.time,
        seeds=tuple(range(1, args.seeds + 1)),
        window=args.window,
    )
    print(format_coexistence(points, args.a, args.b))
    return 0


def _cmd_dynamics(args: argparse.Namespace) -> int:
    result = fig_dynamics(
        args.variant,
        hops=args.hops,
        starts=(0.0, 10.0, 20.0),
        sim_time=args.time,
        seed=args.seed,
        window=args.window,
    )
    for i, flow in enumerate(result.flows):
        print(ascii_series(flow.rate_series_kbps, label=f"flow {i} (kbps)"))
        print()
    tails = [
        [rate for t, rate in flow.rate_series_kbps if t >= args.time - 10.0]
        for flow in result.flows
    ]
    shares = [sum(r) / len(r) if r else 0.0 for r in tails]
    print(f"final shares: {[round(s, 1) for s in shares]} kbps; "
          f"Jain index {jain_index(shares):.3f}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        # A directory path gives the on-disk store; an http(s):// URL a
        # shared remote store (e.g. another host's CacheServer).
        cache = make_store(args.cache_dir)
        if args.clear_cache:
            removed = cache.clear()
            print(f"cache cleared: {removed} entries removed")
    if args.pool_mode != "cluster" and (
        args.listen is not None or args.agents is not None
    ):
        raise SystemExit(
            "--listen/--agents configure the TCP transport: they require "
            "--pool-mode cluster"
        )
    transport = None
    cli_owns_transport = False
    if args.pool_mode == "cluster":
        listen = ("127.0.0.1", 0)
        if args.listen is not None:
            try:
                listen = parse_endpoint(args.listen)
            except ValueError as exc:
                raise SystemExit(f"bad --listen: {exc}")
        registry = None
        cache_spec = None
        if cache is not None:
            cache_spec = cache.describe()
            if isinstance(cache, CampaignCache):
                registry = cache.root / CLUSTER_REGISTRY_DIRNAME
        transport = TcpTransport(
            listen=listen,
            spawn_agents=args.agents != 0,
            cache_spec=cache_spec,
            registry=registry,
        )
        # Open before the campaign so the endpoint is printed while
        # external agents still have time to connect (they join late and
        # steal work, so nothing is lost by starting without them).
        cli_owns_transport = transport.open()
        if args.agents == 0:
            print(f"cluster: listening on {transport.endpoint}; waiting "
                  "for external `repro-muzha worker` agents")
        else:
            print(f"cluster: listening on {transport.endpoint}")
    resume = None
    journal_path = args.journal
    if args.resume:
        if args.no_cache:
            raise SystemExit(
                "--resume requires the cache (drop --no-cache): journaled "
                "completions are verified against — and read back from — "
                "the content-addressed cache"
            )
        try:
            resume = replay_journal(args.resume)
        except JournalError as exc:
            raise SystemExit(f"cannot resume: {exc}")
        journal_path = args.journal or args.resume
        print(
            f"resuming {args.resume}: {len(resume.completed)} journaled "
            f"completions, {len(resume.failed)} quarantined, "
            f"{resume.remaining} units remaining"
        )
    journal = None
    if journal_path:
        try:
            journal = CampaignJournal(journal_path, resume=resume is not None)
        except JournalError as exc:
            raise SystemExit(str(exc))
    policy, policy_params = _load_policy(args)
    config = ScenarioConfig(
        sim_time=args.time, routing=args.routing, window=args.window,
        packet_error_rate=args.loss, faults=_load_faults(args),
        policy=policy, policy_params=policy_params, phy_lane=args.phy_lane,
    )
    grid = chain_grid(args.variants, args.hops, config=config)
    total_runs = len(grid) * args.replications
    jobs = args.workers if args.workers is not None else args.jobs
    if args.pool_mode == "cluster" and args.agents:
        jobs = args.agents  # agents to keep at strength = the pool size

    def report(record, done, total):
        run = record.run
        flag = "cache" if record.cached else "ran  "
        print(
            f"[{done:3d}/{total}] {flag} {run.spec.kind} h={run.spec.hops:<2d} "
            f"{'+'.join(run.spec.variants):<10s} rep{run.replication} "
            f"{record.result.total_goodput_kbps:8.1f} kbps",
            flush=True,
        )

    print(
        f"campaign: {len(grid)} scenarios x {args.replications} replications "
        f"= {total_runs} runs, pool={args.pool_mode} workers={jobs}, "
        f"cache={'off' if cache is None else args.cache_dir}"
    )
    started = time.time()
    policy = RetryPolicy(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        backoff=args.retry_backoff,
    )
    telemetry = None
    span_writer = None
    if args.spans:
        span_writer = SpanWriter(args.spans)
        telemetry = CampaignTelemetry(
            span_writer, heartbeat_interval=args.heartbeat_interval
        )
    shutdown = GracefulShutdown(drain_timeout=args.drain_timeout)
    try:
        with shutdown:
            result = run_campaign(
                grid,
                replications=args.replications,
                base_seed=args.seed,
                jobs=jobs,
                cache=cache,
                progress=report if not args.quiet else None,
                policy=policy,
                pool_mode=args.pool_mode,
                telemetry=telemetry,
                journal=journal,
                resume=resume,
                shutdown=shutdown,
                transport=transport,
            )
    except JournalPlanMismatch as exc:
        raise SystemExit(f"cannot resume: {exc}")
    finally:
        if cli_owns_transport:
            transport.close()
        if journal is not None:
            journal.close()
        if span_writer is not None:
            span_writer.close()
    elapsed = time.time() - started

    rows = []
    for spec in grid:
        records = [r for r in result.records
                   if r.run.spec.with_seed(0) == spec.with_seed(0)]
        goodputs = [r.result.total_goodput_kbps for r in records]
        if goodputs:
            rows.append(
                [spec.hops, "+".join(spec.variants),
                 f"{sum(goodputs) / len(goodputs):8.1f}", len(goodputs)]
            )
        else:  # every replication of this scenario was quarantined
            rows.append([spec.hops, "+".join(spec.variants), "   (failed)", 0])
    print()
    print(format_table(["hops", "variants", "goodput (kbps)", "runs"], rows,
                       title="campaign means"))
    print(
        f"\n{result.executed} simulated, {result.cache_hits} cache hits, "
        f"{len(result.failed)} failed, {result.cache_evictions} cache "
        f"evictions, {elapsed:.1f}s wall"
    )
    if not result.interrupted:
        print(f"campaign fingerprint: {result.fingerprint()}")
    if span_writer is not None:
        print(f"{span_writer.records_written} telemetry records written to "
              f"{args.spans} (summarise with `repro-muzha report "
              f"{args.spans}`)")
    if result.failed:
        print("\nquarantined runs (campaign results above are PARTIAL):")
        for failure in result.failed:
            run = failure.run
            print(
                f"  #{run.index} {run.spec.kind} h={run.spec.hops} "
                f"{'+'.join(run.spec.variants)} rep{run.replication} "
                f"seed={run.seed}: {failure.error} "
                f"({failure.attempts} attempts)"
            )
    if args.csv:
        path = export_campaign_csv(result, args.csv)
        print(f"per-run metrics written to {path}")
    if result.interrupted:
        print(
            f"\ninterrupted by {shutdown.signal_name or 'signal'}: "
            f"{len(result.records)} of {result.planned} units done, "
            f"{result.remaining} remaining"
        )
        if journal_path:
            print(f"resumable: re-run with --resume {journal_path}")
        else:
            print("not resumable: the campaign ran without --journal")
        return 3
    return 0 if result.complete else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    try:
        parse_endpoint(args.connect)
    except ValueError as exc:
        raise SystemExit(f"bad --connect: {exc}")
    return run_worker_agent(args.connect, cache=args.cache, retry=args.retry)


def _run_scenario(args: argparse.Namespace, instrument=None):
    """Run the ``trace``/``stats`` scenario shape with an optional hook."""
    policy, policy_params = _load_policy(args)
    config = ScenarioConfig(
        sim_time=args.time, seed=args.seed, window=args.window,
        routing=args.routing, faults=_load_faults(args),
        policy=policy, policy_params=policy_params, phy_lane=args.phy_lane,
    )
    if args.scenario == "chain":
        return run_chain(args.hops, [args.variant], config=config,
                         instrument=instrument)
    return run_cross(args.hops, args.variant, args.b, config=config,
                     instrument=instrument)


def _cmd_trace(args: argparse.Namespace) -> int:
    sink_cls = CsvTraceSink if args.format == "csv" else NdjsonTraceSink
    events = tuple(args.events) if args.events else ("*",)
    sink = sink_cls(args.out, events=events)
    flight_holder = []

    def instrument(network, flows):
        sink.attach(network.sim.trace)
        if args.flight_dir:
            flight_holder.append(
                FlightRecorder(network.sim.trace, dump_dir=args.flight_dir)
            )
        if args.probe_interval > 0:
            attach_run_probe(network, flows, interval=args.probe_interval)

    with sink:
        result = _run_scenario(args, instrument)
    for recorder in flight_holder:
        recorder.detach()

    manifest_path = f"{args.out}.manifest.json"
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(result.manifest, handle, sort_keys=True, indent=2)
        handle.write("\n")

    print(f"{sink.records_written} trace records written to {args.out}")
    for event in sorted(sink.counts):
        print(f"  {event:<18s} {sink.counts[event]}")
    print(f"manifest written to {manifest_path}")
    if flight_holder:
        dumps = flight_holder[0].dumps
        print(f"{len(dumps)} anomaly dump(s) in {args.flight_dir}")
        for dump in dumps:
            print(f"  {dump.rule} node {dump.node} at t={dump.time:.3f}s "
                  f"({dump.records} records) -> {dump.path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    result = _run_scenario(args)
    snapshot = result.metrics
    if args.json:
        json.dump(snapshot, sys.stdout, sort_keys=True, indent=2)
        sys.stdout.write("\n")
        return 0
    rollups = snapshot["rollups"]
    rows = [[name, value] for name, value in rollups["global"].items()]
    print(format_table(["metric", "total"], rows, title="global counters"))
    names = sorted({n for by in rollups["per_node"].values() for n in by})
    if args.per_node and names:
        print()
        header = ["node"] + names
        node_rows = [
            [node] + [by.get(name, 0) for name in names]
            for node, by in rollups["per_node"].items()
        ]
        print(format_table(header, node_rows, title="per-node counters"))
    print()
    print(f"total goodput: {result.total_goodput_kbps:.1f} kbps; "
          f"manifest config digest {result.manifest['config_digest'][:12]}…")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    config = ScenarioConfig(
        sim_time=args.time, seed=args.seed, window=args.window, routing=args.routing,
        phy_lane=args.phy_lane,
    )

    def chain_scenario():
        return run_chain(args.hops, [args.variant], config=config)

    def cross_scenario():
        return fig_coexistence(
            "newreno", args.variant, hops_list=(args.hops,), sim_time=args.time,
            seeds=(args.seed,), window=args.window,
        )

    def dynamics_scenario():
        return fig_dynamics(
            args.variant, hops=args.hops, starts=(0.0, 10.0, 20.0),
            sim_time=args.time, seed=args.seed, window=args.window,
        )

    scenarios = {
        "chain": chain_scenario, "cross": cross_scenario, "dynamics": dynamics_scenario,
    }
    profiler = cProfile.Profile()
    profiler.enable()
    scenarios[args.scenario]()
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"profile data written to {args.out} "
              f"(inspect with `python -m pstats {args.out}`)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import SpanLogError

    try:
        print(render_report(args.spanlog, as_json=args.json,
                            buckets=args.buckets, top_k=args.top))
    except FileNotFoundError:
        raise SystemExit(f"span log not found: {args.spanlog}")
    except SpanLogError as exc:
        raise SystemExit(f"bad span log {args.spanlog}: {exc}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from .experiments.doctor import format_report as format_doctor_report

    if not (args.cache or args.journal or args.spans):
        raise SystemExit(
            "nothing to check: pass --cache, --journal and/or --spans"
        )
    checkup = run_doctor(
        cache=args.cache, journal=args.journal, spans=args.spans,
        repair=args.repair,
    )
    if args.json:
        json.dump(checkup.to_dict(), sys.stdout, sort_keys=True, indent=2)
        sys.stdout.write("\n")
    else:
        print(format_doctor_report(checkup))
    return 0 if checkup.healthy else 1


def _cmd_tables(args: argparse.Namespace) -> int:
    print(format_table(["Parameter", "Range"], Table51Parameters().rows(),
                       title="Table 5.1 — Simulation parameters"))
    print()
    rows = [
        (level, f"cwnd 8 -> {apply_drai(8.0, level):g}")
        for level in sorted(DRAI_TABLE, reverse=True)
    ]
    print(format_table(["DRAI", "effect"], rows, title="Table 5.2 — DRAI formula"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-muzha",
        description="TCP Muzha reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chain = sub.add_parser("chain", help="single flow over an h-hop chain")
    _add_common(chain)
    chain.add_argument("--hops", type=int, default=4)
    chain.add_argument("--variant", choices=sorted(PAPER_VARIANTS) + ["tahoe", "reno"],
                       default="muzha")
    chain.add_argument("--loss", type=float, default=0.0,
                       help="per-frame random loss probability")
    chain.add_argument("--trace", action="store_true", help="print the cwnd trace")
    _add_faults(chain)
    _add_policy(chain)
    chain.set_defaults(func=_cmd_chain)

    sweep = sub.add_parser("sweep", help="Figs 5.8-5.13 hop sweep")
    _add_common(sweep)
    sweep.add_argument("--hops", type=int, nargs="+", default=[4, 8, 16])
    sweep.add_argument("--seeds", type=int, default=3)
    sweep.set_defaults(func=_cmd_sweep)

    cross = sub.add_parser("cross", help="Simulation 3A coexistence on a cross")
    _add_common(cross)
    cross.add_argument("--a", default="newreno", help="horizontal flow variant")
    cross.add_argument("--b", default="muzha", help="vertical flow variant")
    cross.add_argument("--hops", type=int, nargs="+", default=[4])
    cross.add_argument("--seeds", type=int, default=3)
    cross.set_defaults(func=_cmd_cross)

    dynamics = sub.add_parser("dynamics", help="Simulation 3B staggered flows")
    _add_common(dynamics)
    dynamics.add_argument("--variant", default="muzha")
    dynamics.add_argument("--hops", type=int, default=4)
    dynamics.set_defaults(func=_cmd_dynamics)

    campaign = sub.add_parser(
        "campaign", help="parallel cached batch of chain scenarios"
    )
    _add_common(campaign)
    campaign.add_argument("--hops", type=int, nargs="+", default=[4, 8, 16],
                          help="chain lengths in the grid")
    campaign.add_argument("--variants", nargs="+", default=list(PAPER_VARIANTS),
                          help="TCP variants in the grid")
    campaign.add_argument("--replications", type=int, default=3,
                          help="independent replications per scenario")
    campaign.add_argument("--loss", type=float, default=0.0,
                          help="per-frame random loss probability")
    campaign.add_argument("--pool-mode", choices=list(POOL_MODES), default="warm",
                          help="execution backend: 'warm' (default) keeps a "
                               "persistent pool of workers and streams batches "
                               "to them; 'per-attempt' forks a fresh process "
                               "per unit attempt (slower, but maximum isolation "
                               "— prefer it when a unit corrupts interpreter "
                               "state, e.g. leaks globals or C-level state, and "
                               "a warm worker must not carry that into the next "
                               "unit); 'inproc' runs everything in this process "
                               "(no isolation, no timeouts; best for debugging); "
                               "'cluster' runs the pool over a TCP transport so "
                               "worker agents — self-spawned locally or started "
                               "on other hosts with `repro-muzha worker` — can "
                               "join the campaign (see --listen/--agents)")
    campaign.add_argument("--workers", type=_positive_int, default=None,
                          metavar="N",
                          help="worker pool size (preferred spelling; "
                               "overrides --jobs when given)")
    campaign.add_argument("--jobs", type=_positive_int,
                          default=os.cpu_count(),
                          help="worker processes (1 = in-process serial)")
    campaign.add_argument("--listen", default=None, metavar="HOST:PORT",
                          help="cluster only: TCP address the coordinator "
                               "listens on (default 127.0.0.1 with an "
                               "OS-assigned port, printed at startup); bind "
                               "a routable address to accept agents from "
                               "other hosts")
    campaign.add_argument("--agents", type=_nonneg_int, default=None,
                          metavar="N",
                          help="cluster only: local worker agents to "
                               "self-spawn and keep at strength (default: "
                               "the worker pool size); 0 disables "
                               "self-spawning — the campaign then runs "
                               "entirely on external agents that dial "
                               "--listen")
    campaign.add_argument("--cache-dir", default="results/cache",
                          help="result cache: an on-disk directory, or an "
                               "http(s):// URL of a shared remote store")
    campaign.add_argument("--no-cache", action="store_true",
                          help="always simulate; do not read or write the cache")
    campaign.add_argument("--clear-cache", action="store_true",
                          help="drop every cached result before running")
    campaign.add_argument("--csv", default=None, metavar="PATH",
                          help="also write per-run metrics to a CSV file")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress per-run progress lines")
    campaign.add_argument("--task-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock watchdog per run attempt "
                               "(default: no timeout)")
    campaign.add_argument("--max-retries", type=int, default=2,
                          help="retries before a crashed/hung run is "
                               "quarantined")
    campaign.add_argument("--retry-backoff", type=float, default=0.25,
                          metavar="SECONDS",
                          help="base delay before a retry (doubles per "
                               "attempt)")
    campaign.add_argument("--spans", default=None, metavar="PATH",
                          help="stream campaign telemetry (spans, worker "
                               "heartbeats, cache/retry events, progress) as "
                               "NDJSON to PATH — or to an inherited pipe via "
                               "'fd:N'; summarise with `repro-muzha report`")
    campaign.add_argument("--heartbeat-interval", type=_positive_float,
                          default=1.0, metavar="SECONDS",
                          help="worker heartbeat period in the span stream")
    campaign.add_argument("--journal", default=None, metavar="PATH",
                          help="write-ahead journal: the plan is recorded "
                               "before dispatch and every completion after "
                               "it, so an interrupted campaign (exit code 3) "
                               "can be resumed with --resume PATH")
    campaign.add_argument("--resume", default=None, metavar="JOURNAL",
                          help="resume an interrupted campaign from its "
                               "journal: completed units are re-verified "
                               "against the cache and only the remainder "
                               "executes; grid, replications and --seed "
                               "must match the original run")
    campaign.add_argument("--drain-timeout", type=_nonneg_float, default=10.0,
                          metavar="SECONDS",
                          help="on SIGINT/SIGTERM, wait this long for "
                               "in-flight units before terminating workers "
                               "(a second signal aborts the drain "
                               "immediately)")
    _add_faults(campaign)
    _add_policy(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    worker = sub.add_parser(
        "worker",
        help="cluster worker agent: execute campaign units for a "
             "coordinator reachable over TCP",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator endpoint (what `campaign "
                             "--pool-mode cluster` printed, or the "
                             "--listen address it was given)")
    worker.add_argument("--retry", type=_nonneg_float, default=10.0,
                        metavar="SECONDS",
                        help="keep retrying the connection this long "
                             "before giving up (agents may be started "
                             "before the coordinator)")
    worker.add_argument("--cache", default=None, metavar="SPEC",
                        help="shared result store to consult before "
                             "executing a unit: a directory path or an "
                             "http(s):// URL (default: whatever store the "
                             "coordinator offers in its handshake)")
    worker.set_defaults(func=_cmd_worker)

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("scenario", choices=("chain", "cross"),
                       help="which scenario shape to run")
        p.add_argument("--hops", type=int, default=4)
        p.add_argument("--variant",
                       choices=sorted(PAPER_VARIANTS) + ["tahoe", "reno"],
                       default="muzha",
                       help="flow variant (horizontal flow for cross)")
        p.add_argument("--b", default="newreno",
                       help="vertical flow variant (cross only)")

    trace = sub.add_parser(
        "trace", help="run a scenario with trace sinks + provenance manifest"
    )
    _add_common(trace)
    add_scenario_args(trace)
    trace.add_argument("--out", default="trace.ndjson", metavar="PATH",
                       help="trace output file")
    trace.add_argument("--format", choices=("ndjson", "csv"), default="ndjson",
                       help="trace file format")
    trace.add_argument("--events", nargs="+", default=None, metavar="EVENT",
                       help="only record these event names (default: all)")
    trace.add_argument("--flight-dir", default=None, metavar="DIR",
                       help="arm the flight recorder; anomaly dumps go here")
    trace.add_argument("--probe-interval", type=float, default=0.5,
                       help="time-series probe period, seconds (0 disables)")
    _add_faults(trace)
    _add_policy(trace)
    trace.set_defaults(func=_cmd_trace)

    stats_p = sub.add_parser(
        "stats", help="run a scenario and print its metrics snapshot"
    )
    _add_common(stats_p)
    add_scenario_args(stats_p)
    stats_p.add_argument("--json", action="store_true",
                         help="dump the full snapshot as JSON")
    stats_p.add_argument("--per-node", action="store_true",
                         help="also print the per-node rollup table")
    _add_faults(stats_p)
    _add_policy(stats_p)
    stats_p.set_defaults(func=_cmd_stats)

    profile = sub.add_parser(
        "profile", help="cProfile a scenario to find simulator hot spots"
    )
    _add_common(profile)
    profile.add_argument("scenario", choices=("chain", "cross", "dynamics"),
                         help="which scenario shape to profile")
    profile.add_argument("--hops", type=int, default=4)
    profile.add_argument("--variant", choices=sorted(PAPER_VARIANTS) + ["tahoe", "reno"],
                         default="muzha")
    profile.add_argument("--sort", choices=("tottime", "cumulative", "ncalls"),
                         default="tottime", help="stat ordering for the report")
    profile.add_argument("--limit", type=int, default=25,
                         help="number of rows to print")
    profile.add_argument("--out", default=None, metavar="PATH",
                         help="also dump raw pstats data to PATH")
    profile.set_defaults(func=_cmd_profile)

    report_p = sub.add_parser(
        "report", help="summarise a campaign telemetry span log"
    )
    report_p.add_argument("spanlog", metavar="SPANLOG.ndjson",
                          help="NDJSON span log from `campaign --spans`")
    report_p.add_argument("--json", action="store_true",
                          help="emit the aggregate summary as JSON")
    report_p.add_argument("--top", type=int, default=10, metavar="K",
                          help="slowest units to list")
    report_p.add_argument("--buckets", type=int, default=20, metavar="N",
                          help="throughput timeline resolution")
    report_p.set_defaults(func=_cmd_report)

    doctor = sub.add_parser(
        "doctor", help="fsck campaign artifacts: cache, journal, span log"
    )
    doctor.add_argument("--cache", default=None, metavar="DIR",
                        help="campaign cache directory to check for orphaned "
                             "tmp files and corrupt envelopes")
    doctor.add_argument("--journal", default=None, metavar="PATH",
                        help="write-ahead journal to check (torn tail, "
                             "schema violations, drift against --cache)")
    doctor.add_argument("--spans", default=None, metavar="PATH",
                        help="campaign span log to check for unclosed spans "
                             "(the signature of a killed campaign)")
    doctor.add_argument("--repair", action="store_true",
                        help="fix what can be fixed safely: delete orphaned "
                             "tmp files and corrupt/drifted cache entries, "
                             "truncate torn journal tails")
    doctor.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    doctor.set_defaults(func=_cmd_doctor)

    tables = sub.add_parser("tables", help="print Tables 5.1 and 5.2")
    tables.set_defaults(func=_cmd_tables)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
