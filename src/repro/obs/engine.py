"""Campaign-engine telemetry: spans, coordinator events, worker health.

:class:`CampaignTelemetry` is the instrumentation facade
:func:`repro.experiments.campaign.run_campaign` drives.  It owns the span
lifecycle (``campaign`` → ``dispatch-batch`` → ``unit-attempt``), the
coordinator event stream (cache hit/miss/evict, retry, backoff, worker
spawn/crash/timeout/replacement, quarantine), per-worker health accounting
(units done, busy vs idle seconds, RSS where ``/proc`` exposes it) and the
live ``progress`` ticker — all serialized through one
:class:`~repro.obs.spans.SpanWriter`.

Cost model: the campaign engine holds a plain ``telemetry`` reference that
is ``None`` by default and guards every call site with ``if telemetry is
not None`` — a campaign run without telemetry pays one falsy check per
coordinator event, and the simulation processes never see the object at
all (it is never pickled across the worker pipes).  Result bytes are
untouchable by construction: telemetry only *observes* dispatch and
completion; seeds, specs and metrics flow exactly as before.

Everything is wall-clock (``time.time``) on the wire — spans describe the
campaign's real-world execution, not simulated time — while busy/idle
bookkeeping uses the monotonic clock internally so a system clock step
cannot produce negative utilization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import (
    SPAN_BATCH,
    SPAN_CAMPAIGN,
    SPAN_UNIT,
    Span,
    SpanIdAllocator,
    SpanWriter,
    wall_clock,
)


def read_rss_kb(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in kB via ``/proc``, or None.

    Linux-only by implementation; any failure (no procfs, process gone,
    unparsable line) degrades to None — worker heartbeats then simply omit
    the gauge rather than breaking the campaign.
    """
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii",
                  errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass
class WorkerHealth:
    """Coordinator-side health ledger for one (possibly long-lived) worker."""

    worker: str
    pid: Optional[int]
    spawned_mono: float
    units_done: int = 0
    failures: int = 0
    busy_s: float = 0.0
    idle_s: float = 0.0
    state: str = "idle"  # "idle" | "busy"
    state_since: float = 0.0
    max_rss_kb: Optional[int] = None

    def _accumulate(self, now: float) -> None:
        elapsed = max(0.0, now - self.state_since)
        if self.state == "busy":
            self.busy_s += elapsed
        else:
            self.idle_s += elapsed
        self.state_since = now

    def mark(self, state: str, now: float) -> None:
        """Transition to ``state``, charging the elapsed stint first."""
        self._accumulate(now)
        self.state = state

    def gauges(self, now: float) -> Dict[str, Any]:
        """A snapshot of the ledger *including* the in-progress stint."""
        busy, idle = self.busy_s, self.idle_s
        elapsed = max(0.0, now - self.state_since)
        if self.state == "busy":
            busy += elapsed
        else:
            idle += elapsed
        gauges: Dict[str, Any] = {
            "pid": self.pid,
            "units_done": self.units_done,
            "failures": self.failures,
            "busy_s": round(busy, 6),
            "idle_s": round(idle, 6),
            "state": self.state,
        }
        if self.pid is not None:
            rss = read_rss_kb(self.pid)
            if rss is not None:
                self.max_rss_kb = max(rss, self.max_rss_kb or 0)
        if self.max_rss_kb is not None:
            gauges["rss_kb"] = self.max_rss_kb
        return gauges


@dataclass
class _OpenBatch:
    """An in-flight dispatch-batch span on one worker."""

    span: Span
    outstanding: int
    last_result_wall: float  # start estimate for the next unit span


class CampaignTelemetry:
    """Drive span/event/heartbeat/progress emission for one campaign.

    The campaign engine calls the ``worker_*``/``batch_*``/``unit_*``/
    ``cache_*`` hooks from its coordinator loop; this class turns them into
    schema-valid NDJSON records and keeps the per-worker health ledgers the
    heartbeats report.  One instance covers exactly one
    :func:`~repro.experiments.campaign.run_campaign` call.
    """

    def __init__(
        self,
        writer: SpanWriter,
        heartbeat_interval: float = 1.0,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        self.writer = writer
        self.heartbeat_interval = heartbeat_interval
        self._ids = SpanIdAllocator()
        self._campaign: Optional[Span] = None
        self._campaign_done = False
        self._workers: Dict[str, WorkerHealth] = {}
        self._batches: Dict[str, _OpenBatch] = {}
        self._last_beat = float("-inf")
        self._last_unit_wall = 0.0  # batchless (inproc) unit-start estimate
        self.heartbeats = 0
        #: Aggregates folded into the campaign close record.
        self.counters: Dict[str, int] = {}
        #: PHY engine aggregates harvested from per-unit manifests.
        self.phy_counters: Dict[str, int] = {}

    # -- low-level emit ----------------------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def event(self, name: str, **attrs: Any) -> None:
        """Emit one point-in-time coordinator event."""
        record: Dict[str, Any] = {"kind": "event", "name": name,
                                  "t": wall_clock()}
        if attrs:
            record["attrs"] = attrs
        self.writer.write(record)
        self._count(f"events.{name}")

    # -- campaign span -----------------------------------------------------------

    def begin_campaign(self, total: int, pool_mode: str, jobs: int,
                       **attrs: Any) -> str:
        if self._campaign is not None:
            raise RuntimeError("campaign span is already open")
        span = Span(
            id=self._ids.allocate(SPAN_CAMPAIGN),
            name=SPAN_CAMPAIGN,
            t0=wall_clock(),
            attrs={"total": total, "pool_mode": pool_mode, "jobs": jobs,
                   **attrs},
        )
        self._campaign = span
        self.writer.write(span.open_record())
        return span.id

    def end_campaign(self, *, executed: int, cache_hits: int,
                     cache_evictions: int, failed: int,
                     interrupted: bool = False,
                     remaining: int = 0) -> None:
        if self._campaign is None or self._campaign_done:
            return
        now_wall = wall_clock()
        now = time.monotonic()
        # A worker the pool never told us about leaving still deserves a
        # final ledger line; then close any batch a crash left dangling.
        for worker in list(self._workers):
            self._final_heartbeat(worker, now_wall, now)
        for worker in list(self._batches):
            self._close_batch(worker, status="aborted")
        if interrupted:
            status = "interrupted"
        else:
            status = "ok" if failed == 0 else "error"
        attrs: Dict[str, Any] = {
            "executed": executed,
            "cache_hits": cache_hits,
            "cache_evictions": cache_evictions,
            "failed": failed,
            "counters": dict(sorted(self.counters.items())),
        }
        if interrupted or remaining:
            attrs["remaining"] = remaining
        if self.phy_counters:
            attrs["phy"] = dict(sorted(self.phy_counters.items()))
        self.writer.write(
            self._campaign.close_record(now_wall, status=status, attrs=attrs)
        )
        self._campaign_done = True

    # -- workers -----------------------------------------------------------------

    def worker_spawned(self, worker: str, pid: Optional[int],
                       replacement: bool = False,
                       host: Optional[str] = None) -> None:
        """``pid`` must be a *local* pid or None: it feeds the ``/proc``
        RSS gauge, which cannot see a remote agent's process.  ``host``
        names the machine a cluster agent joined from."""
        now = time.monotonic()
        self._workers[worker] = WorkerHealth(
            worker=worker, pid=pid, spawned_mono=now, state_since=now
        )
        attrs: Dict[str, Any] = {"worker": worker, "pid": pid,
                                 "replacement": replacement}
        if host is not None:
            attrs["host"] = host
        self.event("worker.spawn", **attrs)
        if replacement:
            self._count("workers.replaced")
        self._count("workers.spawned")

    def worker_exited(self, worker: str, reason: str,
                      exitcode: Optional[int] = None) -> None:
        """A worker left the pool: ``reason`` in stop/crash/timeout."""
        now_wall = wall_clock()
        now = time.monotonic()
        if worker in self._batches:
            self._close_batch(worker, status="aborted")
        self._final_heartbeat(worker, now_wall, now)
        self.event(f"worker.{reason}", worker=worker, exitcode=exitcode)
        self._workers.pop(worker, None)

    def _final_heartbeat(self, worker: str, now_wall: float,
                         now_mono: float) -> None:
        health = self._workers.get(worker)
        if health is None:
            return
        self.writer.write({
            "kind": "heartbeat", "t": now_wall, "worker": worker,
            "attrs": health.gauges(now_mono),
        })
        self.heartbeats += 1

    def tick(self) -> None:
        """Interval-gated heartbeat sweep over every live worker.

        The coordinator calls this once per supervisor-loop iteration; the
        gate keeps the log volume bounded by wall time, not loop rate.
        """
        now = time.monotonic()
        if now - self._last_beat < self.heartbeat_interval:
            return
        self._last_beat = now
        now_wall = wall_clock()
        for worker in list(self._workers):
            self._final_heartbeat(worker, now_wall, now)

    # -- batches -----------------------------------------------------------------

    def batch_dispatched(self, worker: str, indices: Sequence[int]) -> str:
        if worker in self._batches:  # pragma: no cover - engine invariant
            self._close_batch(worker, status="aborted")
        now_wall = wall_clock()
        parent = self._campaign.id if self._campaign is not None else None
        span = Span(
            id=self._ids.allocate(SPAN_BATCH),
            name=SPAN_BATCH,
            t0=now_wall,
            parent=parent,
            attrs={"worker": worker, "units": list(indices)},
        )
        self._batches[worker] = _OpenBatch(
            span=span, outstanding=len(indices), last_result_wall=now_wall
        )
        health = self._workers.get(worker)
        if health is not None:
            health.mark("busy", time.monotonic())
        self.writer.write(span.open_record())
        self._count("batches.dispatched")
        self._count("units.dispatched", len(indices))
        return span.id

    def _close_batch(self, worker: str, status: str) -> None:
        batch = self._batches.pop(worker, None)
        if batch is None:
            return
        self.writer.write(
            batch.span.close_record(wall_clock(), status=status)
        )
        health = self._workers.get(worker)
        if health is not None:
            health.mark("idle", time.monotonic())

    # -- units -------------------------------------------------------------------

    def unit_result(
        self,
        worker: str,
        index: int,
        attempt: int,
        status: str,
        *,
        cached: bool = False,
        scenario: Optional[str] = None,
        replication: Optional[int] = None,
        manifest: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """One finished unit attempt: emits its ``unit-attempt`` span.

        The span's start is the coordinator's best estimate — the later of
        the worker's batch dispatch and its previous result — and its
        attributes carry the *worker-measured* subsystem timings from the
        unit's manifest when one came back, so consumers get both the
        queueing view and the precise execution breakdown.
        """
        now_wall = wall_clock()
        batch = self._batches.get(worker)
        if batch is not None:
            t0 = batch.last_result_wall
            parent = batch.span.id
            batch.last_result_wall = now_wall
        else:
            t0 = self._last_unit_wall or now_wall
            parent = self._campaign.id if self._campaign is not None else None
        self._last_unit_wall = now_wall
        attrs: Dict[str, Any] = {
            "index": index, "attempt": attempt, "worker": worker,
            "cached": cached,
        }
        if scenario is not None:
            attrs["scenario"] = scenario
        if replication is not None:
            attrs["replication"] = replication
        span = Span(
            id=self._ids.allocate(SPAN_UNIT), name=SPAN_UNIT,
            t0=t0, parent=parent, attrs=attrs,
        )
        close_attrs: Dict[str, Any] = {}
        if error is not None:
            close_attrs["error"] = error
        if manifest is not None:
            timings = manifest.get("timings")
            if timings:
                close_attrs["timings"] = timings
            engine = manifest.get("engine")
            if engine:
                close_attrs["phy_lane"] = engine.get("lane")
                self._fold_phy(engine)
        self.writer.write(span.open_record())
        self.writer.write(
            span.close_record(now_wall, status=status, attrs=close_attrs)
        )
        health = self._workers.get(worker)
        if health is not None:
            if status == "ok":
                health.units_done += 1
            else:
                health.failures += 1
        if batch is not None:
            batch.outstanding -= 1
            if status in ("crash", "timeout"):
                # The worker died on this unit: whatever was queued behind
                # it never ran, so the dispatch-batch itself is aborted.
                self._close_batch(worker, status="aborted")
            elif batch.outstanding <= 0:
                self._close_batch(worker, status="ok")
        self._count(f"units.{status}")
        if cached:
            self._count("units.cached")

    def _fold_phy(self, engine: Dict[str, Any]) -> None:
        """Aggregate one unit's PHY engine counters into the campaign totals."""
        lane = engine.get("lane")
        if isinstance(lane, str):
            key = f"lane.{lane}.units"
            self.phy_counters[key] = self.phy_counters.get(key, 0) + 1
        for name in ("transmissions", "numpy_fanout_frames",
                     "loop_fanout_frames"):
            value = engine.get(name)
            if isinstance(value, int):
                self.phy_counters[name] = self.phy_counters.get(name, 0) + value

    # -- cache -------------------------------------------------------------------

    def cache_hit(self, index: int, digest: str) -> None:
        self.event("cache.hit", index=index, digest=digest[:12])

    def cache_miss(self, index: int, digest: str) -> None:
        self.event("cache.miss", index=index, digest=digest[:12])

    def cache_evicted(self, index: int, digest: str) -> None:
        self.event("cache.evict", index=index, digest=digest[:12])

    # -- interrupt / resume ------------------------------------------------------

    def campaign_resumed(self, journal: str, verified: int, drift: int,
                         remainder: int) -> None:
        """A resume replayed ``journal``: ``verified`` completions held up
        against the cache, ``drift`` did not (they re-execute)."""
        self.event("campaign.resume", journal=journal, verified=verified,
                   drift=drift, remainder=remainder)

    def campaign_interrupted(self, signal_name: str, done: int,
                             total: int) -> None:
        """Graceful shutdown began: stop dispatching, drain in-flight."""
        self.event("campaign.interrupt", signal=signal_name, done=done,
                   total=total)

    # -- retries / quarantine ----------------------------------------------------

    def retry_scheduled(self, index: int, attempt: int, delay: float,
                        error: str) -> None:
        self.event("retry", index=index, attempt=attempt,
                   backoff_s=round(delay, 6), error=error)

    def quarantined(self, index: int, attempts: int, error: str) -> None:
        self.event("quarantine", index=index, attempts=attempts, error=error)

    # -- progress ----------------------------------------------------------------

    def progress(self, done: int, total: int, failed: int) -> None:
        self.writer.write({
            "kind": "progress", "t": wall_clock(), "done": done,
            "total": total, "failed": failed,
        })


__all__ = [
    "CampaignTelemetry",
    "WorkerHealth",
    "read_rss_kb",
]
