"""Sampling time-series probe: periodic cwnd/queue/throughput snapshots.

:class:`TimeseriesProbe` runs a :class:`~repro.sim.timer.PeriodicTimer`
and, on every tick, evaluates a set of named samplers into ``(time,
value)`` series — exactly the step-function shape every helper in
:mod:`repro.stats.timeseries` (``resample``, ``time_average``,
``differentiate``) consumes.

Each tick also publishes one gated ``probe.sample`` trace record per
watched series, so an attached NDJSON/CSV sink (see
:mod:`repro.obs.sinks`) captures the samples inline with the event trace;
with nothing subscribed the probe pays only the in-memory append.

:func:`attach_run_probe` wires the standard scenario watch list — per-flow
cwnd and cumulative delivered bytes, per-node IFQ backlog — which is the
data behind the paper's cwnd/queue/throughput-over-time figures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from ..sim.timer import PeriodicTimer

Sample = Tuple[float, float]


class TimeseriesProbe:
    """Periodic sampler of named scalar sources."""

    def __init__(self, sim: Any, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.series: Dict[str, List[Sample]] = {}
        self._samplers: List[Tuple[str, Callable[[], float]]] = []
        self._timer = PeriodicTimer(sim, interval, self._sample, name="obs.probe")

    def watch(self, name: str, fn: Callable[[], float]) -> "TimeseriesProbe":
        """Sample ``fn()`` under ``name`` on every tick."""
        if name in self.series:
            raise ValueError(f"already watching {name!r}")
        self._samplers.append((name, fn))
        self.series[name] = []
        return self

    def start(self) -> "TimeseriesProbe":
        """Take one immediate sample, then sample every ``interval``."""
        self._sample()
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        now = self.sim.now
        trace = self.sim.trace
        # Gate before the field dict, per the sim.trace discipline.
        traced = trace.active and trace.wants("probe.sample")
        for name, fn in self._samplers:
            value = float(fn())
            self.series[name].append((now, value))
            if traced:
                self.sim.emit("probe", "probe.sample", name=name, value=value)


def attach_run_probe(
    network: Any, flows: Iterable[Any], interval: float = 0.5
) -> TimeseriesProbe:
    """Standard scenario watch list: flow cwnd + delivered bytes, node IFQs.

    Differentiate a ``flow{i}.delivered_bytes`` series
    (:func:`repro.stats.timeseries.differentiate`) to get the throughput
    dynamics the paper plots.
    """
    probe = TimeseriesProbe(network.sim, interval)
    for i, flow in enumerate(flows):
        probe.watch(f"flow{i}.cwnd", lambda s=flow.sender: s.cwnd)
        probe.watch(
            f"flow{i}.delivered_bytes",
            lambda sink=flow.sink: float(sink.delivered_bytes),
        )
    for node in network.nodes:
        probe.watch(f"node{node.node_id}.ifq_len", lambda q=node.ifq: float(len(q)))
    return probe.start()
