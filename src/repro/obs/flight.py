"""Flight recorder: bounded per-node trace rings dumped on anomalies.

Full tracing of a long run is expensive and mostly records healthy
behaviour.  The flight recorder keeps only the *recent past* — a bounded
ring buffer of trace records per node — and writes it out automatically
when an anomaly trips, giving a post-mortem window around the interesting
moment without paying for (or storing) a full trace:

* **RTO storm** — ``threshold`` ``tcp.timeout`` records from one node
  inside ``window`` seconds;
* **route failure** — any ``aodv.route_failure`` (discovery retries
  exhausted) or ``aodv.link_down`` (route invalidated after confirmed MAC
  loss);
* **queue-full burst** — ``threshold`` ``ifq.drop`` records from one node
  inside ``window`` seconds.

Rules are data (:class:`AnomalyRule`), so scenarios can bring their own.
Dumps go to ``dump_dir`` as NDJSON (a header line describing the anomaly,
then the node's ring in time order, same record schema as
:class:`~repro.obs.sinks.NdjsonTraceSink`) and/or to an ``on_anomaly``
callback.  A per-(rule, node) cooldown stops one sustained incident from
spraying hundreds of identical dumps.

The recorder is a ``"*"`` TraceBus subscriber while armed; ``detach()``
(or leaving the ``with`` block) unsubscribes and restores the untraced
hot path via :meth:`TraceBus.unsubscribe`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..sim.trace import TraceBus, TraceRecord
from .sinks import record_to_json_dict

PathLike = Union[str, Path]


@dataclass(frozen=True)
class AnomalyRule:
    """``threshold`` records of ``event`` from one node within ``window`` s.

    ``window <= 0`` means "any single occurrence" (with ``threshold`` 1).
    """

    name: str
    event: str
    threshold: int = 1
    window: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")


DEFAULT_RULES: Tuple[AnomalyRule, ...] = (
    AnomalyRule("rto_storm", "tcp.timeout", threshold=3, window=1.0),
    AnomalyRule("route_failure", "aodv.route_failure"),
    AnomalyRule("route_failure", "aodv.link_down"),
    AnomalyRule("queue_full_burst", "ifq.drop", threshold=5, window=0.5),
    # Injected faults (repro.faults): every one is anomalous by definition,
    # so any single occurrence dumps the window leading up to it — the
    # post-mortem then shows what the protocols were doing when it hit.
    AnomalyRule("fault_node_crash", "fault.node_crash"),
    AnomalyRule("fault_link_blackout", "fault.link_blackout"),
    AnomalyRule("fault_partition", "fault.partition"),
)


def record_node(record: TraceRecord) -> Any:
    """The node a record belongs to: its ``node``/``src`` field, else source."""
    fields = record.fields
    node = fields.get("node")
    if node is None:
        node = fields.get("src")
    return record.source if node is None else node


@dataclass
class AnomalyDump:
    """Metadata of one written dump (the records live in the file)."""

    rule: str
    node: Any
    time: float
    records: int
    path: Optional[Path]


class FlightRecorder:
    """Arm on a bus; keep per-node rings; dump them when a rule trips."""

    def __init__(
        self,
        bus: TraceBus,
        capacity: int = 256,
        rules: Sequence[AnomalyRule] = DEFAULT_RULES,
        dump_dir: Optional[PathLike] = None,
        on_anomaly: Optional[Callable[[AnomalyDump, List[TraceRecord]], None]] = None,
        cooldown: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rules = tuple(rules)
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.on_anomaly = on_anomaly
        self.cooldown = cooldown
        self.dumps: List[AnomalyDump] = []
        self._rings: Dict[Any, Deque[TraceRecord]] = {}
        self._by_event: Dict[str, List[AnomalyRule]] = {}
        for rule in self.rules:
            self._by_event.setdefault(rule.event, []).append(rule)
        # (rule name, node) -> recent trigger-record times / last dump time.
        self._hits: Dict[Tuple[str, Any], Deque[float]] = {}
        self._last_dump: Dict[Tuple[str, Any], float] = {}
        self._bus: Optional[TraceBus] = bus
        bus.subscribe("*", self._on_record)

    # -- lifecycle --------------------------------------------------------------

    def detach(self) -> None:
        """Unsubscribe, re-gating the hot path; rings are kept for inspection."""
        if self._bus is not None:
            self._bus.unsubscribe("*", self._on_record)
            self._bus = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    # -- record path ------------------------------------------------------------

    def ring(self, node: Any) -> List[TraceRecord]:
        """The retained records for ``node``, oldest first."""
        return list(self._rings.get(node, ()))

    def _on_record(self, record: TraceRecord) -> None:
        node = record_node(record)
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.capacity)
        ring.append(record)
        rules = self._by_event.get(record.event)
        if rules is None:
            return
        for rule in rules:
            self._check(rule, node, record.time)

    def _check(self, rule: AnomalyRule, node: Any, now: float) -> None:
        key = (rule.name, node)
        hits = self._hits.get(key)
        if hits is None:
            hits = self._hits[key] = deque(maxlen=rule.threshold)
        hits.append(now)
        if len(hits) < rule.threshold:
            return
        if rule.window > 0 and now - hits[0] > rule.window:
            return
        last = self._last_dump.get(key)
        if last is not None and now - last < self.cooldown:
            return
        self._last_dump[key] = now
        hits.clear()
        self._dump(rule, node, now)

    # -- dumping ----------------------------------------------------------------

    def _dump(self, rule: AnomalyRule, node: Any, now: float) -> None:
        records = self.ring(node)
        path: Optional[Path] = None
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / (
                f"flight-{len(self.dumps):03d}-{rule.name}-node{node}.ndjson"
            )
            with path.open("w", encoding="utf-8") as handle:
                header = {
                    "anomaly": rule.name,
                    "node": node,
                    "time": now,
                    "records": len(records),
                }
                handle.write(json.dumps(header, sort_keys=True,
                                        separators=(",", ":")) + "\n")
                for record in records:
                    handle.write(json.dumps(record_to_json_dict(record),
                                            sort_keys=True,
                                            separators=(",", ":"),
                                            default=str) + "\n")
        dump = AnomalyDump(rule=rule.name, node=node, time=now,
                           records=len(records), path=path)
        self.dumps.append(dump)
        if self.on_anomaly is not None:
            self.on_anomaly(dump, records)
