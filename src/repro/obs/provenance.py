"""Run provenance: manifests that make every result attributable.

A *manifest* is a JSON document attached to every runner/campaign result
(and stored alongside cached campaign entries) that records everything
needed to (a) attribute a number to the exact code + configuration that
produced it and (b) reproduce the run byte-identically:

* the master ``seed`` and the full scenario ``config`` (plus, for campaign
  units, the complete ``spec``) with their content digests;
* the package version, Python version and platform string;
* wall-clock duration and simulated duration;
* the run's deterministic metrics snapshot (see :mod:`repro.obs.metrics`);
* ``result_digest`` — the digest of the run's canonical result
  serialization, so a replay can prove bit-identity without shipping the
  original result around.

Determinism contract: everything under the ``seed``/``config``/``spec``/
``result_digest``/``metrics`` keys is a pure function of the run;
``wall_time_s``, ``package_version``, ``python``, ``platform`` and
``created_unix`` are environment facts and are *never* folded into result
fingerprints (see :meth:`repro.experiments.campaign.RunRecord.metrics_bytes`).
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from typing import Any, Dict, Optional

#: Bump when the manifest layout changes incompatibly; validated against
#: ``schemas/run_manifest.schema.json``.
MANIFEST_SCHEMA_VERSION = 1


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload`` rendered as canonical JSON.

    The rendering is deterministic (sorted keys, no whitespace, exact float
    repr) so equal configurations always hash equal across processes and
    interpreter sessions — the property the content-addressed campaign
    cache and the manifest reproduction check both key on.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports repro.obs before it defines
    # __version__, so a module-level import would see a partial package.
    try:
        import repro

        return getattr(repro, "__version__", "unknown")
    except Exception:  # pragma: no cover - only during exotic partial imports
        return "unknown"


def build_manifest(
    *,
    seed: int,
    config: Dict[str, Any],
    sim_time: float,
    wall_time_s: float,
    metrics: Dict[str, Any],
    result_digest: str,
    timings: Optional[Dict[str, float]] = None,
    engine: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest for one completed run.

    ``config`` is the run's full plain-data configuration
    (:meth:`repro.experiments.config.ScenarioConfig.to_dict`); its digest
    keys the reproduction check together with ``seed`` (the seed is inside
    the config too, so ``config_digest`` alone pins the randomness).

    ``timings`` (per-subsystem wall seconds: setup/sim/harvest/serialize)
    and ``engine`` (PHY lane + kernel counters) are environment facts like
    ``wall_time_s`` — campaign telemetry surfaces them in unit-attempt
    spans, and like every environment fact they never enter result
    fingerprints.
    """
    return {
        "manifest_schema": MANIFEST_SCHEMA_VERSION,
        "seed": seed,
        "config": config,
        "config_digest": stable_digest(config),
        "spec": None,
        "spec_digest": None,
        "result_digest": result_digest,
        "metrics": metrics,
        "sim_time": sim_time,
        "wall_time_s": wall_time_s,
        "timings": timings,
        "engine": engine,
        "package_version": _package_version(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_unix": time.time(),
    }


def attach_spec(manifest: Dict[str, Any], spec: Dict[str, Any]) -> Dict[str, Any]:
    """Record the full :class:`~repro.experiments.runner.RunSpec` plain-data
    form on ``manifest`` so the run can be replayed from the manifest alone."""
    manifest["spec"] = spec
    manifest["spec_digest"] = stable_digest(spec)
    return manifest


def manifest_consistent(manifest: Dict[str, Any]) -> bool:
    """Internal consistency: do the embedded digests match their payloads?

    This is the cheap (no-simulation) half of the reproduction story; the
    expensive half — re-running the spec and comparing ``result_digest`` —
    lives in :func:`repro.experiments.runner.verify_manifest`.
    """
    if manifest.get("config_digest") != stable_digest(manifest.get("config")):
        return False
    spec = manifest.get("spec")
    if spec is not None and manifest.get("spec_digest") != stable_digest(spec):
        return False
    return True
