"""Metrics registry: cheap counters/gauges/histograms with rollups.

Two usage modes:

* **Live metrics** — components create :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects through a :class:`MetricsRegistry` and bump
  them directly.  The primitives are ``__slots__`` objects whose update is
  one attribute add, so they are safe on warm (not innermost) paths.
* **Harvest** — the simulator's innermost loops (per-frame MAC/PHY, per-
  packet queue) keep their existing plain-``int`` layer counters and pay
  *zero* registry overhead; :func:`collect_network_metrics` sweeps every
  layer of a finished (or running) :class:`~repro.topology.builder.Network`
  into a registry after the fact.  This is how every scenario run gets its
  snapshot without perturbing the benchmarked hot paths.

``MetricsRegistry.snapshot()`` renders everything as a deterministic,
JSON-safe dict — per-metric label series plus per-node and global rollups —
which is what run manifests embed and the campaign cache stores.  Identical
seeds produce byte-identical snapshots; the provenance tests hold the
registry to that.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]

#: Default cwnd-style histogram bucket upper bounds (packets).
DEFAULT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket distribution: counts of observations per upper bound.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last bound.  ``observe`` is O(log buckets).
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
        }


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key) if key else ""


class MetricsRegistry:
    """Namespace of labelled metrics with deterministic export.

    Metrics are keyed by ``(name, sorted labels)``; asking for an existing
    key returns the same object (get-or-create), so layers can look their
    metric up once and hold the reference.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- get-or-create accessors ---------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(bounds)
        elif metric.bounds != tuple(sorted(float(b) for b in bounds)):
            raise ValueError(f"histogram {name!r} already exists with "
                             f"bounds {metric.bounds}")
        return metric

    # -- export ----------------------------------------------------------------

    @staticmethod
    def _series(store: Dict[Tuple[str, LabelKey], Any], render) -> Dict[str, Any]:
        out: Dict[str, Dict[str, Any]] = {}
        for (name, key) in sorted(store, key=lambda k: (k[0], _label_str(k[1]))):
            out.setdefault(name, {})[_label_str(key)] = render(store[(name, key)])
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-safe export of every metric plus rollups.

        Rollups sum counters over their label sets: ``global`` per metric
        name, ``per_node`` per metric name within each ``node=`` label.
        Insertion order never leaks — keys are sorted — so two registries
        holding equal values serialize byte-identically.
        """
        per_node: Dict[str, Dict[str, int]] = {}
        rollup: Dict[str, int] = {}
        for (name, key), counter in self._counters.items():
            rollup[name] = rollup.get(name, 0) + counter.value
            labels = dict(key)
            if "node" in labels:
                bucket = per_node.setdefault(str(labels["node"]), {})
                bucket[name] = bucket.get(name, 0) + counter.value
        return {
            "counters": self._series(self._counters, lambda m: m.value),
            "gauges": self._series(self._gauges, lambda m: m.value),
            "histograms": self._series(self._histograms, lambda m: m.to_dict()),
            "rollups": {
                "global": {name: rollup[name] for name in sorted(rollup)},
                "per_node": {
                    node: {n: v for n, v in sorted(per_node[node].items())}
                    for node in sorted(per_node, key=lambda s: (len(s), s))
                },
            },
        }


# ---------------------------------------------------------------------------
# Layer harvest


def _harvest_dataclass_counters(
    registry: MetricsRegistry, prefix: str, counters: Any, node: int
) -> None:
    for field_name, value in vars(counters).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if isinstance(value, float):
            registry.gauge(f"{prefix}.{field_name}", node=node).set(value)
        else:
            registry.counter(f"{prefix}.{field_name}", node=node).inc(value)


def collect_network_metrics(
    network: Any,
    flows: Iterable[Any] = (),
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Sweep every layer of ``network`` (and ``flows``) into a registry.

    Harvested per node: PHY decode outcomes (``phy.rx_ok`` /
    ``phy.collisions`` / ``phy.medium_errors``), the full MAC counter set
    (retries, retry-limit drops, NAV seconds, backoff slots, ...), IFQ
    enqueue/dequeue/drop/high-water/occupancy, network-layer forwarding
    counters, routing counters (plus the AODV RREQ/RREP/RERR set when AODV
    is installed), and the DRAI advice distribution when the estimator is
    installed.  Per flow: the TCP sender stats, final cwnd/ssthresh/RTO
    gauges, a cwnd-sample histogram, and sink delivery counters.

    Purely read-only: safe to call mid-run for a live snapshot.
    """
    registry = registry or MetricsRegistry()
    for node in network.nodes:
        nid = node.node_id
        radio = node.radio
        registry.counter("phy.rx_ok", node=nid).inc(radio.rx_ok)
        registry.counter("phy.collisions", node=nid).inc(radio.collisions)
        registry.counter("phy.medium_errors", node=nid).inc(radio.medium_errors)
        _harvest_dataclass_counters(registry, "mac", node.mac.counters, nid)
        ifq = node.ifq
        registry.counter("ifq.enqueued", node=nid).inc(ifq.enqueued)
        registry.counter("ifq.dequeued", node=nid).inc(ifq.dequeued)
        registry.counter("ifq.drops", node=nid).inc(ifq.drops)
        registry.counter("ifq.high_water", node=nid).inc(ifq.high_water)
        registry.gauge("ifq.len", node=nid).set(float(len(ifq)))
        registry.gauge("ifq.occupancy", node=nid).set(ifq.occupancy)
        early = getattr(ifq, "early_drops", None)
        if early is not None:
            registry.counter("ifq.early_drops", node=nid).inc(early)
        _harvest_dataclass_counters(registry, "net", node.counters, nid)
        if node.routing is not None:
            _harvest_dataclass_counters(
                registry, "routing", node.routing.counters, nid
            )
            aodv = getattr(node.routing, "aodv", None)
            if aodv is not None:
                _harvest_dataclass_counters(registry, "aodv", aodv, nid)
        drai = getattr(node, "drai", None)
        if drai is not None:
            for level, count in sorted(drai.level_counts.items()):
                registry.counter("drai.advice", node=nid, level=level).inc(count)
            registry.gauge("drai.level", node=nid).set(float(drai.drai))
            registry.gauge("drai.utilization", node=nid).set(drai.utilization)
            registry.gauge("drai.occupancy", node=nid).set(drai.occupancy)
            # Per-state dwell counters: samples spent in each advice-policy
            # state (x sample_interval = time-in-state, the bake-off metric).
            for state, count in sorted(drai.state_counts.items()):
                registry.counter(
                    "drai.state_samples", node=nid,
                    policy=drai.policy.name, state=state,
                ).inc(count)
    for i, flow in enumerate(flows):
        sender = flow.sender
        nid = sender.node.node_id
        _harvest_dataclass_counters(registry, "tcp", sender.stats, nid)
        registry.gauge("tcp.cwnd", node=nid, flow=i).set(sender.cwnd)
        registry.gauge("tcp.ssthresh", node=nid, flow=i).set(sender.ssthresh)
        registry.gauge("tcp.rto", node=nid, flow=i).set(sender.rtt.rto)
        hist = registry.histogram("tcp.cwnd_samples", node=nid, flow=i)
        for _, cwnd in sender.cwnd_trace:
            hist.observe(cwnd)
        sink_node = flow.sink.node.node_id
        registry.counter("tcp.delivered_packets", node=sink_node, flow=i).inc(
            flow.sink.delivered_packets
        )
        registry.counter("tcp.delivered_bytes", node=sink_node, flow=i).inc(
            flow.sink.delivered_bytes
        )
    return registry
