"""Schema validation for trace files, span logs and manifests — no deps.

The container deliberately ships no ``jsonschema`` package, so this module
implements the small subset of JSON Schema the repo's committed schemas
actually use — ``type`` (including union lists), ``required``,
``properties``, ``additionalProperties: false``, ``items`` and ``enum`` —
and wires it into loaders for those schemas:

* ``schemas/trace_record.schema.json`` — one NDJSON trace line;
* ``schemas/span_record.schema.json`` — one NDJSON campaign-telemetry
  line (span open/close, coordinator event, heartbeat, progress);
* ``schemas/journal_record.schema.json`` — one NDJSON line of a campaign
  write-ahead journal (plan, completions, quarantines, generation ends);
* ``schemas/run_manifest.schema.json`` — a run provenance manifest.

NDJSON readers treat an *empty* file and a *truncated final line* (no
trailing newline) as violations: both are what a crashed or still-running
producer leaves behind, and silently blessing them would let CI validate a
trace that never happened.

CLI (used by CI to hold trace/span/manifest output to the committed
contract)::

    python -m repro.obs.validate --trace out.ndjson \\
        --spans spans.ndjson --manifest out.manifest.json

exits non-zero and prints each violation with its JSON path.  Manifests
additionally get the :func:`~repro.obs.provenance.manifest_consistent`
digest self-check; span logs additionally get a referential structure
check (every close matches an open, every parent exists, exactly one root
campaign span).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .provenance import manifest_consistent

PathLike = Union[str, Path]

SCHEMA_DIR = Path(__file__).parent / "schemas"

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema keeps them distinct.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema(name: str) -> Dict[str, Any]:
    """Load a packaged schema by stem, e.g. ``load_schema("trace_record")``."""
    path = SCHEMA_DIR / f"{name}.schema.json"
    return json.loads(path.read_text(encoding="utf-8"))


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> List[str]:
    """All violations of ``schema`` by ``instance`` (empty list = valid)."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below assume the right type
    enum = schema.get("enum")
    if enum is not None and instance not in enum:
        errors.append(f"{path}: {instance!r} is not one of {enum}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for name in instance:
                if name not in properties:
                    errors.append(f"{path}: unexpected property {name!r}")
        for name, subschema in properties.items():
            if name in instance:
                errors.extend(validate(instance[name], subschema,
                                       f"{path}.{name}"))
    elif isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(instance):
                errors.extend(validate(item, items, f"{path}[{i}]"))
    return errors


def _iter_ndjson(path: PathLike):
    """Parse an NDJSON file: yields ``(lineno, record_or_None, error)``.

    Structural problems a line-by-line scan would silently bless are
    reported as pseudo-lines: an **empty file** (zero records — what a
    producer that died before its first write leaves behind) and a
    **truncated final line** (no trailing newline — a writer killed
    mid-record; the partial line is also JSON-checked like any other).
    """
    text = Path(path).read_text(encoding="utf-8")
    if not text.strip():
        yield 0, None, "empty NDJSON file (no records)"
        return
    if not text.endswith("\n"):
        lastno = text.count("\n") + 1
        yield lastno, None, ("truncated final line (no trailing newline — "
                             "producer died mid-record?)")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield lineno, json.loads(line), None
        except json.JSONDecodeError as exc:
            yield lineno, None, f"invalid JSON ({exc})"


def validate_trace_file(path: PathLike) -> List[str]:
    """Violations in an NDJSON trace file, one entry per bad line.

    An empty file or a truncated final line is a violation too — see
    :func:`_iter_ndjson`.
    """
    schema = load_schema("trace_record")
    errors: List[str] = []
    for lineno, record, error in _iter_ndjson(path):
        if error is not None:
            errors.append(f"line {lineno}: {error}")
            continue
        errors.extend(f"line {lineno}: {err}"
                      for err in validate(record, schema))
    return errors


#: Per-kind required fields of a span-log record, enforced on top of the
#: (necessarily permissive) committed schema.
_SPAN_KIND_REQUIRED = {
    "span_open": ("id", "span", "parent", "t0"),
    "span_close": ("id", "t1", "status"),
    "event": ("name", "t"),
    "heartbeat": ("t", "worker", "attrs"),
    "progress": ("t", "done", "total", "failed"),
}


def validate_span_file(path: PathLike) -> List[str]:
    """Violations in an NDJSON campaign span log.

    Three layers: the NDJSON file contract (non-empty, complete final
    line), the per-line ``span_record`` schema plus per-kind required
    fields, and the referential span structure — every ``span_close``
    names an opened-and-not-yet-closed id, every parent references an
    opened span, exactly one root ``campaign`` span exists, and every
    span opened is eventually closed.
    """
    schema = load_schema("span_record")
    errors: List[str] = []
    open_spans: Dict[str, str] = {}  # id -> span name, still open
    seen: Dict[str, str] = {}  # id -> span name, ever opened
    roots = 0
    for lineno, record, error in _iter_ndjson(path):
        if error is not None:
            errors.append(f"line {lineno}: {error}")
            continue
        line_errors = validate(record, schema)
        errors.extend(f"line {lineno}: {err}" for err in line_errors)
        if line_errors or not isinstance(record, dict):
            continue
        kind = record.get("kind")
        for name in _SPAN_KIND_REQUIRED.get(kind, ()):
            if name not in record:
                errors.append(
                    f"line {lineno}: {kind} record missing {name!r}"
                )
        if kind == "span_open":
            span_id = record.get("id")
            if span_id in seen:
                errors.append(f"line {lineno}: duplicate span id {span_id!r}")
                continue
            parent = record.get("parent")
            if parent is None:
                if record.get("span") != "campaign":
                    errors.append(
                        f"line {lineno}: only campaign spans may be roots, "
                        f"got {record.get('span')!r}"
                    )
                roots += 1
            elif parent not in seen:
                errors.append(
                    f"line {lineno}: parent {parent!r} of span "
                    f"{span_id!r} was never opened"
                )
            seen[span_id] = record.get("span", "?")
            open_spans[span_id] = seen[span_id]
        elif kind == "span_close":
            span_id = record.get("id")
            if span_id not in open_spans:
                errors.append(
                    f"line {lineno}: close of span {span_id!r} which is "
                    "not open"
                )
            else:
                del open_spans[span_id]
    if not errors:
        if roots != 1:
            errors.append(f"expected exactly 1 root campaign span, got {roots}")
        for span_id, name in sorted(open_spans.items()):
            errors.append(f"span {span_id!r} ({name}) was never closed")
    return errors


#: Per-kind required fields of a journal record, enforced on top of the
#: (necessarily permissive) committed schema.
_JOURNAL_KIND_REQUIRED = {
    "begin": ("t", "schema", "total", "base_seed", "replications",
              "pool_mode", "plan_digest", "resumed"),
    "planned": ("index", "scenario", "replication", "seed", "digest"),
    "done": ("t", "index", "digest", "result_digest", "cached"),
    "failed": ("t", "index", "digest", "error", "attempts"),
    "end": ("t", "status", "fingerprint", "executed", "cache_hits",
            "quarantined", "remaining"),
}


def validate_journal_file(path: PathLike,
                          allow_torn_tail: bool = False) -> List[str]:
    """Violations in a campaign write-ahead journal.

    Three layers: the NDJSON file contract, the per-line
    ``journal_record`` schema plus per-kind required fields, and the
    generation structure — the first record is a ``begin``, every
    ``done``/``failed`` index was ``planned``, every generation's
    ``plan_digest`` matches the first, and at most the *last* generation
    is missing its ``end`` record.

    ``allow_torn_tail=True`` downgrades a truncated final line from a
    violation to silence — that is exactly what a coordinator killed
    mid-write leaves, and :func:`repro.experiments.journal.replay_journal`
    tolerates it by design (``doctor --repair`` truncates it).
    """
    schema = load_schema("journal_record")
    text = Path(path).read_text(encoding="utf-8")
    torn = bool(text.strip()) and not text.endswith("\n")
    last_lineno = text.count("\n") + (1 if torn else 0)
    errors: List[str] = []
    first_kind: Any = None
    plan_digest: Any = None
    planned: set = set()
    ends_seen = 0
    begins_seen = 0
    for lineno, record, error in _iter_ndjson(path):
        if error is not None:
            if allow_torn_tail and torn and lineno == last_lineno:
                continue  # the partial line a killed writer leaves behind
            errors.append(f"line {lineno}: {error}")
            continue
        line_errors = validate(record, schema)
        errors.extend(f"line {lineno}: {err}" for err in line_errors)
        if line_errors or not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if first_kind is None:
            first_kind = kind
            if kind != "begin":
                errors.append(
                    f"line {lineno}: journal must start with a begin "
                    f"record, got {kind!r}"
                )
        for name in _JOURNAL_KIND_REQUIRED.get(kind, ()):
            if name not in record:
                errors.append(
                    f"line {lineno}: {kind} record missing {name!r}"
                )
        if kind == "begin":
            if begins_seen > ends_seen:
                errors.append(
                    f"line {lineno}: begin record before the previous "
                    "generation ended"
                )
            begins_seen += 1
            if plan_digest is None:
                plan_digest = record.get("plan_digest")
            elif record.get("plan_digest") != plan_digest:
                errors.append(
                    f"line {lineno}: plan_digest differs from the first "
                    "generation's (mixed campaigns in one journal)"
                )
        elif kind == "planned":
            planned.add(record.get("index"))
        elif kind in ("done", "failed"):
            if planned and record.get("index") not in planned:
                errors.append(
                    f"line {lineno}: {kind} record for unplanned unit "
                    f"index {record.get('index')!r}"
                )
        elif kind == "end":
            ends_seen += 1
    return errors


def validate_manifest_file(path: PathLike) -> List[str]:
    """Schema + digest-consistency violations in a manifest JSON file."""
    try:
        manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"invalid JSON ({exc})"]
    errors = validate(manifest, load_schema("run_manifest"))
    if not errors and not manifest_consistent(manifest):
        errors.append("embedded config/spec digests do not match their payloads")
    return errors


def main(argv: Any = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate NDJSON traces and run manifests against the "
                    "committed schemas.",
    )
    parser.add_argument("--trace", action="append", default=[],
                        help="NDJSON trace file to validate (repeatable)")
    parser.add_argument("--spans", action="append", default=[],
                        help="NDJSON campaign span log to validate "
                             "(repeatable)")
    parser.add_argument("--manifest", action="append", default=[],
                        help="manifest JSON file to validate (repeatable)")
    parser.add_argument("--journal", action="append", default=[],
                        help="campaign write-ahead journal to validate "
                             "(repeatable)")
    parser.add_argument("--allow-torn-tail", action="store_true",
                        help="tolerate a truncated final journal line "
                             "(what a killed coordinator leaves behind)")
    args = parser.parse_args(argv)
    if not (args.trace or args.spans or args.manifest or args.journal):
        parser.error(
            "nothing to validate: pass --trace, --spans, --manifest "
            "and/or --journal"
        )
    failures = 0

    def check(path: str, errors: List[str]) -> None:
        nonlocal failures
        if errors:
            failures += 1
            print(f"FAIL {path}")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {path}")

    for trace_path in args.trace:
        check(trace_path, validate_trace_file(trace_path))
    for span_path in args.spans:
        check(span_path, validate_span_file(span_path))
    for manifest_path in args.manifest:
        check(manifest_path, validate_manifest_file(manifest_path))
    for journal_path in args.journal:
        check(journal_path, validate_journal_file(
            journal_path, allow_torn_tail=args.allow_torn_tail
        ))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
