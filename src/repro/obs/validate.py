"""Schema validation for trace files and manifests — no dependencies.

The container deliberately ships no ``jsonschema`` package, so this module
implements the small subset of JSON Schema the repo's two committed
schemas actually use — ``type`` (including union lists), ``required``,
``properties``, ``additionalProperties: false`` and ``items`` — and wires
it into loaders for those schemas:

* ``schemas/trace_record.schema.json`` — one NDJSON trace line;
* ``schemas/run_manifest.schema.json`` — a run provenance manifest.

CLI (used by CI to hold trace/manifest output to the committed contract)::

    python -m repro.obs.validate --trace out.ndjson --manifest out.manifest.json

exits non-zero and prints each violation with its JSON path.  Manifests
additionally get the :func:`~repro.obs.provenance.manifest_consistent`
digest self-check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .provenance import manifest_consistent

PathLike = Union[str, Path]

SCHEMA_DIR = Path(__file__).parent / "schemas"

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema keeps them distinct.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema(name: str) -> Dict[str, Any]:
    """Load a packaged schema by stem, e.g. ``load_schema("trace_record")``."""
    path = SCHEMA_DIR / f"{name}.schema.json"
    return json.loads(path.read_text(encoding="utf-8"))


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> List[str]:
    """All violations of ``schema`` by ``instance`` (empty list = valid)."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below assume the right type
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for name in instance:
                if name not in properties:
                    errors.append(f"{path}: unexpected property {name!r}")
        for name, subschema in properties.items():
            if name in instance:
                errors.extend(validate(instance[name], subschema,
                                       f"{path}.{name}"))
    elif isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(instance):
                errors.extend(validate(item, items, f"{path}[{i}]"))
    return errors


def validate_trace_file(path: PathLike) -> List[str]:
    """Violations in an NDJSON trace file, one entry per bad line."""
    schema = load_schema("trace_record")
    errors: List[str] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            errors.extend(f"line {lineno}: {err}"
                          for err in validate(record, schema))
    return errors


def validate_manifest_file(path: PathLike) -> List[str]:
    """Schema + digest-consistency violations in a manifest JSON file."""
    try:
        manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"invalid JSON ({exc})"]
    errors = validate(manifest, load_schema("run_manifest"))
    if not errors and not manifest_consistent(manifest):
        errors.append("embedded config/spec digests do not match their payloads")
    return errors


def main(argv: Any = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate NDJSON traces and run manifests against the "
                    "committed schemas.",
    )
    parser.add_argument("--trace", action="append", default=[],
                        help="NDJSON trace file to validate (repeatable)")
    parser.add_argument("--manifest", action="append", default=[],
                        help="manifest JSON file to validate (repeatable)")
    args = parser.parse_args(argv)
    if not args.trace and not args.manifest:
        parser.error("nothing to validate: pass --trace and/or --manifest")
    failures = 0
    for trace_path in args.trace:
        errors = validate_trace_file(trace_path)
        if errors:
            failures += 1
            print(f"FAIL {trace_path}")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {trace_path}")
    for manifest_path in args.manifest:
        errors = validate_manifest_file(manifest_path)
        if errors:
            failures += 1
            print(f"FAIL {manifest_path}")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {manifest_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
