"""Observability layer: metrics, trace sinks, flight recorder, provenance.

Everything here sits *on top of* the simulator's existing tracing and
counter infrastructure — the hot paths keep their plain-``int`` counters
and gated emits, and this package harvests, records, and attributes:

* :mod:`~repro.obs.metrics` — Counter/Gauge/Histogram registry with
  per-node and global rollups; :func:`collect_network_metrics` sweeps a
  finished run into a deterministic snapshot.
* :mod:`~repro.obs.sinks` — NDJSON/CSV file sinks for the trace bus.
* :mod:`~repro.obs.probe` — periodic cwnd/queue/throughput sampler.
* :mod:`~repro.obs.flight` — bounded per-node ring buffers dumped on
  anomalies (RTO storms, route failures, queue-full bursts).
* :mod:`~repro.obs.provenance` — run manifests (seed, config digest,
  metrics snapshot, environment) attached to every result.
* :mod:`~repro.obs.spans` / :mod:`~repro.obs.engine` — campaign-scale
  telemetry: span/event model, live NDJSON streaming, per-worker health.
* :mod:`~repro.obs.report` — span-log aggregation behind
  ``repro-muzha report``.
* :mod:`~repro.obs.validate` — dependency-free schema validation for
  trace files, span logs, campaign journals and manifests.
"""

from .engine import CampaignTelemetry, WorkerHealth, read_rss_kb
from .flight import AnomalyDump, AnomalyRule, DEFAULT_RULES, FlightRecorder
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_network_metrics,
)
from .probe import TimeseriesProbe, attach_run_probe
from .provenance import (
    MANIFEST_SCHEMA_VERSION,
    attach_spec,
    build_manifest,
    manifest_consistent,
    stable_digest,
)
from .report import aggregate_span_log, format_report, render_report
from .sinks import CsvTraceSink, NdjsonTraceSink, TraceSink, record_to_json_dict
from .spans import (
    SPAN_BATCH,
    SPAN_CAMPAIGN,
    SPAN_UNIT,
    Span,
    SpanWriter,
    read_span_log,
)
from .validate import (
    load_schema,
    validate,
    validate_journal_file,
    validate_manifest_file,
    validate_span_file,
    validate_trace_file,
)

__all__ = [
    "AnomalyDump",
    "AnomalyRule",
    "DEFAULT_RULES",
    "FlightRecorder",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_network_metrics",
    "TimeseriesProbe",
    "attach_run_probe",
    "MANIFEST_SCHEMA_VERSION",
    "attach_spec",
    "build_manifest",
    "manifest_consistent",
    "stable_digest",
    "CsvTraceSink",
    "NdjsonTraceSink",
    "TraceSink",
    "record_to_json_dict",
    "CampaignTelemetry",
    "WorkerHealth",
    "read_rss_kb",
    "SPAN_BATCH",
    "SPAN_CAMPAIGN",
    "SPAN_UNIT",
    "Span",
    "SpanWriter",
    "read_span_log",
    "aggregate_span_log",
    "format_report",
    "render_report",
    "load_schema",
    "validate",
    "validate_journal_file",
    "validate_manifest_file",
    "validate_span_file",
    "validate_trace_file",
]
