"""Post-hoc campaign reports from span logs: ``repro-muzha report``.

A finished campaign's span log (see :mod:`repro.obs.spans` /
:mod:`repro.obs.engine`) contains everything needed to answer the
operator questions a silent batch run raises — how fast did it go, were
the workers balanced, did the cache help, what failed and what was slow:

* :func:`aggregate_span_log` folds a log into one plain-data summary
  (campaign facts, throughput-over-time buckets, per-worker and per-host
  utilization — cluster workers are named ``host:wN`` — cache hit ratio,
  retry/quarantine tables, slowest-unit top-k, PHY lane counters);
* :func:`format_report` renders that summary as the human-readable text
  the CLI prints (``--json`` emits the aggregate itself).

Aggregation is pure file-in/dict-out — no simulation imports, so reports
work on logs shipped from another machine with nothing but the ``repro``
package installed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from pathlib import Path

from .spans import SPAN_BATCH, SPAN_CAMPAIGN, SPAN_UNIT, read_span_log

PathLike = Union[str, Path]

#: Timeline resolution of the throughput-over-time section.
DEFAULT_BUCKETS = 20

#: Rows in the slowest-unit table.
DEFAULT_TOP_K = 10


def _fmt_table(header: Sequence[str], rows: Sequence[Sequence[Any]],
               title: Optional[str] = None) -> str:
    """Minimal fixed-width table (kept local: repro.obs must not import
    repro.experiments, which imports repro.obs)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _sparkline(values: Sequence[float]) -> str:
    """One-line unicode bar series for the throughput timeline."""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) if values else 0.0
    if top <= 0:
        return " " * len(values)
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1) + 0.5))]
        for v in values
    )


class SpanLogError(ValueError):
    """The span log is missing the structure a report needs."""


def _worker_host(wid: str) -> str:
    """Host a worker id belongs to.

    Cluster transports name remote workers ``host:wN`` while local pool
    workers keep the bare ``wN`` form, so the id itself carries the
    attribution (``w3`` → ``local``, ``nodeb:w2`` → ``nodeb``).
    """
    return wid.rsplit(":", 1)[0] if ":" in wid else "local"


def aggregate_span_log(
    path: PathLike,
    buckets: int = DEFAULT_BUCKETS,
    top_k: int = DEFAULT_TOP_K,
) -> Dict[str, Any]:
    """Fold one span log into a plain-data campaign summary.

    Tolerates a log from a killed campaign: an unclosed campaign/batch/unit
    span (coordinator SIGKILLed mid-run) or a torn final line (killed
    mid-write) yields a *partial* summary covering what was recorded, with
    ``campaign.status`` reported as ``"interrupted"`` and
    ``campaign.partial`` set — instead of a referential-validation error.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    try:
        records = read_span_log(path, skip_partial_tail=True)
    except ValueError as exc:
        raise SpanLogError(str(exc)) from exc
    opens: Dict[str, Dict[str, Any]] = {}
    closes: Dict[str, Dict[str, Any]] = {}
    events: List[Dict[str, Any]] = []
    heartbeats: List[Dict[str, Any]] = []
    progress_last: Optional[Dict[str, Any]] = None
    for record in records:
        kind = record.get("kind")
        if kind == "span_open":
            opens[record["id"]] = record
        elif kind == "span_close":
            closes[record["id"]] = record
        elif kind == "event":
            events.append(record)
        elif kind == "heartbeat":
            heartbeats.append(record)
        elif kind == "progress":
            progress_last = record

    campaign_open = next(
        (r for r in opens.values() if r.get("span") == SPAN_CAMPAIGN), None
    )
    if campaign_open is None:
        raise SpanLogError(f"{path}: no campaign span in log")
    campaign_close = closes.get(campaign_open["id"])
    c_attrs = campaign_open.get("attrs", {})
    end_attrs = (campaign_close or {}).get("attrs", {})

    # -- units ----------------------------------------------------------------
    units: List[Dict[str, Any]] = []
    for span_id, record in opens.items():
        if record.get("span") != SPAN_UNIT:
            continue
        close = closes.get(span_id)
        attrs = record.get("attrs", {})
        close_attrs = (close or {}).get("attrs", {})
        t1 = (close or {}).get("t1")
        units.append({
            "index": attrs.get("index"),
            "attempt": attrs.get("attempt", 1),
            "worker": attrs.get("worker", "?"),
            "cached": bool(attrs.get("cached")),
            "status": (close or {}).get("status", "incomplete"),
            "t0": record.get("t0"),
            "t1": t1,
            "dur_s": (t1 - record["t0"])
            if t1 is not None and record.get("t0") is not None else None,
            "timings": close_attrs.get("timings"),
            "phy_lane": close_attrs.get("phy_lane"),
            "error": close_attrs.get("error"),
        })
    units.sort(key=lambda u: (u["t1"] is None, u["t1"], u["index"]))
    ok_units = [u for u in units if u["status"] == "ok"]
    executed_units = [u for u in ok_units if not u["cached"]]

    t_begin = campaign_open.get("t0")
    t_end = (campaign_close or {}).get("t1")
    if t_end is None:
        t_end = max(
            (u["t1"] for u in units if u["t1"] is not None), default=t_begin
        )
    wall_s = max(0.0, (t_end or 0.0) - (t_begin or 0.0))

    # -- throughput over time -------------------------------------------------
    width = wall_s / buckets if wall_s > 0 else 0.0
    counts = [0] * buckets
    if width > 0:
        for unit in ok_units:
            if unit["t1"] is None:
                continue
            slot = min(buckets - 1, int((unit["t1"] - t_begin) / width))
            counts[max(0, slot)] += 1
    timeline = {
        "bucket_s": width,
        "completions": counts,
        "units_per_s": [
            (count / width) if width > 0 else 0.0 for count in counts
        ],
    }

    # -- workers --------------------------------------------------------------
    workers: Dict[str, Dict[str, Any]] = {}
    for beat in heartbeats:
        attrs = beat.get("attrs", {})
        entry = workers.setdefault(beat.get("worker", "?"), {})
        # Heartbeats are cumulative; the last one per worker wins.
        entry.update({
            "units_done": attrs.get("units_done", 0),
            "failures": attrs.get("failures", 0),
            "busy_s": attrs.get("busy_s", 0.0),
            "idle_s": attrs.get("idle_s", 0.0),
            "pid": attrs.get("pid"),
            "rss_kb": attrs.get("rss_kb"),
            "heartbeats": entry.get("heartbeats", 0) + 1,
        })
    for entry in workers.values():
        active = entry.get("busy_s", 0.0) + entry.get("idle_s", 0.0)
        entry["utilization"] = (
            entry.get("busy_s", 0.0) / active if active > 0 else 0.0
        )

    # -- hosts (cluster runs) -------------------------------------------------
    # Roll per-worker stats up by host so a distributed campaign shows
    # where the work actually landed. Units completed come from the unit
    # spans (authoritative even if a worker died between heartbeats).
    hosts: Dict[str, Dict[str, Any]] = {}
    for name, stats in workers.items():
        entry = hosts.setdefault(_worker_host(name), {
            "workers": 0, "units_done": 0, "failures": 0,
            "busy_s": 0.0, "idle_s": 0.0,
        })
        entry["workers"] += 1
        entry["units_done"] += stats.get("units_done", 0)
        entry["failures"] += stats.get("failures", 0)
        entry["busy_s"] += stats.get("busy_s", 0.0)
        entry["idle_s"] += stats.get("idle_s", 0.0)
    for unit in ok_units:
        entry = hosts.setdefault(_worker_host(str(unit["worker"])), {
            "workers": 0, "units_done": 0, "failures": 0,
            "busy_s": 0.0, "idle_s": 0.0,
        })
        entry["units_ok"] = entry.get("units_ok", 0) + 1
    for entry in hosts.values():
        active = entry["busy_s"] + entry["idle_s"]
        entry.setdefault("units_ok", 0)
        entry["utilization"] = entry["busy_s"] / active if active > 0 else 0.0

    # -- events: cache / retries / workers ------------------------------------
    def count_events(name: str) -> int:
        return sum(1 for e in events if e.get("name") == name)

    cache = {
        "hits": count_events("cache.hit"),
        "misses": count_events("cache.miss"),
        "evictions": count_events("cache.evict"),
    }
    looked_up = cache["hits"] + cache["misses"]
    cache["hit_ratio"] = cache["hits"] / looked_up if looked_up else None

    retries: Dict[int, Dict[str, Any]] = {}
    for event in events:
        if event.get("name") != "retry":
            continue
        attrs = event.get("attrs", {})
        entry = retries.setdefault(
            attrs.get("index"), {"retries": 0, "last_error": None}
        )
        entry["retries"] += 1
        entry["last_error"] = attrs.get("error")
    quarantined = [
        dict(event.get("attrs", {})) for event in events
        if event.get("name") == "quarantine"
    ]

    worker_events = {
        "spawned": count_events("worker.spawn"),
        "replaced": sum(
            1 for e in events
            if e.get("name") == "worker.spawn"
            and e.get("attrs", {}).get("replacement")
        ),
        "crashed": count_events("worker.crash"),
        "timed_out": count_events("worker.timeout"),
    }

    # -- slowest units --------------------------------------------------------
    slowest = sorted(
        (u for u in executed_units if u["dur_s"] is not None),
        key=lambda u: u["dur_s"], reverse=True,
    )[:top_k]

    batches = [r for r in opens.values() if r.get("span") == SPAN_BATCH]
    rate = len(ok_units) / wall_s if wall_s > 0 else None

    return {
        "campaign": {
            "id": campaign_open["id"],
            # A campaign span that never closed is a killed (or still
            # running) campaign: report it as interrupted, not an error.
            "status": (campaign_close or {}).get("status", "interrupted"),
            "partial": campaign_close is None,
            "pool_mode": c_attrs.get("pool_mode"),
            "jobs": c_attrs.get("jobs"),
            "total": c_attrs.get("total"),
            "t_begin": t_begin,
            "t_end": t_end,
            "wall_s": wall_s,
            "units_per_s": rate,
            "executed": end_attrs.get("executed", len(executed_units)),
            "cache_hits": end_attrs.get("cache_hits", cache["hits"]),
            "failed": end_attrs.get("failed", len(quarantined)),
            "remaining": end_attrs.get("remaining", 0),
            "counters": end_attrs.get("counters", {}),
        },
        "timeline": timeline,
        "workers": {w: workers[w] for w in sorted(workers)},
        "hosts": {h: hosts[h] for h in sorted(hosts)},
        "cache": cache,
        "retries": {
            str(idx): retries[idx] for idx in sorted(
                retries, key=lambda k: (k is None, k)
            )
        },
        "quarantined": quarantined,
        "slowest_units": slowest,
        "worker_events": worker_events,
        "phy": end_attrs.get("phy", {}),
        "batches": len(batches),
        "units": {
            "total_attempts": len(units),
            "ok": len(ok_units),
            "cached": len(ok_units) - len(executed_units),
            "executed": len(executed_units),
        },
        "last_progress": progress_last,
    }


def format_report(summary: Dict[str, Any]) -> str:
    """Render one :func:`aggregate_span_log` summary as readable text."""
    campaign = summary["campaign"]
    units = summary["units"]
    lines: List[str] = []
    rate = campaign.get("units_per_s")
    lines.append(
        f"campaign {campaign['id']}: {units['ok']}/{campaign.get('total')} "
        f"units ok ({units['cached']} cached), pool={campaign['pool_mode']} "
        f"jobs={campaign['jobs']}, status={campaign['status']}"
    )
    lines.append(
        f"  wall {campaign['wall_s']:.2f}s"
        + (f", {rate:.1f} units/s" if rate is not None else "")
        + f", {summary['batches']} dispatch batches"
    )
    if campaign.get("partial"):
        lines.append(
            "  log ends mid-campaign (killed or still running) — "
            "aggregates below are PARTIAL"
        )
    elif campaign["status"] == "interrupted":
        remaining = campaign.get("remaining")
        lines.append(
            "  campaign was interrupted by graceful shutdown"
            + (f" ({remaining} units remaining)" if remaining else "")
            + " — resumable with --resume"
        )

    timeline = summary["timeline"]
    if timeline["bucket_s"] > 0:
        lines.append("")
        lines.append(
            f"throughput over time ({timeline['bucket_s']:.2f}s buckets, "
            f"peak {max(timeline['units_per_s']):.1f} units/s):"
        )
        lines.append(f"  |{_sparkline(timeline['units_per_s'])}|")

    if summary["workers"]:
        lines.append("")
        rows = []
        for name, stats in summary["workers"].items():
            rss = stats.get("rss_kb")
            rows.append([
                name,
                stats.get("units_done", 0),
                stats.get("failures", 0),
                f"{stats.get('busy_s', 0.0):.2f}",
                f"{stats.get('idle_s', 0.0):.2f}",
                f"{stats.get('utilization', 0.0) * 100:5.1f}%",
                f"{rss}" if rss is not None else "-",
            ])
        lines.append(_fmt_table(
            ["worker", "units", "fails", "busy_s", "idle_s", "util",
             "rss_kb"],
            rows, title="workers",
        ))

    hosts = summary.get("hosts") or {}
    # A hosts rollup only says something the worker table does not when
    # remote workers took part (any host other than the implicit local).
    if any(host != "local" for host in hosts):
        lines.append("")
        rows = [
            [
                name,
                stats.get("workers", 0),
                stats.get("units_ok", 0),
                stats.get("failures", 0),
                f"{stats.get('busy_s', 0.0):.2f}",
                f"{stats.get('utilization', 0.0) * 100:5.1f}%",
            ]
            for name, stats in hosts.items()
        ]
        lines.append(_fmt_table(
            ["host", "workers", "units", "fails", "busy_s", "util"],
            rows, title="hosts",
        ))

    cache = summary["cache"]
    ratio = cache["hit_ratio"]
    lines.append("")
    lines.append(
        f"cache: {cache['hits']} hits / {cache['misses']} misses"
        + (f" ({ratio * 100:.0f}% hit ratio)" if ratio is not None else "")
        + f", {cache['evictions']} corruption evictions"
    )

    workers_ev = summary["worker_events"]
    if workers_ev["crashed"] or workers_ev["timed_out"]:
        lines.append(
            f"worker faults: {workers_ev['crashed']} crashes, "
            f"{workers_ev['timed_out']} watchdog kills, "
            f"{workers_ev['replaced']} replacements"
        )

    if summary["retries"]:
        lines.append("")
        rows = [
            [idx, entry["retries"], (entry.get("last_error") or "")[:60]]
            for idx, entry in summary["retries"].items()
        ]
        lines.append(_fmt_table(["unit", "retries", "last error"], rows,
                                title="retried units"))
    if summary["quarantined"]:
        lines.append("")
        rows = [
            [q.get("index"), q.get("attempts"), (q.get("error") or "")[:60]]
            for q in summary["quarantined"]
        ]
        lines.append(_fmt_table(["unit", "attempts", "error"], rows,
                                title="quarantined units (results PARTIAL)"))

    if summary["slowest_units"]:
        lines.append("")
        rows = []
        for unit in summary["slowest_units"]:
            timings = unit.get("timings") or {}
            rows.append([
                unit["index"],
                unit["worker"],
                f"{unit['dur_s']:.3f}",
                f"{timings.get('sim_s', 0.0):.3f}" if timings else "-",
                f"{timings.get('setup_s', 0.0):.3f}" if timings else "-",
                unit.get("phy_lane") or "-",
            ])
        lines.append(_fmt_table(
            ["unit", "worker", "span_s", "sim_s", "setup_s", "lane"],
            rows, title=f"slowest units (top {len(rows)})",
        ))

    phy = summary.get("phy") or {}
    if phy:
        lines.append("")
        frames = phy.get("numpy_fanout_frames", 0) + phy.get(
            "loop_fanout_frames", 0
        )
        lane_units = ", ".join(
            f"{key.split('.')[1]}={value}"
            for key, value in sorted(phy.items()) if key.startswith("lane.")
        )
        lines.append(
            f"phy: lanes [{lane_units}], {phy.get('transmissions', 0)} "
            f"frames ({phy.get('numpy_fanout_frames', 0)} numpy-kernel / "
            f"{phy.get('loop_fanout_frames', 0)} loop of {frames} batched)"
        )
    return "\n".join(lines)


def render_report(path: PathLike, as_json: bool = False,
                  buckets: int = DEFAULT_BUCKETS,
                  top_k: int = DEFAULT_TOP_K) -> str:
    """The full ``repro-muzha report`` payload for one span log."""
    summary = aggregate_span_log(path, buckets=buckets, top_k=top_k)
    if as_json:
        return json.dumps(summary, sort_keys=True, indent=2)
    return format_report(summary)


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_TOP_K",
    "SpanLogError",
    "aggregate_span_log",
    "format_report",
    "render_report",
]
