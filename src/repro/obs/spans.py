"""Span/event model for campaign-scale telemetry.

Single runs get deep visibility from the trace bus (:mod:`repro.sim.trace`)
— but a campaign is not a simulation, it is a *fleet* of simulations, and
its interesting moments (batch dispatch, cache hits, worker crashes,
retries) happen in the coordinating process between runs.  This module is
the wire format for that layer:

* a **span** is a named interval with an id, an optional parent id,
  wall-clock start/stop and structured attributes.  Campaign telemetry
  uses three span names, nested ``campaign`` → ``dispatch-batch`` →
  ``unit-attempt``;
* an **event** is a point-in-time record (``cache.hit``, ``retry``,
  ``worker.crash``, …);
* a **heartbeat** is a per-worker gauge sample (units done, busy/idle
  seconds, RSS);
* a **progress** record is the live ``done/total`` ticker a consumer can
  tail.

Records stream as NDJSON through :class:`SpanWriter` — one JSON object per
line, flushed per record so ``tail -f`` (or a pipe consumer) sees a running
campaign live.  The target may be a filesystem path, an already-open text
stream, or an inherited pipe file descriptor (``fd:N`` or a plain ``int``),
so a supervising process can collect telemetry without touching the disk.

The line shapes are committed in ``schemas/span_record.schema.json`` and
checked by :func:`repro.obs.validate.validate_span_file`.  Nothing here
runs inside a simulation: span emission is coordinator-side by
construction, which is how the "telemetry off the simulation hot path"
constraint is kept structurally rather than by discipline.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Union

#: Span names used by the campaign engine, outermost first.
SPAN_CAMPAIGN = "campaign"
SPAN_BATCH = "dispatch-batch"
SPAN_UNIT = "unit-attempt"

SPAN_NAMES = (SPAN_CAMPAIGN, SPAN_BATCH, SPAN_UNIT)

#: Record kinds a span log may contain (``kind`` field of every line).
RECORD_KINDS = ("span_open", "span_close", "event", "heartbeat", "progress")

#: Terminal statuses a span may close with.  ``ok`` is a completed unit or
#: batch; ``error`` is a unit whose worker reported an exception; ``crash``
#: and ``timeout`` are supervisor verdicts (pipe EOF / watchdog kill);
#: ``aborted`` marks a batch cut short by its worker dying mid-stream;
#: ``interrupted`` closes a campaign span cut short by graceful shutdown
#: (SIGINT/SIGTERM drained and checkpointed — resumable).
SPAN_STATUSES = ("ok", "error", "crash", "timeout", "aborted", "interrupted")

SpanTarget = Union[str, Path, int, IO[str]]


@dataclass
class Span:
    """One open interval: identity, lineage, start time, attributes.

    ``Span`` is coordinator bookkeeping, not the wire format — the writer
    serializes ``span_open``/``span_close`` lines from it so a consumer can
    see a span *begin* (a campaign span stays open for the whole run).
    """

    id: str
    name: str
    t0: float
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def open_record(self) -> Dict[str, Any]:
        record = {
            "kind": "span_open",
            "id": self.id,
            "span": self.name,
            "parent": self.parent,
            "t0": self.t0,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def close_record(self, t1: float, status: str = "ok",
                     attrs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        record = {"kind": "span_close", "id": self.id, "t1": t1,
                  "status": status}
        if attrs:
            record["attrs"] = attrs
        return record


class SpanWriter:
    """Line-buffered NDJSON writer for span/event/progress records.

    ``target`` selects the transport:

    * a path (``str``/``Path``) — opened for writing, parents created;
    * ``"fd:N"`` or a plain ``int`` — an inherited pipe/socket descriptor,
      wrapped as a text stream (the descriptor is owned and closed by the
      writer);
    * an open text stream — used as-is and *not* closed on :meth:`close`
      (the caller owns it), which is what the tests and ``StringIO``
      consumers want.

    Every record is written as one compact, key-sorted JSON line and
    flushed immediately: a consumer tailing the file (or reading the pipe)
    observes the campaign in real time, and a crashed coordinator leaves at
    most zero bytes of partial line behind per record boundary.
    """

    def __init__(self, target: SpanTarget) -> None:
        self.records_written = 0
        self.counts: Dict[str, int] = {}
        self._owns_stream = True
        if isinstance(target, int):
            self._stream: IO[str] = os.fdopen(target, "w", encoding="utf-8")
        elif isinstance(target, (str, Path)) and str(target).startswith("fd:"):
            self._stream = os.fdopen(int(str(target)[3:]), "w",
                                     encoding="utf-8")
        elif isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("w", encoding="utf-8", newline="")
        else:
            self._stream = target
            self._owns_stream = False

    def write(self, record: Dict[str, Any]) -> None:
        """Serialize one record as a flushed NDJSON line."""
        json.dump(record, self._stream, separators=(",", ":"),
                  sort_keys=True, default=str)
        self._stream.write("\n")
        self._stream.flush()
        self.records_written += 1
        kind = record.get("kind", "?")
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            try:
                self._stream.close()
            except (OSError, ValueError):  # pragma: no cover - pipe gone
                pass
        self._stream = None  # type: ignore[assignment]

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SpanIdAllocator:
    """Monotonic span-id factory: ``c1``, ``b2``, ``u3``, …

    Ids are unique within one log and prefix-typed so a human reading the
    raw NDJSON can tell a campaign span from a batch or unit span at a
    glance.  Nothing about them is random: span logs of identical campaigns
    differ only in wall-clock fields.
    """

    _PREFIX = {SPAN_CAMPAIGN: "c", SPAN_BATCH: "b", SPAN_UNIT: "u"}

    def __init__(self) -> None:
        self._next = 0

    def allocate(self, name: str) -> str:
        self._next += 1
        return f"{self._PREFIX.get(name, 's')}{self._next}"


def read_span_log(path: Union[str, Path],
                  skip_partial_tail: bool = False) -> List[Dict[str, Any]]:
    """All records of an NDJSON span log, in file order.

    Raises ``ValueError`` on an unparsable line — use
    :func:`repro.obs.validate.validate_span_file` for a diagnostic listing
    instead of an exception.  ``skip_partial_tail=True`` tolerates exactly
    one torn *final* line with no trailing newline — what a coordinator
    killed mid-write leaves behind — so post-mortem consumers
    (``repro-muzha report``, ``doctor``) can aggregate a partial log.
    """
    text = Path(path).read_text(encoding="utf-8")
    torn_tail = skip_partial_tail and bool(text) and not text.endswith("\n")
    lines = text.splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if torn_tail and lineno == len(lines):
                break
            raise ValueError(f"{path}: line {lineno}: {exc}") from exc
    return records


def wall_clock() -> float:
    """The wall-clock source for span timestamps (monkeypatchable)."""
    return time.time()


__all__ = [
    "RECORD_KINDS",
    "SPAN_BATCH",
    "SPAN_CAMPAIGN",
    "SPAN_NAMES",
    "SPAN_STATUSES",
    "SPAN_UNIT",
    "Span",
    "SpanIdAllocator",
    "SpanWriter",
    "read_span_log",
    "wall_clock",
]
