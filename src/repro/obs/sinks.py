"""Pluggable file sinks for the trace bus.

A sink subscribes to one or more event names on a
:class:`~repro.sim.trace.TraceBus` and serializes every matching record to
a file as it is published:

* :class:`NdjsonTraceSink` — one JSON object per line
  (``{"t": ..., "source": ..., "event": ..., "fields": {...}}``), the
  format ``schemas/trace_record.schema.json`` describes and
  :mod:`repro.obs.validate` checks;
* :class:`CsvTraceSink` — ``time,source,event,fields`` rows with the field
  dict JSON-encoded in the last column (lossless, spreadsheet-friendly).

Sinks honour the repo's tracing cost model: *attaching* a sink is what
turns the corresponding layer emits on (``TraceBus.wants`` starts
answering True); a run with no sink attached pays only the gating checks.
Detach (or leave the ``with`` block) and the bus recomputes its gates, so
a later untraced run on the same simulator is hot again.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, IO, Optional, Sequence, Union

from ..sim.trace import TraceBus, TraceRecord

PathLike = Union[str, Path]


def record_to_json_dict(record: TraceRecord) -> Dict[str, Any]:
    """The canonical JSON shape of one trace record."""
    return {
        "t": record.time,
        "source": record.source,
        "event": record.event,
        "fields": record.fields,
    }


class TraceSink:
    """Base class: subscription bookkeeping + lifecycle.

    ``events`` is either ``("*",)`` (everything) or a tuple of specific
    event names.  Mixing ``"*"`` with named events would double-deliver
    (the bus fans a record out to both match lists), so it is rejected.
    """

    def __init__(self, path: PathLike, events: Sequence[str] = ("*",)) -> None:
        events = tuple(events)
        if not events:
            raise ValueError("sink needs at least one event name")
        if "*" in events and len(events) > 1:
            raise ValueError('subscribe to "*" alone, not alongside names')
        self.path = Path(path)
        self.events = events
        self.records_written = 0
        self.counts: Dict[str, int] = {}
        self._bus: Optional[TraceBus] = None
        self._file: Optional[IO[str]] = None

    # -- lifecycle --------------------------------------------------------------

    def attach(self, bus: TraceBus) -> "TraceSink":
        """Open the file and start receiving matching records from ``bus``."""
        if self._bus is not None:
            raise RuntimeError("sink is already attached")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8", newline="")
        self._open()
        for event in self.events:
            bus.subscribe(event, self._on_record)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Stop receiving (re-gating the hot path) and close the file."""
        if self._bus is not None:
            for event in self.events:
                self._bus.unsubscribe(event, self._on_record)
            self._bus = None
        if self._file is not None:
            self._file.close()
            self._file = None

    close = detach

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    # -- record path ------------------------------------------------------------

    def _on_record(self, record: TraceRecord) -> None:
        self.records_written += 1
        self.counts[record.event] = self.counts.get(record.event, 0) + 1
        self._write(record)

    # -- format hooks -----------------------------------------------------------

    def _open(self) -> None:
        """Called once after the file is opened (headers etc.)."""

    def _write(self, record: TraceRecord) -> None:
        raise NotImplementedError


class NdjsonTraceSink(TraceSink):
    """Newline-delimited JSON, one trace record per line."""

    def _write(self, record: TraceRecord) -> None:
        json.dump(record_to_json_dict(record), self._file,
                  separators=(",", ":"), sort_keys=True, default=str)
        self._file.write("\n")


class CsvTraceSink(TraceSink):
    """CSV with a JSON-encoded ``fields`` column."""

    HEADER = ("time", "source", "event", "fields")

    def _open(self) -> None:
        self._writer = csv.writer(self._file)
        self._writer.writerow(self.HEADER)

    def _write(self, record: TraceRecord) -> None:
        self._writer.writerow(
            (repr(record.time), record.source, record.event,
             json.dumps(record.fields, separators=(",", ":"), sort_keys=True,
                        default=str))
        )
