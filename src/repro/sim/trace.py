"""Lightweight trace/instrumentation bus.

Layers publish structured trace records (``(time, source, event, fields)``)
to a :class:`TraceBus`; collectors subscribe by event name.  Tracing is
opt-in per event name so the hot path pays one dict lookup when nothing is
subscribed.

Hot-path discipline: instrumented layers must gate on :meth:`TraceBus.wants`
(or check :attr:`TraceBus.active` first when even the event-name string is
costly to build) *before* assembling trace fields, so an unsubscribed run
never constructs the field dict.  ``Simulator.emit`` gates again internally,
but the keyword arguments it receives are built by the caller — gating only
there is too late.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TraceRecord:
    """A single trace record emitted by a simulation component."""

    time: float
    source: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)


TraceCallback = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe hub for trace records."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[TraceCallback]] = {}
        self._wants_all = False

    @property
    def active(self) -> bool:
        """True if any subscriber exists at all (cheapest possible gate)."""
        return bool(self._subscribers)

    def subscribe(self, event: str, callback: TraceCallback) -> None:
        """Invoke ``callback`` for every record whose event name matches.

        Subscribe to ``"*"`` to receive everything.
        """
        self._subscribers.setdefault(event, []).append(callback)
        if event == "*":
            self._wants_all = True

    def unsubscribe(self, event: str, callback: TraceCallback) -> None:
        """Remove one prior subscription; the matching gates re-close.

        Dropping the last subscriber for an event makes :meth:`wants`
        answer False for it again (and :attr:`active` False once nothing
        at all is subscribed), so a traced run followed by an untraced run
        on the same simulator regains the full hot path.  Unsubscribing a
        callback that was never registered raises ``ValueError``.
        """
        callbacks = self._subscribers.get(event)
        if callbacks is None:
            raise ValueError(f"no subscribers for event {event!r}")
        callbacks.remove(callback)
        if not callbacks:
            del self._subscribers[event]
        if event == "*":
            self._wants_all = "*" in self._subscribers

    def wants(self, event: str) -> bool:
        """True if anything is subscribed to ``event`` (or to everything)."""
        return self._wants_all or event in self._subscribers

    def emit(self, record: TraceRecord) -> None:
        """Deliver ``record`` to all matching subscribers."""
        for callback in self._subscribers.get(record.event, ()):
            callback(record)
        if self._wants_all:
            for callback in self._subscribers.get("*", ()):
                callback(record)


class TraceRecorder:
    """Convenience collector that appends matching records to a list.

    Usable as a context manager: leaving the ``with`` block detaches the
    recorder (re-closing the bus gates) while keeping ``records`` for
    inspection.
    """

    def __init__(self, bus: TraceBus, event: str) -> None:
        self.records: List[TraceRecord] = []
        self._bus: TraceBus | None = bus
        self._event = event
        self._callback = self.records.append
        bus.subscribe(event, self._callback)

    def detach(self) -> None:
        """Stop recording; already-captured records stay available."""
        if self._bus is not None:
            self._bus.unsubscribe(self._event, self._callback)
            self._bus = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
