"""Lightweight trace/instrumentation bus.

Layers publish structured trace records (``(time, source, event, fields)``)
to a :class:`TraceBus`; collectors subscribe by event name.  Tracing is
opt-in per event name so the hot path pays one dict lookup when nothing is
subscribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TraceRecord:
    """A single trace record emitted by a simulation component."""

    time: float
    source: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)


TraceCallback = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe hub for trace records."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[TraceCallback]] = {}

    def subscribe(self, event: str, callback: TraceCallback) -> None:
        """Invoke ``callback`` for every record whose event name matches.

        Subscribe to ``"*"`` to receive everything.
        """
        self._subscribers.setdefault(event, []).append(callback)

    def wants(self, event: str) -> bool:
        """True if anything is subscribed to ``event`` (or to everything)."""
        return event in self._subscribers or "*" in self._subscribers

    def emit(self, record: TraceRecord) -> None:
        """Deliver ``record`` to all matching subscribers."""
        for callback in self._subscribers.get(record.event, ()):
            callback(record)
        for callback in self._subscribers.get("*", ()):
            callback(record)


class TraceRecorder:
    """Convenience collector that appends matching records to a list."""

    def __init__(self, bus: TraceBus, event: str) -> None:
        self.records: List[TraceRecord] = []
        bus.subscribe(event, self.records.append)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
