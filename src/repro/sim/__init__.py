"""Discrete-event simulation kernel (substrate S1).

Provides the scheduler, events, timers, seeded RNG streams, tracing, and the
:class:`Simulator` facade that composes them for a single run.
"""

from .event import Event
from .rng import RngRegistry, derive_run_seed, derive_seed
from .scheduler import EventScheduler, SchedulerError
from .simulator import Simulator
from .timer import PeriodicTimer, Timer
from .trace import TraceBus, TraceRecord, TraceRecorder
from . import units

__all__ = [
    "Event",
    "EventScheduler",
    "SchedulerError",
    "PeriodicTimer",
    "RngRegistry",
    "Simulator",
    "Timer",
    "TraceBus",
    "TraceRecord",
    "TraceRecorder",
    "derive_run_seed",
    "derive_seed",
    "units",
]
