"""Restartable one-shot and periodic timers built on the scheduler.

These wrap the raw event API with the idioms protocol code needs:
``restart()`` (cancel + reschedule), ``pause()``/``resume()`` with remaining
time preserved (used by 802.11 backoff), and periodic ticks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .event import Event
from .scheduler import EventScheduler


class Timer:
    """A one-shot timer that can be (re)started, stopped, paused and resumed."""

    def __init__(
        self,
        scheduler: EventScheduler,
        callback: Callable[[], Any],
        name: Optional[str] = None,
    ) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._name = name
        self._event: Optional[Event] = None
        self._remaining: Optional[float] = None

    @property
    def running(self) -> bool:
        """True while the timer is armed (and not paused)."""
        return self._event is not None and self._event.active

    @property
    def paused(self) -> bool:
        """True if the timer was paused with time remaining."""
        return self._remaining is not None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if running, else None."""
        if self.running:
            return self._event.time  # type: ignore[union-attr]
        return None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now (restarting if armed)."""
        self.stop()
        self._event = self._scheduler.schedule_after(
            delay, self._fire, name=self._name
        )

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`, for readability at call sites."""
        self.start(delay)

    def stop(self) -> None:
        """Disarm the timer, discarding any paused remainder."""
        if self._event is not None:
            self._scheduler.cancel(self._event)
            self._event = None
        self._remaining = None

    def pause(self) -> None:
        """Freeze the timer, remembering how much time was left."""
        if not self.running:
            return
        self._remaining = max(0.0, self._event.time - self._scheduler.now)  # type: ignore[union-attr]
        self._scheduler.cancel(self._event)
        self._event = None

    def resume(self) -> None:
        """Re-arm a paused timer with its remaining time."""
        if self._remaining is None:
            return
        remaining = self._remaining
        self._remaining = None
        self._event = self._scheduler.schedule_after(
            remaining, self._fire, name=self._name
        )

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """Fires ``callback`` every ``interval`` seconds until stopped."""

    def __init__(
        self,
        scheduler: EventScheduler,
        interval: float,
        callback: Callable[[], Any],
        name: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._scheduler = scheduler
        self.interval = interval
        self._callback = callback
        self._name = name
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        return self._event is not None and self._event.active

    def start(self, first_delay: Optional[float] = None) -> None:
        """Start ticking; first tick after ``first_delay`` (default interval)."""
        self.stop()
        delay = self.interval if first_delay is None else first_delay
        self._event = self._scheduler.schedule_after(delay, self._tick, name=self._name)

    def stop(self) -> None:
        if self._event is not None:
            self._scheduler.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        self._event = self._scheduler.schedule_after(
            self.interval, self._tick, name=self._name
        )
        self._callback()
