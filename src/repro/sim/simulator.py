"""The :class:`Simulator` facade: scheduler + RNG registry + trace bus.

Every simulated entity holds a reference to one ``Simulator``; it is the
composition root for a run and the only object scenario code needs to create
before building topology and protocol stacks.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from .event import Event
from .rng import RngRegistry
from .scheduler import EventScheduler
from .trace import TraceBus, TraceRecord


class Simulator:
    """A single deterministic simulation run."""

    def __init__(self, seed: int = 1) -> None:
        self.scheduler = EventScheduler()
        self.rng = RngRegistry(seed)
        self.trace = TraceBus()
        self.seed = seed

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.scheduler.now

    # -- scheduling shortcuts --------------------------------------------------

    def at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        return self.scheduler.schedule(time, callback, *args, **kwargs)

    def after(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.scheduler.schedule_after(delay, callback, *args, **kwargs)

    # Aliases matching the EventScheduler API so helpers like Timer can be
    # constructed from either a Simulator or a bare EventScheduler.
    def schedule(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        return self.scheduler.schedule(time, callback, *args, **kwargs)

    def schedule_after(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        return self.scheduler.schedule_after(delay, callback, *args, **kwargs)

    def schedule_batch(self, entries: list) -> int:
        """Bulk-schedule fire-and-forget ``[(time, callback, args, name),
        ...]`` entries (see :meth:`EventScheduler.schedule_batch`)."""
        return self.scheduler.schedule_batch(entries)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event (None is a no-op)."""
        self.scheduler.cancel(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop (see :meth:`EventScheduler.run`)."""
        self.scheduler.run(until=until, max_events=max_events)

    def stop(self) -> None:
        """Stop the running event loop after the current event."""
        self.scheduler.stop()

    # -- randomness -------------------------------------------------------------

    def stream(self, name: str) -> random.Random:
        """Named independent RNG stream derived from the master seed."""
        return self.rng.stream(name)

    # -- tracing ------------------------------------------------------------------

    def emit(self, source: str, event: str, **fields: Any) -> None:
        """Publish a trace record if anyone is listening for ``event``."""
        if self.trace.wants(event):
            self.trace.emit(TraceRecord(self.now, source, event, fields))
