"""The discrete-event scheduler at the heart of the simulator.

The design mirrors classic network simulators (NS2's ``Scheduler``): a binary
heap of pending events, a monotonically advancing clock, and lazy deletion of
cancelled events.  Determinism guarantees:

* events at equal timestamps run in (priority, insertion) order;
* the clock never moves backwards — scheduling into the past raises.

Hot-path layout: the heap holds ``(time, priority, seq, event)`` tuples, so
``heapq`` sift comparisons resolve on the scalar prefix at C speed instead of
calling back into Python (``seq`` is unique; comparisons never reach the
event object).  ``run()`` drives the heap directly in one tight loop rather
than composing :meth:`peek_time` + :meth:`step`, and retired event objects
(fired, or cancelled and popped) go on a bounded freelist so steady-state
schedule→cancel→reschedule churn — the MAC backoff pattern — allocates
nothing.  See the recycling contract in :mod:`repro.sim.event`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from .event import Event

#: Upper bound on recycled Event objects kept for reuse.  Peak live events in
#: a run is what matters for hit rate; beyond this the allocator is fine.
_FREELIST_MAX = 4096


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class EventScheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = EventScheduler()
        sched.schedule(1.5, callback, arg1, arg2)
        sched.run(until=10.0)
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._free: list = []
        self._now = 0.0
        self._seq = 0
        self._pending = 0
        self._processed = 0
        self._running = False
        self._stopped = False

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Returns the :class:`Event`, whose ``cancel()`` removes it (lazily).
        The returned object may be a recycled instance; drop the reference
        once the event fires or is cancelled.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at {time:.9f}, now is {self._now:.9f}"
            )
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
            event.name = name
        else:
            event = Event(time, seq, callback, args, priority=priority, name=name)
        heappush(self._heap, (time, priority, seq, event))
        self._pending += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule(
            self._now + delay, callback, *args, priority=priority, name=name
        )

    def schedule_batch(self, entries: list) -> int:
        """Bulk-schedule ``[(time, callback, args, name), ...]`` in one call.

        The PHY fan-out schedules 2k events per frame; paying the
        :meth:`schedule` call protocol (argument re-packing, per-call
        attribute traffic) *and* full :class:`Event` construction (freelist
        bookkeeping plus seven attribute stores) 2k times is what dominates
        the transmit hot path.  Batch entries are therefore **fire-and-
        forget**: the heap holds a bare ``(callback, args)`` tuple in the
        event slot — built in two allocations, no :class:`Event`, no
        freelist traffic — and the run loop dispatches it with one
        ``type(...) is tuple`` check.  Execution semantics are otherwise
        identical to calling ``schedule(time, callback, *args)`` once per
        entry, in entry order:

        * sequence numbers are assigned in entry order, so equal-timestamp
          entries fire in entry order and interleave deterministically with
          surrounding scalar ``schedule`` calls — the event-order contract
          golden traces pin;
        * ``priority`` is fixed at 0 (every PHY/MAC data-path event uses
          the default priority) and each entry's ``name`` is accepted for
          call-site symmetry but not retained;
        * each entry is checked against the clock — scheduling into the past
          raises :class:`SchedulerError` (entries before the failing one
          stay scheduled, as with individual calls).

        The trade for the speed is control: batch entries return no handles
        and **cannot be cancelled**.  That fits the PHY fan-out exactly —
        signal arrivals/departures are never revoked (even radio shutdown
        just lets stale deliveries no-op) and the channel discards the
        handles on the scalar path too.  Work that may need cancelling must
        use :meth:`schedule`.

        Insertion strategy: a measured ``heappush`` loop.  The alternative —
        ``list.extend`` + ``heapify`` — is O(heap) per batch, and loses as
        soon as the pending set (MAC timers, TCP RTOs, other in-flight
        signals) outgrows the batch, which it always does mid-run; per-push
        sift costs stay O(log pending) and touch only the entries' own heap
        paths.  Returns the number of entries scheduled.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        push = heappush
        count = 0
        for time, callback, args, _name in entries:
            if time < now:
                self._seq = seq
                self._pending += count
                raise SchedulerError(
                    f"cannot schedule event at {time:.9f}, now is {now:.9f}"
                )
            seq += 1
            push(heap, (time, 0, seq, (callback, args)))
            count += 1
        self._seq = seq
        self._pending += count
        return count

    def reserve_seqs(self, n: int) -> int:
        """Claim ``n`` consecutive sequence numbers; returns the first.

        For :meth:`bulk_heap_insert`: the caller stamps its items with
        ``first, first + 1, ...`` in the order the events would have been
        ``schedule()``-d, keeping the equal-timestamp tie-break contract
        intact around the bulk insertion.
        """
        first = self._seq + 1
        self._seq += n
        return first

    def bulk_heap_insert(self, items: list) -> None:
        """Insert fully-formed fire-and-forget heap items, no questions asked.

        Each item must be ``(time, 0, seq, (callback, args))`` with a seq
        claimed from :meth:`reserve_seqs`, and the caller **guarantees**
        ``time >= now`` for every item — there is deliberately no per-item
        clock check here (a past time would drag the clock backwards when it
        fires).  The PHY fan-out meets the guarantee structurally: its times
        are ``now + (non-negative delay/duration sums)``, with the delays
        validated once at fan-out build time.

        This is the unsafe-fast bottom layer of :meth:`schedule_batch`,
        split out for the per-frame hot path: the channel builds the heap
        tuples directly while it walks its fan-out, so bulk insertion costs
        one ``heappush`` per event and nothing else.  Everything that wants
        boundary checks or plainer entries should use :meth:`schedule_batch`.
        """
        heap = self._heap
        push = heappush
        for item in items:
            push(heap, item)
        self._pending += len(items)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel ``event`` if it is still pending.  ``None`` is a no-op.

        Cancelling an event that already fired (including the event whose
        callback is currently executing) is a no-op too — it left the
        pending set when it ran.
        """
        if event is not None and not event.cancelled and not event.fired:
            event.cancelled = True
            self._pending -= 1

    def _recycle(self, event: Event) -> None:
        """Park a retired event for reuse, dropping its payload references.

        ``fired``/``cancelled``/``time``/``name`` are deliberately left in
        place so a holder that inspects a retired handle still sees its
        terminal state; everything is reset when the object is reissued.
        """
        event.callback = None  # type: ignore[assignment]
        event.args = ()
        if len(self._free) < _FREELIST_MAX:
            self._free.append(event)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next live event.  Returns False if queue is empty."""
        heap = self._heap
        while heap:
            time, _, _, event = heappop(heap)
            if type(event) is tuple:  # fire-and-forget batch entry
                self._pending -= 1
                self._now = time
                self._processed += 1
                event[0](*event[1])
                return True
            if event.cancelled:
                self._recycle(event)
                continue
            self._pending -= 1
            # Mark before invoking: a callback that cancels *itself* must be
            # a no-op, not a second decrement of the pending count.
            event.fired = True
            self._now = time
            self._processed += 1
            event.callback(*event.args)
            self._recycle(event)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[3]
            if type(event) is tuple or not event.cancelled:
                return head[0]
            heappop(heap)
            self._recycle(event)
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is inclusive of events scheduled exactly at that time; on
        return the clock is advanced to ``until`` if it was supplied — but
        only once every live event at or before ``until`` has executed, so a
        run truncated by ``max_events`` (or :meth:`stop`) never jumps the
        clock past work that is still queued.
        """
        if self._running:
            raise SchedulerError("scheduler is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        try:
            executed = 0
            while heap and not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                event = head[3]
                # Fire-and-forget batch entries (see schedule_batch) carry a
                # bare (callback, args) tuple instead of an Event: nothing to
                # cancel, nothing to recycle.  The type check costs one
                # pointer compare on the hot loop.
                if type(event) is tuple:
                    time = head[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    self._pending -= 1
                    self._now = time
                    self._processed += 1
                    event[0](*event[1])
                    executed += 1
                    continue
                if event.cancelled:
                    pop(heap)
                    self._recycle(event)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self._pending -= 1
                event.fired = True
                self._now = time
                self._processed += 1
                event.callback(*event.args)
                self._recycle(event)
                executed += 1
            if until is not None and self._now < until and not self._stopped:
                next_time = self.peek_time()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a running :meth:`run` loop after the current event."""
        self._stopped = True
