"""The discrete-event scheduler at the heart of the simulator.

The design mirrors classic network simulators (NS2's ``Scheduler``): a binary
heap of pending events, a monotonically advancing clock, and lazy deletion of
cancelled events.  Determinism guarantees:

* events at equal timestamps run in (priority, insertion) order;
* the clock never moves backwards — scheduling into the past raises.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .event import Event


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class EventScheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = EventScheduler()
        sched.schedule(1.5, callback, arg1, arg2)
        sched.run(until=10.0)
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._now = 0.0
        self._seq = 0
        self._pending = 0
        self._processed = 0
        self._running = False
        self._stopped = False

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Returns the :class:`Event`, whose ``cancel()`` removes it (lazily).
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at {time:.9f}, now is {self._now:.9f}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args, priority=priority, name=name)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule(
            self._now + delay, callback, *args, priority=priority, name=name
        )

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel ``event`` if it is still pending.  ``None`` is a no-op.

        Cancelling an event that already fired (including the event whose
        callback is currently executing) is a no-op too — it left the
        pending set when it ran.
        """
        if event is not None and event.active:
            event.cancel()
            self._pending -= 1

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next live event.  Returns False if queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._pending -= 1
            # Mark before invoking: a callback that cancels *itself* must be
            # a no-op, not a second decrement of the pending count.
            event.fired = True
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is inclusive of events scheduled exactly at that time; on
        return the clock is advanced to ``until`` if it was supplied — but
        only once every live event at or before ``until`` has executed, so a
        run truncated by ``max_events`` (or :meth:`stop`) never jumps the
        clock past work that is still queued.
        """
        if self._running:
            raise SchedulerError("scheduler is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            executed = 0
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until and not self._stopped:
                next_time = self.peek_time()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a running :meth:`run` loop after the current event."""
        self._stopped = True
