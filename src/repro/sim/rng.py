"""Seeded random-number streams.

Reproducibility requirement: a simulation run is a pure function of its
configuration (including one integer seed).  To keep independent subsystems
(MAC backoff, channel errors, traffic jitter) statistically independent *and*
insensitive to each other's draw counts, each subsystem asks the
:class:`RngRegistry` for its own named stream; the stream's seed is derived
from the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit stream seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_run_seed(master_seed: int, scenario_key: str, replication: int) -> int:
    """Master seed for one ``(scenario, replication)`` campaign run.

    Campaign engines fan a scenario grid out over worker processes; each
    run's seed must depend only on the campaign seed, the scenario's
    identity and the replication index — never on worker count, execution
    order, or which other scenarios share the grid — so results are
    bit-identical however the campaign is scheduled.
    """
    if replication < 0:
        raise ValueError(f"replication must be non-negative, got {replication}")
    return derive_seed(master_seed, f"campaign:{scenario_key}:rep{replication}")


class RngRegistry:
    """Factory for independent named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 1) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams
