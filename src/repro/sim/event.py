"""Event objects for the discrete-event scheduler.

An :class:`Event` is a scheduled callback.  Handles support O(1) cancellation
(the scheduler lazily discards cancelled entries when they surface at the top
of the heap), which the MAC layer relies on heavily to pause backoff timers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``seq`` is a strictly
    increasing insertion counter that makes ordering deterministic for
    simultaneous events and keeps heap comparisons away from the (unorderable)
    callback objects.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "fired", "name"
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.name = name

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it is popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def _sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {label} ({state})>"
