"""Event objects for the discrete-event scheduler.

An :class:`Event` is a scheduled callback.  Handles support O(1) cancellation
(the scheduler lazily discards cancelled entries when they surface at the top
of the heap), which the MAC layer relies on heavily to pause backoff timers.

Heap ordering lives in the scheduler, not here: the scheduler stores
``(time, priority, seq, event)`` tuples so heap comparisons resolve on the
first three scalar fields at C speed and never reach the event object
(``seq`` is unique, so ties cannot fall through to the unorderable
callbacks).  ``__lt__`` is kept only for explicitly sorting event lists in
diagnostics and tests.

Recycling contract: once an event has fired or been cancelled *and* the
scheduler has observed it leave the heap, the scheduler may reuse the object
for a future ``schedule()`` call (see ``EventScheduler``'s freelist).  Code
that holds an :class:`Event` reference must drop it after the event fires or
after cancelling it — calling ``cancel()`` again on a long-dead handle could
otherwise hit a recycled, unrelated event.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``seq`` is a strictly
    increasing insertion counter that makes ordering deterministic for
    simultaneous events.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "fired", "name"
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.name = name

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it is popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {label} ({state})>"
