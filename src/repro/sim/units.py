"""Unit helpers and physical constants used throughout the simulator.

All simulation time is expressed in seconds as a ``float``.  All data sizes
are expressed in bytes as an ``int`` unless a name explicitly says ``bits``.
These helpers exist so scenario code reads like the paper ("2 Mbps link",
"20 us slot") instead of raw exponents.
"""

from __future__ import annotations

#: Speed of light in m/s, used for propagation delay over the air.
SPEED_OF_LIGHT = 3.0e8

# -- time ------------------------------------------------------------------


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def seconds(value: float) -> float:
    """Identity helper, for symmetry in scenario definitions."""
    return float(value)


# -- data rate / size ------------------------------------------------------


def mbps(value: float) -> float:
    """Convert megabits-per-second to bits-per-second."""
    return value * 1e6


def kbps(value: float) -> float:
    """Convert kilobits-per-second to bits-per-second."""
    return value * 1e3


def bits(nbytes: int) -> int:
    """Number of bits in ``nbytes`` bytes."""
    return nbytes * 8


def tx_duration(nbytes: int, rate_bps: float) -> float:
    """Time to serialise ``nbytes`` bytes at ``rate_bps`` bits per second."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return bits(nbytes) / rate_bps


def propagation_delay(distance_m: float) -> float:
    """One-way radio propagation delay over ``distance_m`` metres."""
    return distance_m / SPEED_OF_LIGHT
