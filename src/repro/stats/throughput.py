"""Throughput measurement: samplers over sinks and summary helpers."""

from __future__ import annotations

from typing import List, Tuple

from ..sim.simulator import Simulator
from ..sim.timer import PeriodicTimer
from ..transport.receiver import TcpSink
from .timeseries import differentiate


class ThroughputSampler:
    """Periodically samples a sink's cumulative delivered bytes.

    ``series`` holds cumulative (time, bytes) samples; :meth:`rates_kbps`
    converts to instantaneous throughput for the Fig. 5.19–5.22 dynamics.
    """

    def __init__(self, sim: Simulator, sink: TcpSink, interval: float = 0.5) -> None:
        self.sim = sim
        self.sink = sink
        self.interval = interval
        self.series: List[Tuple[float, float]] = []
        self._timer = PeriodicTimer(sim, interval, self._sample, name="stats.thr")

    def start(self) -> "ThroughputSampler":
        self.series.append((self.sim.now, float(self.sink.delivered_bytes)))
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        self.series.append((self.sim.now, float(self.sink.delivered_bytes)))

    def rates_kbps(self) -> List[Tuple[float, float]]:
        """Per-interval throughput in kilobits per second."""
        return [(t, rate * 8.0 / 1000.0) for t, rate in differentiate(self.series)]


def goodput_kbps(sink: TcpSink, duration: float) -> float:
    """Average application-level goodput over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    return sink.delivered_bytes * 8.0 / duration / 1000.0
