"""Fairness metrics — Jain's fairness index (paper Fig. 5.14/5.18).

For allocations ``x_1..x_n``::

    J = (sum x_i)^2 / (n * sum x_i^2)

J is 1 when all allocations are equal and approaches 1/n when one flow
monopolises the resource.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of ``allocations`` (must be non-negative).

    An empty sequence or all-zero allocations return 1.0 (vacuously fair).
    """
    if not allocations:
        return 1.0
    if any(x < 0 for x in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    # squares can underflow to exactly 0.0 for subnormal allocations even
    # when total > 0; such allocations are indistinguishable from zero.
    if total == 0 or squares == 0:
        return 1.0
    return (total * total) / (len(allocations) * squares)


def worst_case_index(n: int) -> float:
    """The minimum possible Jain index with ``n`` flows (one flow hogging)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1.0 / n
