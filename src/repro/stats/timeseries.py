"""Time-series helpers for traces (cwnd curves, throughput dynamics)."""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

Sample = Tuple[float, float]


def value_at(series: Sequence[Sample], time: float, default: float = 0.0) -> float:
    """Step-function evaluation: the last sample value at or before ``time``."""
    times = [t for t, _ in series]
    idx = bisect_right(times, time) - 1
    if idx < 0:
        return default
    return series[idx][1]


def resample(
    series: Sequence[Sample],
    start: float,
    stop: float,
    step: float,
    default: float = 0.0,
) -> List[Sample]:
    """Evaluate a step-function series on a regular grid (for plotting)."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    grid: List[Sample] = []
    t = start
    while t <= stop + 1e-12:
        grid.append((t, value_at(series, t, default)))
        t += step
    return grid


def differentiate(series: Sequence[Sample]) -> List[Sample]:
    """Per-interval rate of change of a cumulative series.

    Sample ``i`` of the result is (t_i, (v_i - v_{i-1}) / (t_i - t_{i-1})).
    """
    rates: List[Sample] = []
    for (t0, v0), (t1, v1) in zip(series, series[1:]):
        dt = t1 - t0
        rates.append((t1, (v1 - v0) / dt if dt > 0 else 0.0))
    return rates


def time_average(series: Sequence[Sample], start: float, stop: float) -> float:
    """Time-weighted mean of a step-function series over [start, stop]."""
    if stop <= start:
        raise ValueError("need stop > start")
    total = 0.0
    current = value_at(series, start)
    cursor = start
    for t, v in series:
        if t <= start:
            continue
        if t >= stop:
            break
        total += current * (t - cursor)
        current = v
        cursor = t
    total += current * (stop - cursor)
    return total / (stop - start)
