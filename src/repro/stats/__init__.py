"""Metrics (substrate S10): throughput sampling, Jain fairness, time series."""

from .fairness import jain_index, worst_case_index
from .throughput import ThroughputSampler, goodput_kbps
from .timeseries import differentiate, resample, time_average, value_at

__all__ = [
    "ThroughputSampler",
    "differentiate",
    "goodput_kbps",
    "jain_index",
    "resample",
    "time_average",
    "value_at",
    "worst_case_index",
]
