"""TCP SACK: selective acknowledgements with a pipe-based recovery loop.

Follows the "sack1" design NS2 used (Fall & Floyd 1996): on entering
recovery the sender halves the window, then keeps an estimate of the number
of packets in the pipe; whenever ``pipe < cwnd`` it sends the next scoreboard
hole (or new data when no holes remain).  Requires a SACK-enabled
:class:`~repro.transport.receiver.TcpSink`.
"""

from __future__ import annotations

from .reno import TcpReno
from .scoreboard import SackScoreboard
from .segments import TcpSegment


class TcpSack(TcpReno):
    """SACK-based loss recovery."""

    variant = "sack"
    needs_sack_sink = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scoreboard = SackScoreboard()
        self._pipe = 0

    # -- ACK processing ---------------------------------------------------------

    def _handle_ack(self, seg: TcpSegment) -> None:
        self.scoreboard.update(seg.sack_blocks, max(self.snd_una, seg.ack))
        super()._handle_ack(seg)

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        self.stats.fast_retransmits += 1
        self.ssthresh = self._flight_half()
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._set_cwnd(self.ssthresh)
        # Three dupacks plus the SACKed segments have left the network.
        self._pipe = max(
            self.outstanding - self.dupack_threshold - self.scoreboard.sacked_count(),
            0,
        )
        self._sack_retransmit(self.snd_una)
        self._sack_send_loop()

    def _on_extra_dupack(self, seg: TcpSegment) -> None:
        if not self.in_recovery:
            return
        self._pipe = max(self._pipe - 1, 0)
        self._sack_send_loop()

    def _on_new_ack(self, acked: int, seg: TcpSegment) -> None:
        if not self.in_recovery:
            self._grow_window()
            return
        if seg.ack >= self.recover:
            self.in_recovery = False
            self.scoreboard.reset_episode()
            self._set_cwnd(self.ssthresh)
            return
        # Partial ACK: those segments left the pipe; keep filling holes.
        self._pipe = max(self._pipe - acked, 0)
        self._sack_send_loop()

    def _on_timeout(self) -> None:
        super()._on_timeout()
        self.scoreboard.reset_episode()
        self._pipe = 0

    # -- pipe-driven transmission ---------------------------------------------------

    def _send_window(self) -> None:
        if self.in_recovery:
            self._sack_send_loop()
        else:
            super()._send_window()

    def _sack_retransmit(self, seq: int) -> None:
        self.scoreboard.mark_retransmitted(seq)
        self._transmit(seq, is_retransmit=True)
        self._pipe += 1

    def _sack_send_loop(self) -> None:
        while self._pipe < self.usable_window:
            hole = self.scoreboard.next_hole(self.snd_una)
            if hole is not None:
                self._sack_retransmit(hole)
                continue
            if self._can_send_new():
                self._transmit(self.snd_nxt, is_retransmit=False)
                self._pipe += 1
                continue
            break
