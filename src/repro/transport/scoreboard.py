"""SACK scoreboard: which segments above ``snd_una`` the receiver holds.

Packet-granularity version of the RFC 2018/6675 scoreboard.  The sender
feeds it the SACK blocks from incoming ACKs; it answers "what is the next
hole to retransmit?" and "how many outstanding segments are SACKed?".
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple


class SackScoreboard:
    """Tracks selectively-acknowledged segment numbers."""

    def __init__(self) -> None:
        self._sacked: Set[int] = set()
        #: Segments retransmitted during the current recovery episode.
        self._retransmitted: Set[int] = set()

    def update(self, blocks: Iterable[Tuple[int, int]], snd_una: int) -> None:
        """Merge SACK ``blocks`` (half-open ranges) and drop acked entries."""
        for start, end in blocks:
            self._sacked.update(range(start, end))
        self._sacked = {seq for seq in self._sacked if seq >= snd_una}
        self._retransmitted = {s for s in self._retransmitted if s >= snd_una}

    def is_sacked(self, seq: int) -> bool:
        return seq in self._sacked

    def sacked_count(self) -> int:
        return len(self._sacked)

    def highest_sacked(self) -> Optional[int]:
        return max(self._sacked) if self._sacked else None

    def mark_retransmitted(self, seq: int) -> None:
        self._retransmitted.add(seq)

    def next_hole(self, snd_una: int) -> Optional[int]:
        """Smallest unSACKed, not-yet-retransmitted segment below the
        highest SACKed one (i.e. a segment the evidence says is lost)."""
        top = self.highest_sacked()
        if top is None:
            return None
        for seq in range(snd_una, top):
            if seq not in self._sacked and seq not in self._retransmitted:
                return seq
        return None

    def reset_episode(self) -> None:
        """Forget per-recovery retransmission marks (on recovery exit)."""
        self._retransmitted.clear()

    def clear(self) -> None:
        self._sacked.clear()
        self._retransmitted.clear()
