"""TCP Vegas: delay-based congestion avoidance (Brakmo & Peterson 1994).

Once per RTT the sender compares the *expected* throughput ``cwnd/baseRTT``
with the *actual* throughput ``cwnd/RTT``; the difference (in packets
queued in the network) steers the window:

* slow start doubles the window only every other RTT and exits as soon as
  the backlog exceeds ``gamma``, shrinking the window by one eighth;
* congestion avoidance holds the backlog between ``alpha`` and ``beta``
  packets by +-1 adjustments per RTT.

Loss handling remains Reno-style.  The conservative window explains both
Vegas results the paper reports: best-in-class at short chains and low
retransmissions, but a too-small window on long paths (Fig. 5.8-5.13) and
starvation against NewReno (Fig. 5.16).
"""

from __future__ import annotations

from .reno import TcpReno
from .segments import TcpSegment


class TcpVegas(TcpReno):
    """Delay-based Vegas congestion control."""

    variant = "vegas"

    def __init__(
        self,
        *args,
        alpha: float = 1.0,
        beta: float = 3.0,
        gamma: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not 0 < alpha <= beta:
            raise ValueError("need 0 < alpha <= beta")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.base_rtt = float("inf")
        self._in_vegas_ss = True
        self._ss_grow_this_rtt = True

    # -- per-RTT control ---------------------------------------------------------

    def _on_rtt_sample(self, rtt: float) -> None:
        self.base_rtt = min(self.base_rtt, rtt)
        if rtt <= 0:
            return
        # Backlog estimate in packets: (expected - actual) * baseRTT.
        diff = self.cwnd * (1.0 - self.base_rtt / rtt)
        if self._in_vegas_ss:
            if diff > self.gamma:
                # Leave slow start before overshooting; shed 1/8 of cwnd.
                self._in_vegas_ss = False
                self._set_cwnd(max(self.cwnd * 7.0 / 8.0, 2.0))
            else:
                self._ss_grow_this_rtt = not self._ss_grow_this_rtt
                if self._ss_grow_this_rtt:
                    self._set_cwnd(self.cwnd * 2.0)
            return
        if diff < self.alpha:
            self._set_cwnd(self.cwnd + 1.0)
        elif diff > self.beta:
            self._set_cwnd(max(self.cwnd - 1.0, 2.0))
        # else: between alpha and beta — hold.

    # -- ACK growth is fully RTT-driven ---------------------------------------------

    def _grow_window(self) -> None:
        pass  # adjustments happen in _on_rtt_sample only

    def _on_timeout(self) -> None:
        super()._on_timeout()
        self._in_vegas_ss = True
        self._ss_grow_this_rtt = True

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        super()._on_triple_dupack(seg)
        self._in_vegas_ss = False
