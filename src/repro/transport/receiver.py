"""The TCP receiver ("sink").

Acknowledges every data segment with the cumulative next-expected sequence
number, reports up to three SACK blocks for out-of-order data, and — the
router-assist hook — echoes the AVBW-S value (path-minimum DRAI) of the
packet that triggered each ACK, so duplicate ACKs carry the congestion
evidence TCP Muzha uses to classify the loss (§4.7 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..net.node import Node
from ..net.packet import Packet
from ..sim.simulator import Simulator
from .segments import TcpSegment


class TcpSink:
    """Receiver endpoint bound to one port of a node.

    ``delayed_ack`` enables RFC 1122 receiver behaviour: in-order segments
    may wait up to ``delack_timeout`` (or a second segment, whichever comes
    first) before being acknowledged.  Out-of-order segments and hole fills
    are always acknowledged immediately, so duplicate-ACK loss detection —
    which TCP Muzha's marking rides on — is unaffected.  Off by default,
    matching the paper's NS2 sinks.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        port: int,
        sack: bool = False,
        delayed_ack: bool = False,
        delack_timeout: float = 0.2,
    ) -> None:
        self.sim = sim
        self.node = node
        self.port = port
        self.sack_enabled = sack
        self.delayed_ack = delayed_ack
        self.delack_timeout = delack_timeout
        node.bind_port(port, self)

        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.acks_sent = 0
        self.delayed_acks = 0
        self.duplicate_data = 0
        self.first_delivery: Optional[float] = None
        self.last_delivery: Optional[float] = None
        self._pending_ack: Optional[tuple] = None  # (packet, segment)
        from ..sim.timer import Timer

        self._delack_timer = Timer(sim, self._flush_delayed_ack, name="tcp.delack")

    # -- receive path -----------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment) or not segment.is_data:
            return
        seq = segment.seq
        in_order = seq == self.rcv_nxt
        filled_hole = False
        if in_order:
            self._deliver(segment)
            # Pull any buffered segments that are now in order.
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self._deliver_buffered(segment.payload_bytes)
                filled_hole = True
        elif seq > self.rcv_nxt:
            if seq in self._out_of_order:
                self.duplicate_data += 1
            else:
                self._out_of_order.add(seq)
        else:
            self.duplicate_data += 1

        if not self.delayed_ack:
            self._send_ack(packet, segment)
            return
        # RFC 1122: delay only plain in-order data; anything that signals
        # reordering or completes a hole must be acknowledged immediately,
        # and a second pending segment forces the ACK out.
        if not in_order or filled_hole:
            self._flush_delayed_ack()
            self._send_ack(packet, segment)
        elif self._pending_ack is not None:
            self._pending_ack = None
            self._delack_timer.stop()
            self._send_ack(packet, segment)
        else:
            self._pending_ack = (packet, segment)
            self._delack_timer.start(self.delack_timeout)

    def _flush_delayed_ack(self) -> None:
        if self._pending_ack is None:
            return
        packet, segment = self._pending_ack
        self._pending_ack = None
        self._delack_timer.stop()
        self.delayed_acks += 1
        self._send_ack(packet, segment)

    def _deliver(self, segment: TcpSegment) -> None:
        self.rcv_nxt += 1
        self.delivered_packets += 1
        self.delivered_bytes += segment.payload_bytes
        if self.first_delivery is None:
            self.first_delivery = self.sim.now
        self.last_delivery = self.sim.now

    def _deliver_buffered(self, payload_bytes: int) -> None:
        self.rcv_nxt += 1
        self.delivered_packets += 1
        self.delivered_bytes += payload_bytes
        self.last_delivery = self.sim.now

    # -- acknowledgement ------------------------------------------------------------

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        if not self.sack_enabled or not self._out_of_order:
            return ()
        blocks: List[Tuple[int, int]] = []
        run_start: Optional[int] = None
        previous: Optional[int] = None
        for seq in sorted(self._out_of_order):
            if run_start is None:
                run_start = previous = seq
                continue
            if seq == previous + 1:
                previous = seq
                continue
            blocks.append((run_start, previous + 1))
            run_start = previous = seq
        blocks.append((run_start, previous + 1))  # type: ignore[arg-type]
        return tuple(blocks[:3])

    def _send_ack(self, data_packet: Packet, data_segment: TcpSegment) -> None:
        ack = TcpSegment(
            "ack",
            sport=self.port,
            dport=data_segment.sport,
            ack=self.rcv_nxt,
            sack_blocks=self._sack_blocks(),
            echo_mrai=data_packet.avbw_s,
        )
        packet = Packet(
            src=self.node.node_id,
            dst=data_packet.src,
            protocol="tcp",
            size_bytes=ack.wire_bytes(),
            payload=ack,
        )
        self.acks_sent += 1
        self.node.send(packet)
