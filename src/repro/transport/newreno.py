"""TCP NewReno (RFC 3782): Reno with partial-ACK handling.

Recovery continues until the entire window outstanding at the time of the
loss (``recover``) has been acknowledged; each partial ACK triggers an
immediate retransmission of the next hole, letting NewReno repair multiple
losses per window at one loss per RTT.  This is the paper's principal
baseline.
"""

from __future__ import annotations

from .reno import TcpReno
from .segments import TcpSegment


class TcpNewReno(TcpReno):
    """NewReno fast recovery with partial ACKs."""

    variant = "newreno"

    def _on_new_ack(self, acked: int, seg: TcpSegment) -> None:
        if not self.in_recovery:
            self._grow_window()
            return
        if seg.ack >= self.recover:
            # Full ACK: recovery complete, deflate to ssthresh.
            self.in_recovery = False
            self._set_cwnd(self.ssthresh)
            return
        # Partial ACK: the next hole starts at the new snd_una.
        self.stats.fast_retransmits += 1
        self._transmit(self.snd_una, is_retransmit=True)
        # Deflate by the amount acked, then add one for the retransmission.
        self._set_cwnd(max(self.cwnd - acked + 1.0, self.ssthresh))
