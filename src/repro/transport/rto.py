"""Round-trip-time estimation and retransmission timeout (RTO).

Implements the Jacobson/Karels estimator with Karn's rule (no samples from
retransmitted segments — the caller enforces it by only timing one fresh
segment per window) and exponential timer backoff on consecutive timeouts.
"""

from __future__ import annotations


class RttEstimator:
    """Smoothed RTT and RTO per Jacobson 1988 (RFC 6298 coefficients)."""

    ALPHA = 0.125  # gain on srtt
    BETA = 0.25  # gain on rttvar

    def __init__(
        self,
        min_rto: float = 0.2,
        max_rto: float = 8.0,
        initial_rto: float = 3.0,
    ) -> None:
        # max_rto caps Karn backoff at 8 s rather than RFC 6298's 60+:
        # over a lossy multihop path, an unbounded backoff turns a burst of
        # retransmission losses into a silence longer than the paper's whole
        # simulation, so a capped timer (as many embedded stacks configure)
        # keeps the connection probing at a bounded rate.
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.initial_rto = initial_rto
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.samples = 0
        self._backoff = 1

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds) into the estimator."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt}")
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(err)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self.samples += 1
        self._backoff = 1  # a valid sample ends any timeout backoff

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including backoff."""
        if self.samples == 0:
            base = self.initial_rto
        else:
            base = self.srtt + 4.0 * self.rttvar
        base = min(max(base, self.min_rto), self.max_rto)
        return min(base * self._backoff, self.max_rto)

    def backoff(self) -> None:
        """Double the timeout after a retransmission timer expiry (Karn)."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def backoff_factor(self) -> int:
        return self._backoff
