"""TCP Tahoe: slow start + congestion avoidance + fast retransmit.

On any loss indication (triple duplicate ACK or timeout) Tahoe collapses the
congestion window to one segment and re-enters slow start — the behaviour
the base class already provides, making Tahoe the thinnest variant.
"""

from __future__ import annotations

from .base import TcpSenderBase


class TcpTahoe(TcpSenderBase):
    """Classic Tahoe (Jacobson 1988)."""

    variant = "tahoe"
