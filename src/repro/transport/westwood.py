"""TCP Westwood (Gerla et al., GLOBECOM 2001) — related-work baseline.

Westwood keeps NewReno's window dynamics but replaces blind halving with
*faster recovery*: the sender continuously estimates the eligible rate from
the ACK stream (bandwidth = acked bytes / inter-ACK time, low-pass
filtered) and, on a loss event, sets ``ssthresh`` to the estimated
bandwidth-delay product instead of half the window.  Over lossy wireless
paths this avoids over-shrinking for losses that are not congestion — the
same problem TCP Muzha attacks with router assistance, making Westwood the
natural end-to-end contrast in the extension benchmarks.
"""

from __future__ import annotations

from .newreno import TcpNewReno
from .segments import TcpSegment


class TcpWestwood(TcpNewReno):
    """NewReno + ACK-rate bandwidth estimation (packets/second)."""

    variant = "westwood"

    #: Time constant (seconds) of the bandwidth low-pass filter.  The gain
    #: of each sample is weighted by the ACK inter-arrival time
    #: (``1 - exp(-dt/tau)``), so a compressed burst of ACKs — whose
    #: instantaneous rate wildly overstates the path — contributes almost
    #: nothing, which is the point of Westwood's Tustin filter.
    BW_TAU = 0.5

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Filtered delivery-rate estimate in packets per second.
        self.bandwidth_estimate = 0.0
        self._last_ack_time: float = -1.0

    # -- bandwidth estimation -----------------------------------------------------

    def _handle_ack(self, seg: TcpSegment) -> None:
        if seg.ack > self.snd_una:
            self._update_bandwidth(seg.ack - self.snd_una)
        super()._handle_ack(seg)

    def _update_bandwidth(self, acked: int) -> None:
        import math

        now = self.sim.now
        if self._last_ack_time >= 0:
            interval = now - self._last_ack_time
            if interval > 0:
                sample = acked / interval
                gain = 1.0 - math.exp(-interval / self.BW_TAU)
                self.bandwidth_estimate = (
                    (1.0 - gain) * self.bandwidth_estimate + gain * sample
                )
        self._last_ack_time = now

    def _bdp_window(self) -> float:
        """Bandwidth-delay product in packets, in [2, advertised window]."""
        rtt = self.rtt.srtt if self.rtt.samples else 0.0
        if rtt <= 0 or self.bandwidth_estimate <= 0:
            return 2.0
        bdp = self.bandwidth_estimate * rtt
        return min(max(bdp, 2.0), float(self.window))

    # -- faster recovery: BDP-based ssthresh --------------------------------------------

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        self.stats.fast_retransmits += 1
        self.ssthresh = self._bdp_window()
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._transmit(self.snd_una, is_retransmit=True)
        self._set_cwnd(self.ssthresh + 3.0)

    def _on_timeout(self) -> None:
        self.ssthresh = self._bdp_window()
        self._set_cwnd(1.0)
        self.in_recovery = False
