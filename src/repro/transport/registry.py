"""Name -> sender-class registry, so scenarios can say ``variant="muzha"``."""

from __future__ import annotations

from typing import Dict, Type

from .base import TcpSenderBase
from .newreno import TcpNewReno
from .reno import TcpReno
from .sack import TcpSack
from .tahoe import TcpTahoe
from .vegas import TcpVegas
from .veno import TcpVeno
from .westwood import TcpWestwood

_REGISTRY: Dict[str, Type[TcpSenderBase]] = {
    "tahoe": TcpTahoe,
    "reno": TcpReno,
    "newreno": TcpNewReno,
    "sack": TcpSack,
    "vegas": TcpVegas,
    "veno": TcpVeno,
    "westwood": TcpWestwood,
}


def register_variant(name: str, cls: Type[TcpSenderBase]) -> None:
    """Register a sender class under ``name`` (used by repro.core for Muzha)."""
    _REGISTRY[name] = cls


def sender_class(name: str) -> Type[TcpSenderBase]:
    """Look up a sender class; imports repro.core lazily for Muzha variants."""
    if name not in _REGISTRY:
        # TCP Muzha lives in repro.core; importing it registers the class.
        import repro.core  # noqa: F401  (side-effect import)

    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown TCP variant {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_variants() -> list:
    """All registered variant names (triggers the Muzha registration)."""
    import repro.core  # noqa: F401

    return sorted(_REGISTRY)
