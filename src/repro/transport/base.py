"""Packet-granularity TCP sender base class (NS2 ``Agent/TCP`` style).

Concrete variants (Tahoe/Reno/NewReno/SACK/Vegas and TCP Muzha in
``repro.core``) override the event hooks:

* ``_on_new_ack(acked, seg)``   — cumulative ACK advanced;
* ``_on_triple_dupack(seg)``    — third duplicate ACK;
* ``_on_extra_dupack(seg)``     — duplicate ACKs beyond the third;
* ``_on_timeout()``             — retransmission timer expired;
* ``_on_rtt_sample(rtt)``       — one Karn-valid RTT measurement per window;
* ``_decorate_data_packet(pkt)``— stamp IP options (Muzha's AVBW-S).

The base class owns sequencing, the retransmission timer with Karn backoff,
duplicate-ACK counting, the advertised-window clamp (the paper's ``window_``
parameter), and cwnd tracing for the Figure 5.2–5.7 reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.node import Node
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.timer import Timer
from .rto import RttEstimator
from .segments import DEFAULT_MSS, TcpSegment


@dataclass
class TcpSenderStats:
    """Counters every sender maintains (Figure 5.11–5.13 inputs)."""

    data_sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    acks_received: int = 0
    dupacks: int = 0


class TcpSenderBase:
    """Common machinery for window-based TCP senders."""

    variant = "base"
    dupack_threshold = 3

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: int,
        sport: int,
        dport: int,
        window: int = 32,
        mss: int = DEFAULT_MSS,
        min_rto: float = 0.2,
        max_packets: Optional[int] = None,
        initial_ssthresh: Optional[float] = None,
        limited_transmit: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.sim = sim
        self.node = node
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.window = window
        self.mss = mss
        self.max_packets = max_packets
        #: RFC 3042: the first two duplicate ACKs may clock out one new
        #: segment each, which keeps small windows out of timeout territory.
        self.limited_transmit = limited_transmit
        node.bind_port(sport, self)

        self.cwnd = 1.0
        self.ssthresh = float(window if initial_ssthresh is None else initial_ssthresh)
        self.snd_una = 0
        self.snd_nxt = 0
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0

        self.rtt = RttEstimator(min_rto=min_rto)
        self._rto_timer = Timer(sim, self._on_rto_expiry, name="tcp.rto")
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._running = False

        self.stats = TcpSenderStats()
        #: (time, cwnd) samples recorded on every cwnd change.
        self.cwnd_trace: List[Tuple[float, float]] = [(sim.now, self.cwnd)]
        #: Interned per-flow trace topic — formatted once, not per emit.
        self._trace_topic = f"tcp.{node.node_id}"

    # -- lifecycle ------------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Begin transmitting at absolute time ``at``."""
        self.sim.at(at, self._begin, name="tcp.start")

    def _begin(self) -> None:
        self._running = True
        self._send_window()

    @property
    def finished(self) -> bool:
        """True when a bounded transfer has been fully acknowledged."""
        return self.max_packets is not None and self.snd_una >= self.max_packets

    # -- window bookkeeping ------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Packets in flight."""
        return self.snd_nxt - self.snd_una

    @property
    def usable_window(self) -> int:
        """Effective send window: min(cwnd, advertised window)."""
        return max(1, min(int(self.cwnd), self.window))

    def _set_cwnd(self, value: float) -> None:
        """Set cwnd, clamped to [1, window], and record the trace sample."""
        value = min(max(value, 1.0), float(self.window))
        if value != self.cwnd:
            self.cwnd = value
            self.cwnd_trace.append((self.sim.now, value))
            # Gate before building the field dict (sim.trace discipline).
            if self.sim.trace.active and self.sim.trace.wants("tcp.cwnd"):
                self.sim.emit(
                    self._trace_topic, "tcp.cwnd",
                    node=self.node.node_id, port=self.sport,
                    cwnd=value, ssthresh=self.ssthresh,
                )

    def _flight_half(self) -> float:
        """Half the amount of data in flight, floored at 2 (RFC 5681)."""
        flight = max(self.outstanding, 1)
        return max(min(self.cwnd, float(flight)) / 2.0, 2.0)

    # -- transmission ---------------------------------------------------------------

    def _can_send_new(self) -> bool:
        if not self._running:
            return False
        if self.max_packets is not None and self.snd_nxt >= self.max_packets:
            return False
        window = self.usable_window
        if self.limited_transmit:
            window += min(self.dupacks, 2)
        return self.snd_nxt < self.snd_una + window

    def _send_window(self) -> None:
        """Send as much new data as the window allows."""
        while self._can_send_new():
            self._transmit(self.snd_nxt, is_retransmit=False)

    def _transmit(self, seq: int, is_retransmit: bool) -> None:
        segment = TcpSegment(
            "data",
            sport=self.sport,
            dport=self.dport,
            seq=seq,
            payload_bytes=self.mss,
        )
        packet = Packet(
            src=self.node.node_id,
            dst=self.dst,
            protocol="tcp",
            size_bytes=segment.wire_bytes(),
            payload=segment,
        )
        self._decorate_data_packet(packet)
        if is_retransmit:
            self.stats.retransmits += 1
            if self.sim.trace.active and self.sim.trace.wants("tcp.retransmit"):
                self.sim.emit(
                    self._trace_topic, "tcp.retransmit",
                    node=self.node.node_id, port=self.sport, seq=seq,
                )
            if self._timed_seq == seq:
                self._timed_seq = None  # Karn: never time a retransmit
        else:
            self.snd_nxt = max(self.snd_nxt, seq + 1)
            self.stats.data_sent += 1
            if self._timed_seq is None:
                self._timed_seq = seq
                self._timed_at = self.sim.now
        self.node.send(packet)
        if not self._rto_timer.running:
            self._rto_timer.start(self.rtt.rto)

    # -- receive path ------------------------------------------------------------------

    def receive_packet(self, packet: Packet) -> None:
        segment = packet.payload
        if isinstance(segment, TcpSegment) and segment.is_ack:
            self._handle_ack(segment)

    def _handle_ack(self, seg: TcpSegment) -> None:
        self.stats.acks_received += 1
        if seg.ack > self.snd_una:
            acked = seg.ack - self.snd_una
            self.snd_una = seg.ack
            self.dupacks = 0
            self._maybe_sample_rtt(seg)
            if self.outstanding > 0:
                self._rto_timer.start(self.rtt.rto)
            else:
                self._rto_timer.stop()
            self._on_new_ack(acked, seg)
            self._send_window()
        elif seg.ack == self.snd_una and self.outstanding > 0:
            self.dupacks += 1
            self.stats.dupacks += 1
            if self.dupacks == self.dupack_threshold:
                self._on_triple_dupack(seg)
            elif self.dupacks > self.dupack_threshold:
                self._on_extra_dupack(seg)
            self._send_window()
        # ACKs below snd_una are stale; ignore.

    def _maybe_sample_rtt(self, seg: TcpSegment) -> None:
        if self._timed_seq is not None and seg.ack > self._timed_seq:
            sample = self.sim.now - self._timed_at
            self._timed_seq = None
            self.rtt.sample(sample)
            self._on_rtt_sample(sample)

    # -- retransmission timer --------------------------------------------------------------

    def _on_rto_expiry(self) -> None:
        if self.outstanding == 0:
            return
        self.stats.timeouts += 1
        if self.sim.trace.active and self.sim.trace.wants("tcp.timeout"):
            self.sim.emit(
                self._trace_topic, "tcp.timeout",
                node=self.node.node_id, port=self.sport,
                seq=self.snd_una, rto=self.rtt.rto,
            )
        self.rtt.backoff()
        self.dupacks = 0
        self._on_timeout()
        self._transmit(self.snd_una, is_retransmit=True)
        self._rto_timer.start(self.rtt.rto)

    # -- variant hooks (defaults give a Tahoe-flavoured baseline) ---------------------------

    def _grow_window(self) -> None:
        """Standard slow-start / congestion-avoidance growth, per ACK."""
        if self.cwnd < self.ssthresh:
            self._set_cwnd(self.cwnd + 1.0)
        else:
            self._set_cwnd(self.cwnd + 1.0 / max(self.cwnd, 1.0))

    def _on_new_ack(self, acked: int, seg: TcpSegment) -> None:
        self._grow_window()

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        """Fast retransmit (Tahoe default: back to slow start)."""
        self.stats.fast_retransmits += 1
        self.ssthresh = self._flight_half()
        self._set_cwnd(1.0)
        self._transmit(self.snd_una, is_retransmit=True)

    def _on_extra_dupack(self, seg: TcpSegment) -> None:
        pass

    def _on_timeout(self) -> None:
        self.ssthresh = self._flight_half()
        self._set_cwnd(1.0)
        self.in_recovery = False

    def _on_rtt_sample(self, rtt: float) -> None:
        pass

    def _decorate_data_packet(self, packet: Packet) -> None:
        pass
