"""TCP segments (packet-granularity, NS2 style).

Sequence numbers count *segments*, not bytes, exactly like NS2's
``Agent/TCP``: segment ``k`` carries bytes ``[k*MSS, (k+1)*MSS)``.  ACKs are
cumulative: ``ack = n`` acknowledges every segment below ``n`` (i.e. ``n`` is
the next expected segment).

``echo_mrai`` is TCP Muzha's feedback channel: the sink copies the AVBW-S
value (path-minimum DRAI) of the data packet that triggered the ACK.

``TcpSegment`` is a ``__slots__`` class rather than a dataclass: senders
allocate one per data transmission and receivers one per ACK, so this is a
per-packet hot-path type (see the allocation-churn notes in
``net/packet.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

#: TCP + IP header bytes added to every segment.
TCP_IP_HEADER_BYTES = 40

#: Default maximum segment size (payload bytes), as in the paper.
DEFAULT_MSS = 1460


class TcpSegment:
    """One TCP segment (data or pure ACK)."""

    __slots__ = (
        "kind", "sport", "dport", "seq", "ack", "payload_bytes",
        "sack_blocks", "echo_mrai",
    )

    def __init__(
        self,
        kind: str,  # "data" | "ack"
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        payload_bytes: int = 0,
        sack_blocks: Tuple[Tuple[int, int], ...] = (),
        echo_mrai: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.payload_bytes = payload_bytes
        #: Up to three SACK blocks, each a half-open segment range [start, end).
        self.sack_blocks = sack_blocks
        #: Path-minimum DRAI echoed by the receiver (TCP Muzha only).
        self.echo_mrai = echo_mrai

    def __repr__(self) -> str:
        return (
            f"TcpSegment(kind={self.kind!r}, sport={self.sport}, "
            f"dport={self.dport}, seq={self.seq}, ack={self.ack}, "
            f"payload_bytes={self.payload_bytes}, "
            f"sack_blocks={self.sack_blocks}, echo_mrai={self.echo_mrai})"
        )

    @property
    def is_data(self) -> bool:
        return self.kind == "data"

    @property
    def is_ack(self) -> bool:
        return self.kind == "ack"

    def wire_bytes(self) -> int:
        """Total packet size on the wire including TCP/IP headers."""
        return self.payload_bytes + TCP_IP_HEADER_BYTES
