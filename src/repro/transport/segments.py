"""TCP segments (packet-granularity, NS2 style).

Sequence numbers count *segments*, not bytes, exactly like NS2's
``Agent/TCP``: segment ``k`` carries bytes ``[k*MSS, (k+1)*MSS)``.  ACKs are
cumulative: ``ack = n`` acknowledges every segment below ``n`` (i.e. ``n`` is
the next expected segment).

``echo_mrai`` is TCP Muzha's feedback channel: the sink copies the AVBW-S
value (path-minimum DRAI) of the data packet that triggered the ACK.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: TCP + IP header bytes added to every segment.
TCP_IP_HEADER_BYTES = 40

#: Default maximum segment size (payload bytes), as in the paper.
DEFAULT_MSS = 1460


@dataclass
class TcpSegment:
    """One TCP segment (data or pure ACK)."""

    kind: str  # "data" | "ack"
    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    payload_bytes: int = 0
    #: Up to three SACK blocks, each a half-open segment range [start, end).
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    #: Path-minimum DRAI echoed by the receiver (TCP Muzha only).
    echo_mrai: Optional[int] = None

    @property
    def is_data(self) -> bool:
        return self.kind == "data"

    @property
    def is_ack(self) -> bool:
        return self.kind == "ack"

    def wire_bytes(self) -> int:
        """Total packet size on the wire including TCP/IP headers."""
        return self.payload_bytes + TCP_IP_HEADER_BYTES
