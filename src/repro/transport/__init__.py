"""Transport layer (substrate S6): packet-granularity TCP senders
(Tahoe/Reno/NewReno/SACK/Vegas, plus Westwood and Veno from the related
work), the SACK scoreboard, the common sink (with optional delayed ACKs),
and RTT/RTO estimation.  TCP Muzha itself lives in :mod:`repro.core`."""

from .base import TcpSenderBase, TcpSenderStats
from .newreno import TcpNewReno
from .receiver import TcpSink
from .registry import known_variants, register_variant, sender_class
from .reno import TcpReno
from .rto import RttEstimator
from .sack import TcpSack
from .scoreboard import SackScoreboard
from .segments import DEFAULT_MSS, TCP_IP_HEADER_BYTES, TcpSegment
from .tahoe import TcpTahoe
from .vegas import TcpVegas
from .veno import TcpVeno
from .westwood import TcpWestwood

__all__ = [
    "DEFAULT_MSS",
    "RttEstimator",
    "SackScoreboard",
    "TCP_IP_HEADER_BYTES",
    "TcpNewReno",
    "TcpReno",
    "TcpSack",
    "TcpSegment",
    "TcpSenderBase",
    "TcpSenderStats",
    "TcpSink",
    "TcpTahoe",
    "TcpVegas",
    "TcpVeno",
    "TcpWestwood",
    "known_variants",
    "register_variant",
    "sender_class",
]
