"""TCP Veno (Fu & Liew, JSAC 2003) — related-work baseline.

Veno grafts Vegas' backlog estimate onto Reno: the sender computes
``N = cwnd * (1 - baseRTT/RTT)`` (packets queued in the network) and

* during congestion avoidance, grows the window every other ACK-round when
  the path looks congested (``N >= beta``), full speed otherwise;
* on a loss with ``N < beta`` (the path was *not* congested — a random
  wireless loss), it cuts the window by only 1/5 instead of 1/2.

Like Westwood it is an end-to-end answer to the random-loss problem TCP
Muzha solves with router feedback, so it slots into the same comparison
benchmarks.
"""

from __future__ import annotations

from .reno import TcpReno
from .segments import TcpSegment


class TcpVeno(TcpReno):
    """Reno with Vegas-style loss discrimination."""

    variant = "veno"

    def __init__(self, *args, beta: float = 3.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.beta = beta
        self.base_rtt = float("inf")
        self._last_rtt = 0.0
        #: Toggles CA growth every other round while congested.
        self._skip_increase = False

    # -- backlog estimation ----------------------------------------------------

    def _on_rtt_sample(self, rtt: float) -> None:
        self.base_rtt = min(self.base_rtt, rtt)
        self._last_rtt = rtt

    def _backlog(self) -> float:
        if self._last_rtt <= 0 or self.base_rtt == float("inf"):
            return 0.0
        return self.cwnd * (1.0 - self.base_rtt / self._last_rtt)

    # -- window dynamics -----------------------------------------------------------

    def _grow_window(self) -> None:
        if self.cwnd < self.ssthresh:
            self._set_cwnd(self.cwnd + 1.0)
            return
        if self._backlog() >= self.beta:
            # congested: increase only every other congestion-avoidance step
            self._skip_increase = not self._skip_increase
            if self._skip_increase:
                return
        self._set_cwnd(self.cwnd + 1.0 / max(self.cwnd, 1.0))

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        self.stats.fast_retransmits += 1
        if self._backlog() < self.beta:
            # random loss: shed only one fifth of the window
            self.ssthresh = max(self.cwnd * 4.0 / 5.0, 2.0)
        else:
            self.ssthresh = self._flight_half()
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._transmit(self.snd_una, is_retransmit=True)
        self._set_cwnd(self.ssthresh + 3.0)
