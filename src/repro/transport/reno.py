"""TCP Reno: Tahoe + fast recovery.

After a fast retransmit, Reno halves the window and stays in congestion
avoidance (fast recovery) instead of slow-starting, inflating the window by
one for each further duplicate ACK.  A single new ACK — even a partial one —
terminates recovery, which is exactly Reno's weakness against the multiple
losses per window that wireless links produce (paper §2.1.1/§2.1.2).
"""

from __future__ import annotations

from .base import TcpSenderBase
from .segments import TcpSegment


class TcpReno(TcpSenderBase):
    """Classic Reno fast retransmit / fast recovery."""

    variant = "reno"

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        self.stats.fast_retransmits += 1
        self.ssthresh = self._flight_half()
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._transmit(self.snd_una, is_retransmit=True)
        # Window = ssthresh plus the three segments known to have left.
        self._set_cwnd(self.ssthresh + 3.0)

    def _on_extra_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            self._set_cwnd(self.cwnd + 1.0)  # window inflation

    def _on_new_ack(self, acked: int, seg: TcpSegment) -> None:
        if self.in_recovery:
            # Any new ACK ends Reno recovery (no partial-ACK handling).
            self.in_recovery = False
            self._set_cwnd(self.ssthresh)
            return
        self._grow_window()

    def _on_timeout(self) -> None:
        super()._on_timeout()
        self.in_recovery = False
