"""A wireless ad hoc node: radio + MAC + IFQ + routing + transport agents.

This is the paper's "hybrid role" host (§2.3): every node is simultaneously
an end host and a router.  The router role is where TCP Muzha's assist lives:
every packet that passes through the node's IFQ — originated *or* forwarded —
runs the node's registered *stampers*, and the Muzha DRAI estimator is a
stamper that lowers the packet's AVBW-S option to the node's own DRAI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from ..mac.dcf import DcfMac, QueuedPacket
from ..mac.frames import BROADCAST
from ..mac.params import MacParams
from ..phy.channel import WirelessChannel
from ..phy.position import Position
from ..phy.radio import Radio
from ..sim.simulator import Simulator
from .packet import Packet
from .queues import DropTailQueue


class PortHandler(Protocol):
    """A transport endpoint bound to a local port."""

    def receive_packet(self, packet: Packet) -> None:
        ...


class RoutingHooks(Protocol):
    """What a node needs from its routing protocol (see routing.base)."""

    control_protocol: str

    def next_hop(self, dst: int) -> Optional[int]:
        ...

    def on_no_route(self, packet: Packet) -> None:
        ...

    def on_link_failure(self, next_hop: int, packet: Packet) -> None:
        ...

    def on_link_ok(self, next_hop: int) -> None:
        ...

    def receive_control(self, packet: Packet, from_addr: int) -> None:
        ...

    def on_data_packet(self, packet: Packet, from_addr: int) -> None:
        ...


@dataclass
class NodeCounters:
    """Per-node network-layer counters."""

    originated: int = 0
    forwarded: int = 0
    delivered: int = 0
    no_route_drops: int = 0
    ttl_drops: int = 0
    no_handler_drops: int = 0
    #: Packets discarded because this node was powered off (fault injection):
    #: flushed from the IFQ at crash time plus sends attempted while down.
    down_drops: int = 0
    crashes: int = 0
    restarts: int = 0


class Node:
    """One node of the ad hoc network."""

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        node_id: int,
        position: Position,
        mac_params: Optional[MacParams] = None,
        ifq_capacity: int = 50,
        ifq: Optional[DropTailQueue] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.channel = channel
        #: True while the node is powered off (fault injection).
        self.down = False
        self.radio = Radio(sim, node_id)
        channel.register(self.radio, position)
        self.mac = DcfMac(sim, channel, self.radio, node_id, params=mac_params)
        self.ifq = ifq if ifq is not None else DropTailQueue(ifq_capacity)
        self.ifq.attach_trace(sim, node_id)
        self.mac.queue = self.ifq
        self.ifq.on_wakeup = self.mac.wakeup
        self.mac.listener = self

        self.routing: Optional[RoutingHooks] = None
        #: Set by ``DraiEstimator.install`` so observability harvests can
        #: find the router-assist state without a side table.
        self.drai = None
        self.port_handlers: Dict[int, PortHandler] = {}
        #: Callables applied to every packet entering the IFQ here
        #: (origination and forwarding alike) — the router-assist hook.
        self.stampers: List[Callable[[Packet], None]] = []
        self.counters = NodeCounters()

    # -- wiring ---------------------------------------------------------------

    def set_routing(self, routing: RoutingHooks) -> None:
        self.routing = routing

    def bind_port(self, port: int, handler: PortHandler) -> None:
        if port in self.port_handlers:
            raise ValueError(f"port {port} already bound on node {self.node_id}")
        self.port_handlers[port] = handler

    # -- power state (fault injection) ------------------------------------------

    def crash(self) -> None:
        """Power the node off mid-run: radio down, MAC timers cancelled, IFQ
        flushed, routing state wiped, channel fan-out vetoed.

        Idempotent: crashing a dead node is a no-op.  Transport agents
        hosted here keep their timers (the *process* survives in our model;
        the network interface does not) — their sends are dropped at
        :meth:`send` until :meth:`restart`.
        """
        if self.down:
            return
        self.down = True
        self.counters.crashes += 1
        self.mac.shutdown()
        self.radio.shutdown()
        self.counters.down_drops += len(self.ifq.flush())
        hook = getattr(self.routing, "on_node_down", None)
        if hook is not None:
            hook()
        self.channel.set_node_down(self.node_id, True)

    def restart(self) -> None:
        """Power the node back on with a cold protocol stack (empty IFQ,
        fresh MAC link state, empty routing table)."""
        if not self.down:
            return
        self.down = False
        self.counters.restarts += 1
        self.channel.set_node_down(self.node_id, False)
        self.radio.restore()
        self.mac.restart()
        hook = getattr(self.routing, "on_node_up", None)
        if hook is not None:
            hook()

    # -- sending ---------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Originate ``packet`` from this node (transport entry point)."""
        if self.down:
            self.counters.down_drops += 1
            return
        self.counters.originated += 1
        if packet.dst == self.node_id:
            self._deliver_local(packet)
            return
        self._route_and_enqueue(packet)

    def dispatch(self, packet: Packet) -> None:
        """Route and enqueue ``packet`` without counting an origination.

        Used by routing protocols to release packets that were buffered
        while a route discovery was in flight.
        """
        if self.down:
            self.counters.down_drops += 1
            return
        self._route_and_enqueue(packet)

    def send_control(self, packet: Packet, next_hop: int) -> None:
        """Send a routing-control packet directly to a MAC next hop
        (``BROADCAST`` floods); bypasses the route lookup."""
        if self.down:
            self.counters.down_drops += 1
            return
        self._enqueue_to_mac(packet, next_hop)

    def _route_and_enqueue(self, packet: Packet) -> None:
        assert self.routing is not None, f"node {self.node_id} has no routing"
        next_hop = self.routing.next_hop(packet.dst)
        if next_hop is None:
            self.routing.on_no_route(packet)
            return
        self._enqueue_to_mac(packet, next_hop)

    def _enqueue_to_mac(self, packet: Packet, next_hop: int) -> None:
        for stamper in self.stampers:
            stamper(packet)
        self.ifq.enqueue(QueuedPacket(packet, next_hop, packet.size_bytes))

    # -- MAC listener interface ---------------------------------------------------

    def mac_deliver(self, packet: Packet, from_addr: int) -> None:
        routing = self.routing
        if routing is not None and packet.protocol == routing.control_protocol:
            routing.receive_control(packet, from_addr)
            return
        if routing is not None:
            routing.on_data_packet(packet, from_addr)
        if packet.dst == self.node_id:
            self._deliver_local(packet)
            return
        self._forward(packet)

    def mac_tx_ok(self, next_hop: int, packet: Packet) -> None:
        if self.routing is not None:
            self.routing.on_link_ok(next_hop)

    def mac_link_failure(self, next_hop: int, packet: Packet) -> None:
        if self.routing is not None:
            self.routing.on_link_failure(next_hop, packet)

    # -- forwarding / delivery --------------------------------------------------------

    def _forward(self, packet: Packet) -> None:
        if packet.ttl <= 1:
            self.counters.ttl_drops += 1
            return
        packet.ttl -= 1
        self.counters.forwarded += 1
        self._route_and_enqueue(packet)

    def _deliver_local(self, packet: Packet) -> None:
        dport = getattr(packet.payload, "dport", None)
        handler = self.port_handlers.get(dport)
        if handler is None:
            self.counters.no_handler_drops += 1
            return
        self.counters.delivered += 1
        handler.receive_packet(packet)
