"""Network-layer packets.

A :class:`Packet` models an IP datagram.  It carries the paper's new IP
option, **AVBW-S** (Available Bandwidth Status): the TCP Muzha sender
initialises it to the maximum DRAI and every node along the path lowers it
to its own DRAI if smaller, so the value arriving at the receiver is the
path-minimum rate-adjustment recommendation (the MRAI).

Non-Muzha traffic leaves ``avbw_s`` as ``None`` — the option is absent, so
routers skip it, matching the "protocol independence" argument of §4.4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Network-layer broadcast address (mirrors the MAC broadcast).
IP_BROADCAST = -1

#: Bytes of IP header carried by every packet.
IP_HEADER_BYTES = 20

#: Default initial TTL.
DEFAULT_TTL = 64

_uid_counter = itertools.count(1)


@dataclass
class Packet:
    """An IP datagram travelling through the simulated network."""

    src: int
    dst: int
    protocol: str
    size_bytes: int
    payload: object = field(repr=False, default=None)
    ttl: int = DEFAULT_TTL
    #: AVBW-S IP option: path-minimum DRAI so far, or None when absent.
    avbw_s: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def aged_copy(self) -> "Packet":
        """Copy with decremented TTL (used when re-broadcasting floods)."""
        return Packet(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            size_bytes=self.size_bytes,
            payload=self.payload,
            ttl=self.ttl - 1,
            avbw_s=self.avbw_s,
        )
