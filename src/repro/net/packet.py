"""Network-layer packets.

A :class:`Packet` models an IP datagram.  It carries the paper's new IP
option, **AVBW-S** (Available Bandwidth Status): the TCP Muzha sender
initialises it to the maximum DRAI and every node along the path lowers it
to its own DRAI if smaller, so the value arriving at the receiver is the
path-minimum rate-adjustment recommendation (the MRAI).

Non-Muzha traffic leaves ``avbw_s`` as ``None`` — the option is absent, so
routers skip it, matching the "protocol independence" argument of §4.4.

``Packet`` is a ``__slots__`` class rather than a dataclass: one instance
is allocated per segment per flow (plus one per flood re-broadcast), so the
per-instance ``__dict__`` and generated-``__init__`` overhead of a
dataclass is measurable across a campaign.  :meth:`aged_copy` additionally
bypasses ``__init__`` entirely — the flood fast path.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Network-layer broadcast address (mirrors the MAC broadcast).
IP_BROADCAST = -1

#: Bytes of IP header carried by every packet.
IP_HEADER_BYTES = 20

#: Default initial TTL.
DEFAULT_TTL = 64

_uid_counter = itertools.count(1)


class Packet:
    """An IP datagram travelling through the simulated network."""

    __slots__ = (
        "src", "dst", "protocol", "size_bytes", "payload", "ttl", "avbw_s", "uid"
    )

    def __init__(
        self,
        src: int,
        dst: int,
        protocol: str,
        size_bytes: int,
        payload: object = None,
        ttl: int = DEFAULT_TTL,
        avbw_s: Optional[int] = None,
        uid: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.size_bytes = size_bytes
        self.payload = payload
        self.ttl = ttl
        #: AVBW-S IP option: path-minimum DRAI so far, or None when absent.
        self.avbw_s = avbw_s
        self.uid = uid if uid is not None else next(_uid_counter)

    def __repr__(self) -> str:  # payload elided, as before the slots change
        return (
            f"Packet(src={self.src}, dst={self.dst}, "
            f"protocol={self.protocol!r}, size_bytes={self.size_bytes}, "
            f"ttl={self.ttl}, avbw_s={self.avbw_s}, uid={self.uid})"
        )

    def aged_copy(self) -> "Packet":
        """Copy with decremented TTL (used when re-broadcasting floods).

        Fast path: allocates via ``__new__`` and assigns slots directly,
        skipping argument defaulting — this runs once per node per flood,
        which on a wide topology is the hottest packet-construction site
        after the TCP senders themselves.
        """
        clone = Packet.__new__(Packet)
        clone.src = self.src
        clone.dst = self.dst
        clone.protocol = self.protocol
        clone.size_bytes = self.size_bytes
        clone.payload = self.payload
        clone.ttl = self.ttl - 1
        clone.avbw_s = self.avbw_s
        clone.uid = next(_uid_counter)
        return clone
