"""Interface queues (IFQ) between the network layer and the MAC.

The paper's configuration is a 50-packet drop-tail IFQ; its occupancy is the
main input to the router-side DRAI.  A classic RED variant is provided as an
extension (RED is one of the router-assisted baselines discussed in the
paper's related work).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..mac.dcf import QueuedPacket


class DropTailQueue:
    """FIFO queue with a hard capacity; arrivals beyond it are dropped."""

    def __init__(self, capacity: int = 50) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: Deque[QueuedPacket] = deque()
        #: Called after a successful enqueue (wired to ``mac.wakeup``).
        self.on_wakeup: Optional[Callable[[], None]] = None
        #: Called with the entry that was dropped on overflow.
        self.on_drop: Optional[Callable[[QueuedPacket], None]] = None
        self.enqueued = 0
        self.dequeued = 0
        self.drops = 0
        self.fault_flushed = 0
        self.high_water = 0
        self._sim = None
        self._node_id = -1

    def attach_trace(self, sim, node_id: int) -> None:
        """Give the queue a simulator handle for gated ``ifq.*`` emits."""
        self._sim = sim
        self._node_id = node_id

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> float:
        """Queue fill fraction in [0, 1]."""
        return len(self._items) / self.capacity

    def enqueue(self, entry: QueuedPacket) -> bool:
        """Append ``entry``; returns False (and counts a drop) on overflow."""
        sim = self._sim
        if not self._admit(entry):
            self.drops += 1
            if sim is not None and sim.trace.active and sim.trace.wants("ifq.drop"):
                sim.emit(
                    f"ifq.{self._node_id}",
                    "ifq.drop",
                    node=self._node_id,
                    len=len(self._items),
                    capacity=self.capacity,
                    drops=self.drops,
                )
            if self.on_drop is not None:
                self.on_drop(entry)
            return False
        self._items.append(entry)
        self.enqueued += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        if sim is not None and sim.trace.active and sim.trace.wants("ifq.enqueue"):
            sim.emit(
                f"ifq.{self._node_id}",
                "ifq.enqueue",
                node=self._node_id,
                len=len(self._items),
                occupancy=self.occupancy,
            )
        if self.on_wakeup is not None:
            self.on_wakeup()
        return True

    def dequeue(self) -> Optional[QueuedPacket]:
        """Pop the head entry, or None when empty."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def flush(self) -> list:
        """Drop every queued entry (node crash); returns what was flushed.

        Flushed entries are accounted in ``fault_flushed`` rather than
        ``drops`` — they were admitted, then lost with the node, and the
        conservation accounting must tell the two apart.
        """
        flushed = list(self._items)
        self._items.clear()
        self.fault_flushed += len(flushed)
        return flushed

    def remove_if(self, predicate: Callable[[QueuedPacket], bool]) -> list:
        """Remove and return queued entries matching ``predicate``.

        Used by routing to pull packets headed for a broken next hop; the
        caller decides whether to salvage or drop them, so this does not
        count them as queue drops.
        """
        removed = [e for e in self._items if predicate(e)]
        if removed:
            self._items = deque(e for e in self._items if not predicate(e))
        return removed

    # -- admission policy (overridden by RED) ----------------------------------

    def _admit(self, entry: QueuedPacket) -> bool:
        return len(self._items) < self.capacity


class RedQueue(DropTailQueue):
    """Random Early Detection queue (Floyd & Jacobson 1993), drop-mode.

    Maintains an EWMA of the queue length; arrivals are dropped with a
    probability that rises linearly from 0 at ``min_th`` to ``max_p`` at
    ``max_th``, and always beyond ``max_th``.  The classic ``count``
    correction spreads drops out in time.
    """

    def __init__(
        self,
        capacity: int = 50,
        min_th: float = 5.0,
        max_th: float = 15.0,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng=None,
    ) -> None:
        super().__init__(capacity)
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._count = -1
        if rng is None:
            import random

            rng = random.Random(0)
        self._rng = rng
        self.early_drops = 0

    def _admit(self, entry: QueuedPacket) -> bool:
        if len(self._items) >= self.capacity:
            return False
        self.avg = (1 - self.weight) * self.avg + self.weight * len(self._items)
        if self.avg < self.min_th:
            self._count = -1
            return True
        if self.avg >= self.max_th:
            self._count = 0
            self.early_drops += 1
            return False
        self._count += 1
        p_base = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        denom = 1.0 - self._count * p_base
        p_actual = p_base / denom if denom > 0 else 1.0
        if self._rng.random() < p_actual:
            self._count = 0
            self.early_drops += 1
            return False
        return True
