"""Network layer (substrate S4): packets with the AVBW-S option, interface
queues (drop-tail and RED), and the node that glues PHY/MAC/routing/transport
together."""

from .node import Node, NodeCounters, PortHandler
from .packet import DEFAULT_TTL, IP_BROADCAST, IP_HEADER_BYTES, Packet
from .queues import DropTailQueue, RedQueue

__all__ = [
    "DEFAULT_TTL",
    "DropTailQueue",
    "IP_BROADCAST",
    "IP_HEADER_BYTES",
    "Node",
    "NodeCounters",
    "Packet",
    "PortHandler",
    "RedQueue",
]
