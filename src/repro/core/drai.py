"""DRAI — the Data Rate Adjustment Index (paper §4.3–§4.6).

Every node (each one a router in an ad hoc network) quantises its local
congestion state into a five-level recommendation:

==== ========================  =================
DRAI meaning                   sender action (Table 5.2)
==== ========================  =================
5    aggressive acceleration   cwnd <- cwnd * 2
4    moderate acceleration     cwnd <- cwnd + 1
3    stabilizing               cwnd unchanged
2    moderate deceleration     cwnd <- cwnd - 1
1    aggressive deceleration   cwnd <- cwnd * 1/2
==== ========================  =================

The paper takes an "empirical, fuzzy multi-level" approach to computing the
DRAI and leaves the exact formula open (§4.5/§4.6: "there doesn't exist any
theoretical formula ... we choose a coarse grain multi-level quantization").
We implement that recipe concretely: trapezoidal fuzzy memberships over the
node's IFQ length and its recent medium-utilisation, combined by a five-rule
base, with the winning rule's level published.  The constants live in
:class:`DraiParams` and are swept by the ablation benchmarks.

The deceleration band (DRAI <= 2) doubles as the paper's congestion *mark*:
a duplicate ACK echoing a deceleration MRAI is "marked", identifying the
loss as congestion-induced (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Union

from ..net.node import Node
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.timer import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policy imports us)
    from .policy import AdvicePolicy

#: The five DRAI levels.
MAX_DRAI = 5
MIN_DRAI = 1

#: MRAI values at or below this are deceleration recommendations; duplicate
#: ACKs echoing them count as congestion-marked (§4.7).
DECELERATION_BAND = 2

#: Table 5.2 — DRAI level -> (operation, operand) applied to cwnd once per
#: RTT by the TCP Muzha sender.
DRAI_TABLE: Dict[int, tuple] = {
    5: ("mul", 2.0),
    4: ("add", 1.0),
    3: ("hold", 0.0),
    2: ("add", -1.0),
    1: ("mul", 0.5),
}


def apply_drai(cwnd: float, drai: int) -> float:
    """Apply the Table 5.2 adjustment for ``drai`` to ``cwnd`` (unclamped)."""
    op, operand = DRAI_TABLE[drai]
    if op == "mul":
        return cwnd * operand
    if op == "add":
        return cwnd + operand
    return cwnd


def is_marked(mrai: Optional[int]) -> bool:
    """True if an echoed MRAI constitutes a congestion mark (§4.7)."""
    return mrai is not None and mrai <= DECELERATION_BAND


def _ramp(x: float, low: float, high: float) -> float:
    """Linear ramp membership: 0 below ``low``, 1 above ``high``."""
    if high <= low:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    return min(1.0, max(0.0, (x - low) / (high - low)))


@dataclass(frozen=True)
class DraiParams:
    """Constants of the fuzzy DRAI formula (our empirical instantiation).

    The discriminating congestion signal in a wireless multihop chain is the
    node's *standing queue*: the shared medium around a relay saturates even
    at the optimal rate, so busy-fraction alone cannot tell "optimal" from
    "overdriven", but a persistent IFQ backlog can.  Utilisation is used only
    to pick how aggressively to accelerate when the queue is empty.
    """

    #: Smoothed IFQ length (packets) marking the transition from "no
    #: backlog" (accelerate) to "small standing queue" (stabilize).
    queue_empty_lo: float = 0.5
    queue_empty_hi: float = 1.5
    #: Backlog marking the transition from "stabilize" to moderate
    #: deceleration.
    queue_soft_lo: float = 2.5
    queue_soft_hi: float = 4.0
    #: Backlog beyond which aggressive deceleration is recommended.
    queue_hard_lo: float = 5.0
    queue_hard_hi: float = 8.0
    #: Medium busy fraction below which acceleration may be aggressive.
    util_low_lo: float = 0.25
    util_low_hi: float = 0.45
    #: Medium busy fraction above which the air itself is saturated: the
    #: node stops recommending acceleration even with an empty queue, so
    #: flows leave headroom for competitors they cannot hear (the fairness
    #: mechanism behind Fig. 5.17/5.18).
    util_high_lo: float = 0.75
    util_high_hi: float = 0.90
    #: MAC service occupancy band where the node is comfortably loaded:
    #: above occ_stab_lo the "stabilize" recommendation ramps in.
    occ_stab_lo: float = 0.30
    occ_stab_hi: float = 0.50
    #: MAC service occupancy beyond which the node is saturated (the packet
    #: at the head of the MAC spends its life contending/retrying).
    occ_sat_lo: float = 0.55
    occ_sat_hi: float = 0.75
    #: How often each node re-evaluates its DRAI.
    sample_interval: float = 0.03
    #: EWMA gain on the per-interval utilisation/occupancy samples.
    util_ewma: float = 0.3
    #: EWMA gain on the sampled IFQ length.
    queue_ewma: float = 0.3


def compute_drai(
    queue_len: float,
    utilization: float,
    occupancy: float,
    params: DraiParams,
) -> int:
    """Pure fuzzy five-rule DRAI computation over three router-local signals.

    ``queue_len``
        Smoothed IFQ backlog (packets) — the classic congestion signal.
    ``utilization``
        Fraction of time the local *medium* carried energy.  In a wireless
        chain this saturates near the optimum, so it only distinguishes
        "truly idle" (aggressive acceleration is safe) from "in use".
    ``occupancy``
        Fraction of time the node's *MAC server* had a packet in service.
        Contention-induced congestion — the dominant kind in multihop
        802.11, where packets die of retry exhaustion before queues ever
        build — shows up here long before it shows up in ``queue_len``.

    Rule base (AND = min, OR = max):

    1. queue HIGH                                         -> 1
    2. queue MEDIUM or MAC saturated                      -> 2
    3. small standing queue, MAC comfortably busy, or the
       medium saturated (hold: no headroom to give away)  -> 3
    4. queue empty, MAC free, medium in moderate use      -> 4
    5. queue empty, MAC free, medium idle                 -> 5

    The level with the strongest activation wins; ties prefer the level
    closest to "stabilizing" (3), i.e. the least disruptive recommendation.
    """
    p = params
    mu_q_high = _ramp(queue_len, p.queue_hard_lo, p.queue_hard_hi)
    mu_q_med = min(
        _ramp(queue_len, p.queue_soft_lo, p.queue_soft_hi), 1.0 - mu_q_high
    )
    mu_q_small = min(
        _ramp(queue_len, p.queue_empty_lo, p.queue_empty_hi),
        1.0 - _ramp(queue_len, p.queue_soft_lo, p.queue_soft_hi),
    )
    mu_q_empty = 1.0 - _ramp(queue_len, p.queue_empty_lo, p.queue_empty_hi)
    mu_u_low = 1.0 - _ramp(utilization, p.util_low_lo, p.util_low_hi)
    mu_u_high = _ramp(utilization, p.util_high_lo, p.util_high_hi)
    mu_occ_sat = _ramp(occupancy, p.occ_sat_lo, p.occ_sat_hi)
    mu_occ_mid = min(
        _ramp(occupancy, p.occ_stab_lo, p.occ_stab_hi), 1.0 - mu_occ_sat
    )
    mu_occ_free = 1.0 - _ramp(occupancy, p.occ_stab_lo, p.occ_stab_hi)

    activations = {
        1: mu_q_high,
        2: max(mu_q_med, mu_occ_sat),
        # The medium-saturated "hold" rule yields to MAC saturation: a node
        # whose own server is saturated must keep recommending deceleration.
        3: max(
            mu_q_small,
            mu_occ_mid,
            min(mu_q_empty, mu_u_high, 1.0 - mu_occ_sat),
        ),
        4: min(mu_q_empty, mu_occ_free, 1.0 - mu_u_low, 1.0 - mu_u_high),
        5: min(mu_q_empty, mu_occ_free, mu_u_low),
    }
    # Strongest rule wins; tie-break toward stabilizing.
    return max(activations, key=lambda lvl: (activations[lvl], -abs(lvl - 3)))


class DraiEstimator:
    """Per-node DRAI publisher: samples local state, stamps passing packets.

    Installed as a node *stamper*, it implements the AVBW-S semantics of
    §4.4: every packet carrying the option has it lowered to this node's
    DRAI if smaller, so the receiver sees the path minimum (the MRAI).

    The estimator owns the *sampling-window bookkeeping* — busy-time
    deltas, EWMA smoothing and the queue-trend delta — and delegates the
    level decision to a pluggable :class:`~repro.core.policy.AdvicePolicy`
    (default: the paper's fuzzy quantiser, a pure refactor of the old
    inline computation).  ``policy`` accepts a policy instance or a
    registry name; stateful policies must not be shared between nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        params: Optional[DraiParams] = None,
        policy: Optional[Union["AdvicePolicy", str]] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.params = params or DraiParams()
        if policy is None:
            policy = self._default_policy()
        elif isinstance(policy, str):
            from .policy import make_policy

            policy = make_policy(policy, drai_params=self.params)
        self.policy = policy
        self.drai = MAX_DRAI
        self.utilization = 0.0
        self.occupancy = 0.0
        self.queue_ema = 0.0
        #: Change in the effective backlog since the previous sample — the
        #: shared window bookkeeping trend-sensitive policies consume.
        self.queue_trend = 0.0
        self._prev_queue = 0.0
        self._last_sample_at = sim.now
        self._last_busy_total = node.mac.meter.total_busy_time(sim.now)
        self._last_service_total = node.mac.service_meter.total_busy_time(sim.now)
        self._timer = PeriodicTimer(
            sim, self.params.sample_interval, self._sample, name="drai.sample"
        )
        #: Histogram of published DRAI levels (diagnostics / tests).
        self.level_counts: Dict[int, int] = {lvl: 0 for lvl in DRAI_TABLE}
        #: Samples spent in each policy state (time-in-state metrics).
        self.state_counts: Dict[str, int] = {}

    def _default_policy(self) -> "AdvicePolicy":
        from .policy import FuzzyDraiPolicy

        return FuzzyDraiPolicy(drai_params=self.params)

    def install(self) -> "DraiEstimator":
        """Attach to the node's stamper chain and start sampling."""
        self.node.stampers.append(self.stamp)
        self.node.drai = self
        self._timer.start(first_delay=self.params.sample_interval)
        return self

    def _sample(self) -> None:
        now = self.sim.now
        meter = self.node.mac.meter
        service = self.node.mac.service_meter
        fraction = meter.busy_fraction(self._last_sample_at, self._last_busy_total, now)
        occ = service.busy_fraction(self._last_sample_at, self._last_service_total, now)
        self._last_sample_at = now
        self._last_busy_total = meter.total_busy_time(now)
        self._last_service_total = service.total_busy_time(now)
        w = self.params.util_ewma
        self.utilization = (1.0 - w) * self.utilization + w * fraction
        self.occupancy = (1.0 - w) * self.occupancy + w * occ
        wq = self.params.queue_ewma
        self.queue_ema = (1.0 - wq) * self.queue_ema + wq * len(self.node.ifq)
        # React to the smoothed backlog.  An instantaneous queue already past
        # the hard threshold overrides the EMA so that packets stamped while
        # a drop-causing burst is in the queue carry the congestion mark.
        instant = float(len(self.node.ifq))
        effective_queue = self.queue_ema
        if instant >= self.params.queue_hard_lo:
            effective_queue = max(effective_queue, instant)
        self.queue_trend = effective_queue - self._prev_queue
        self._prev_queue = effective_queue
        self.drai = self._compute(effective_queue, self.utilization, self.occupancy)
        self.level_counts[self.drai] += 1
        state = self.policy.state()
        self.state_counts[state] = self.state_counts.get(state, 0) + 1
        # Gate before building the field dict (sim.trace discipline).
        trace = self.sim.trace
        if trace.active and trace.wants("drai.sample"):
            self.sim.emit(
                f"drai.{self.node.node_id}", "drai.sample",
                node=self.node.node_id, level=self.drai,
                queue=effective_queue, util=self.utilization,
                occ=self.occupancy, policy=self.policy.name, state=state,
            )

    def _compute(self, queue_len: float, utilization: float, occupancy: float) -> int:
        from .policy import PolicySignals

        return self.policy.advise(
            PolicySignals(queue_len, utilization, occupancy, self.queue_trend)
        )

    def stamp(self, packet: Packet) -> None:
        """Lower the packet's AVBW-S option to this node's DRAI."""
        if packet.avbw_s is not None and self.drai < packet.avbw_s:
            packet.avbw_s = self.drai


class QueueRttDrai(DraiEstimator):
    """Future-work variant (paper §6): factor queue *growth* into the DRAI.

    A rapidly growing queue predicts congestion before the occupancy
    thresholds trip, so this estimator demotes the published level by one
    when the IFQ grew by more than ``growth_threshold`` packets during the
    last sample interval.  Now a thin shim over the registered
    ``queue-trend`` policy: the growth bookkeeping lives in the shared
    :class:`DraiEstimator` sampling window (``queue_trend``), not here.
    """

    def __init__(self, *args, growth_threshold: float = 2.0, **kwargs) -> None:
        self.growth_threshold = growth_threshold
        super().__init__(*args, **kwargs)

    def _default_policy(self):
        from .policy import QueueTrendParams, QueueTrendPolicy

        return QueueTrendPolicy(
            QueueTrendParams(growth_threshold=self.growth_threshold),
            drai_params=self.params,
        )


def install_drai(
    nodes: Iterable[Node],
    sim: Simulator,
    params: Optional[DraiParams] = None,
    estimator_cls=DraiEstimator,
    policy: Optional[str] = None,
    policy_params: Optional[Dict] = None,
) -> Dict[int, DraiEstimator]:
    """Install a DRAI estimator on every node (every node is a router).

    ``policy`` names a registered advice policy (default: the estimator
    class's own default, i.e. the paper's fuzzy quantiser).  A *fresh*
    policy instance is built per node — state machines keep per-router
    state and must never be shared.
    """
    if policy is None and policy_params is not None:
        raise ValueError("policy_params requires a policy name")
    estimators: Dict[int, DraiEstimator] = {}
    for node in nodes:
        node_policy = None
        if policy is not None:
            from .policy import make_policy

            node_policy = make_policy(policy, params=policy_params,
                                      drai_params=params)
        estimators[node.node_id] = estimator_cls(
            sim, node, params=params, policy=node_policy
        ).install()
    return estimators
