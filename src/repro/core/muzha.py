"""TCP Muzha — the paper's router-assisted congestion control (Chapter 4).

Differences from loss-driven TCP, exactly as Table 4.1 specifies:

* **No slow start.**  The connection starts directly in congestion
  avoidance; the window is steered by the path-minimum DRAI (the MRAI)
  echoed on every ACK, applied once per RTT via Table 5.2.
* **Two phases only:** CA (congestion avoidance) and FF (fast retransmit &
  fast recovery, inherited from NewReno).
* **Marked vs unmarked duplicate ACKs (§4.7):** three duplicate ACKs whose
  echoed MRAI is in the deceleration band mean congestion -> halve cwnd and
  enter FF.  Three *unmarked* duplicate ACKs mean random (wireless) loss ->
  retransmit and enter FF *without any window reduction*.
* **Timeout:** cwnd <- 1 and back to CA (never slow start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.packet import Packet
from ..transport.base import TcpSenderBase
from ..transport.segments import TcpSegment
from .drai import DRAI_TABLE, MAX_DRAI, apply_drai, is_marked


@dataclass
class MuzhaStats:
    """Muzha-specific counters, extending the base sender stats."""

    marked_loss_events: int = 0
    random_loss_events: int = 0
    rate_adjustments: Dict[int, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in DRAI_TABLE}
    )


class TcpMuzha(TcpSenderBase):
    """Router-assisted sender driven by the MRAI feedback."""

    variant = "muzha"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # No slow start: keep ssthresh below any reachable cwnd so the
        # sender is permanently in congestion avoidance.
        self.ssthresh = 0.0
        self.muzha = MuzhaStats()
        self.last_mrai: Optional[int] = None
        #: Apply at most one Table 5.2 adjustment per RTT: the next
        #: adjustment is allowed once snd_una passes this barrier.
        self._adjust_barrier = 0
        #: cwnd to restore when the current FF episode completes.
        self._ff_exit_cwnd = self.cwnd

    # -- router-assist plumbing ---------------------------------------------------

    def _decorate_data_packet(self, packet: Packet) -> None:
        # Carry the AVBW-S option, initialised to the maximum DRAI (§4.4).
        packet.avbw_s = MAX_DRAI

    # -- CA phase: MRAI-driven window control ------------------------------------------

    def _grow_window(self) -> None:
        pass  # growth comes exclusively from the MRAI feedback

    def _on_new_ack(self, acked: int, seg: TcpSegment) -> None:
        if self.in_recovery:
            self._ff_new_ack(acked, seg)
            return
        mrai = seg.echo_mrai
        if mrai is None:
            return
        self.last_mrai = mrai
        if self.snd_una >= self._adjust_barrier:
            self._apply_mrai(mrai)
            self._arm_adjust_barrier()

    def _apply_mrai(self, mrai: int) -> None:
        self.muzha.rate_adjustments[mrai] += 1
        self._set_cwnd(apply_drai(self.cwnd, mrai))

    def _arm_adjust_barrier(self) -> None:
        """Allow the next adjustment only once the window sent *after* this
        one is being acknowledged — i.e. one adjustment per RTT.  Computed
        from the post-adjustment window because new data has not been
        clocked out yet when the ACK hook runs."""
        self._adjust_barrier = max(
            self.snd_nxt, self.snd_una + self.usable_window
        )

    # -- FF phase: NewReno-style recovery with loss classification -----------------------

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        self.stats.fast_retransmits += 1
        self.in_recovery = True
        self.recover = self.snd_nxt
        if is_marked(seg.echo_mrai):
            # Congestion loss: halve, as Table 4.1 row 2.
            self.muzha.marked_loss_events += 1
            self._ff_exit_cwnd = max(self.cwnd / 2.0, 1.0)
        else:
            # Random loss: retransmit only, no window reduction (row 3).
            self.muzha.random_loss_events += 1
            self._ff_exit_cwnd = self.cwnd
        self._transmit(self.snd_una, is_retransmit=True)
        # Inflate by the three departed segments to keep the ACK clock.
        self._set_cwnd(self._ff_exit_cwnd + 3.0)

    def _on_extra_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            self._set_cwnd(self.cwnd + 1.0)

    def _ff_new_ack(self, acked: int, seg: TcpSegment) -> None:
        if seg.ack >= self.recover:
            # FF complete: deflate to the classified exit window.
            self.in_recovery = False
            self._set_cwnd(self._ff_exit_cwnd)
            self._arm_adjust_barrier()
            return
        # Partial ACK: next hole, NewReno style, window pinned.
        self.stats.fast_retransmits += 1
        self._transmit(self.snd_una, is_retransmit=True)
        self._set_cwnd(max(self.cwnd - acked + 1.0, self._ff_exit_cwnd))

    # -- timeout: back to CA, never slow start (Table 4.1 row 4) ----------------------------

    def _on_timeout(self) -> None:
        self._set_cwnd(1.0)
        self.in_recovery = False
        self._adjust_barrier = self.snd_una
