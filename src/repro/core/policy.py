"""Pluggable router-advice policies: the DRAI computation as a family.

The paper's contribution is router-assisted feedback; *how* a router
quantises its local congestion state into the five-level DRAI is an open
design axis (§4.5: "there doesn't exist any theoretical formula").  This
module makes that axis pluggable: an :class:`AdvicePolicy` consumes one
:class:`PolicySignals` sample per publishing interval and returns a DRAI
level, with ``reset()``/``state()`` hooks so stateful controllers replay
deterministically and report where they are.

Registered policies (``make_policy(name)``):

``fuzzy``
    The paper's five-rule fuzzy quantiser (:func:`~repro.core.drai.compute_drai`)
    — the default everywhere; extraction through this interface is a pure
    refactor, held to byte-identical golden traces.
``binary-feedback``
    The §4.6 ECN-style ablation: only "congestion" (1) / "no congestion"
    (4) are published (plus the shared saturation clamp to 3).
``queue-trend``
    The §6 future-work variant: fuzzy, demoted one level while the backlog
    grows faster than ``growth_threshold`` packets per sample.
``hysteresis``
    A wanctl-style 4-state GREEN/YELLOW/SOFT_RED/RED controller: sustain
    counts before escalation, asymmetric step-up/step-down, per-state
    advice levels with a SOFT_RED clamp-and-hold, and RTT-only (service
    inflation) vs queue-saturation discrimination.

Every policy honours three behavioral guarantees, enforced by the
conformance suite (``tests/unit/test_policy_conformance.py``):

* **bounded advice** — always within ``[MIN_DRAI, MAX_DRAI]``;
* **no acceleration under saturation** — when the sampled signals show a
  saturated MAC server or a saturated queue, the advice is at most the
  "hold" level (3), whatever the policy's internal state says;
* **deterministic replay** — identical signal sequences after ``reset()``
  yield identical advice sequences.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type, Union

from .drai import MAX_DRAI, MIN_DRAI, DraiParams, compute_drai

#: Advice at or below this level never accelerates the sender ("hold").
HOLD_LEVEL = 3


@dataclass(frozen=True)
class PolicySignals:
    """One router-local congestion sample, as fed to every policy.

    ``queue_len``
        Smoothed IFQ backlog, packets (instantaneous bursts past the hard
        threshold override the EMA upstream — see ``DraiEstimator``).
    ``utilization``
        Fraction of the sampling window the local *medium* carried energy.
    ``occupancy``
        Fraction of the window the node's MAC server had a packet in
        service — the router-side proxy for RTT inflation: contention and
        retries inflate service time long before queues build.
    ``queue_trend``
        Change in the smoothed backlog since the previous sample (packets);
        positive while a queue is building.
    """

    queue_len: float
    utilization: float
    occupancy: float
    queue_trend: float = 0.0


class AdvicePolicy:
    """Base class of the router-advice policy family.

    Subclasses implement :meth:`_advise`; the public :meth:`advise` wraps it
    with the family-wide guarantees (level bounds and the saturation clamp)
    so no registered policy can accelerate a sender into a saturated relay.

    ``params_cls`` names the policy's parameter dataclass; parameters
    round-trip through ``params_dict()`` / the config JSON layer.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Parameter dataclass constructed from ``policy_params`` dicts.
    params_cls: Optional[type] = None

    def __init__(
        self,
        params: Optional[Any] = None,
        drai_params: Optional[DraiParams] = None,
    ) -> None:
        self.drai_params = drai_params or DraiParams()
        if params is None and self.params_cls is not None:
            params = self.default_params()
        self.params = params
        self._last_level: Optional[int] = None

    def default_params(self) -> Any:
        """The parameter object used when none is supplied."""
        return self.params_cls() if self.params_cls is not None else None

    # -- the per-sample contract ---------------------------------------------

    def advise(self, signals: PolicySignals) -> int:
        """Quantised advice for one sample, with the shared guarantees."""
        level = min(MAX_DRAI, max(MIN_DRAI, self._advise(signals)))
        if self.saturated(signals):
            level = min(level, HOLD_LEVEL)
        self._last_level = level
        return level

    def _advise(self, signals: PolicySignals) -> int:
        raise NotImplementedError

    def saturated(self, signals: PolicySignals) -> bool:
        """True when this sample shows a saturated server or queue.

        The bounds mirror the fuzzy rule base (``occ_sat_hi`` /
        ``queue_hard_hi``), where the paper's quantiser already never
        accelerates; stateful policies inherit the same hard ceiling.
        """
        queue_sat, occ_sat = self.saturation_bounds()
        return signals.occupancy >= occ_sat or signals.queue_len >= queue_sat

    def saturation_bounds(self) -> Tuple[float, float]:
        """(queue, occupancy) levels this policy treats as saturated."""
        return self.drai_params.queue_hard_hi, self.drai_params.occ_sat_hi

    # -- lifecycle hooks ------------------------------------------------------

    def reset(self) -> None:
        """Restore the initial state (stateful subclasses extend this)."""
        self._last_level = None

    def state(self) -> str:
        """Controller state label for traces/metrics.

        Stateless policies report the last published level (``L5`` .. ``L1``,
        ``idle`` before the first sample); state machines override with
        their own labels.
        """
        return "idle" if self._last_level is None else f"L{self._last_level}"

    # -- serialization --------------------------------------------------------

    def params_dict(self) -> Dict[str, Any]:
        """JSON-safe parameter payload (round-trips via ``make_policy``)."""
        if self.params is None:
            return {}
        if dataclasses.is_dataclass(self.params):
            return dataclasses.asdict(self.params)
        return dict(self.params)


class FuzzyDraiPolicy(AdvicePolicy):
    """The paper's fuzzy five-rule quantiser (the default policy).

    A pure function of the sample — ``compute_drai`` over the policy's
    :class:`DraiParams` — so the interface extraction cannot perturb the
    published levels: the golden event-order and figure regressions hold
    this path byte-identical to the pre-refactor estimator.
    """

    name = "fuzzy"
    params_cls = DraiParams

    def default_params(self) -> DraiParams:
        return self.drai_params

    def _advise(self, signals: PolicySignals) -> int:
        return compute_drai(
            signals.queue_len, signals.utilization, signals.occupancy, self.params
        )

    def saturation_bounds(self) -> Tuple[float, float]:
        return self.params.queue_hard_hi, self.params.occ_sat_hi


class BinaryFeedbackPolicy(AdvicePolicy):
    """ECN-style single-bit feedback expressed in DRAI terms (§4.6 ablation).

    Publishes 1 ("congestion") or 4 ("no congestion"); the stabilizing and
    moderate levels are unavailable, so a sender at the optimal rate is
    always pushed away from it.  The family-wide saturation clamp still
    caps the accelerate bit at 3 while the sampled server/queue is
    saturated — the one corner where one-bit feedback would otherwise
    accelerate into a saturated relay.
    """

    name = "binary-feedback"
    params_cls = DraiParams

    def default_params(self) -> DraiParams:
        return self.drai_params

    def _advise(self, signals: PolicySignals) -> int:
        fine = compute_drai(
            signals.queue_len, signals.utilization, signals.occupancy, self.params
        )
        return 1 if fine <= 2 else 4

    def saturation_bounds(self) -> Tuple[float, float]:
        return self.params.queue_hard_hi, self.params.occ_sat_hi


@dataclass(frozen=True)
class QueueTrendParams:
    """Parameters of the queue-growth demotion (paper §6 future work)."""

    #: Backlog growth per sample (packets) beyond which the published
    #: level is demoted by one.
    growth_threshold: float = 2.0


class QueueTrendPolicy(AdvicePolicy):
    """Fuzzy DRAI with predictive demotion on rapid queue growth.

    A rapidly growing queue predicts congestion before the occupancy
    thresholds trip; the demotion consumes the ``queue_trend`` signal the
    estimator's shared sampling-window bookkeeping supplies.
    """

    name = "queue-trend"
    params_cls = QueueTrendParams

    def _advise(self, signals: PolicySignals) -> int:
        level = compute_drai(
            signals.queue_len,
            signals.utilization,
            signals.occupancy,
            self.drai_params,
        )
        if signals.queue_trend > self.params.growth_threshold:
            level = max(MIN_DRAI, level - 1)
        return level


#: Hysteresis controller states, ordered by severity (index == severity).
HYSTERESIS_STATES: Tuple[str, ...] = ("GREEN", "YELLOW", "SOFT_RED", "RED")


@dataclass(frozen=True)
class HysteresisParams:
    """Constants of the 4-state hysteresis controller.

    Thresholds follow the wanctl deployment's shape: YELLOW is an early
    warning on either signal, SOFT_RED is *RTT-only* congestion (MAC
    service time inflated while the queue is not saturated), RED is hard
    congestion (queue saturation).  Escalation requires ``sustain_up``
    consecutive breach samples; recovery steps down one state per
    ``sustain_down`` consecutive clean samples (asymmetric by default:
    fast to protect, slow to trust the network again).
    """

    #: Backlog (packets) that counts as early pressure (YELLOW).
    queue_yellow: float = 2.5
    #: Backlog at which the queue is saturated — hard congestion (RED).
    queue_red: float = 8.0
    #: MAC service occupancy early-warning bound (YELLOW).
    occ_yellow: float = 0.50
    #: Service occupancy marking RTT-only congestion (SOFT_RED): the head
    #: packet's service time is inflated but no standing queue has formed.
    occ_soft_red: float = 0.75
    #: Medium busy-fraction below which a GREEN node recommends aggressive
    #: (x2) rather than moderate (+1) acceleration.
    util_low: float = 0.45
    #: Consecutive breach samples required before any escalation.
    sustain_up: int = 2
    #: Consecutive clean samples required per one-state step-down.
    sustain_down: int = 4
    #: Advice published per state (GREEN splits on utilization).
    advice_green_idle: int = 5
    advice_green_busy: int = 4
    advice_yellow: int = 3
    advice_soft_red: int = 2
    advice_red: int = 1

    def __post_init__(self) -> None:
        if self.sustain_up < 1 or self.sustain_down < 1:
            raise ValueError("sustain counts must be >= 1")
        if not self.queue_yellow <= self.queue_red:
            raise ValueError("need queue_yellow <= queue_red")
        if not self.occ_yellow <= self.occ_soft_red:
            raise ValueError("need occ_yellow <= occ_soft_red")


class HysteresisPolicy(AdvicePolicy):
    """wanctl-style 4-state controller over the router-local signals.

    Behavioral contract (property-tested in ``tests/props``):

    * the state index never rises unless the last ``sustain_up`` samples
      *all* breached the current state (consecutive-breach escalation),
      and it rises to the *mildest* severity seen during that run;
    * the state index never falls by more than one step, and only after
      ``sustain_down`` consecutive samples milder than the current state;
    * while the state holds at SOFT_RED the advice is clamped to
      ``advice_soft_red`` and *held* — no repeated decay toward RED
      without a fresh escalation;
    * the family-wide saturation clamp applies regardless of state, so a
      not-yet-escalated GREEN node still never accelerates a sender into
      an instantaneously saturated queue/server.
    """

    name = "hysteresis"
    params_cls = HysteresisParams

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._state_idx = 0
        self._up_run = 0
        self._down_run = 0
        self._pending_severity = 0

    # -- classification --------------------------------------------------------

    def severity(self, signals: PolicySignals) -> int:
        """Severity of one sample: index into :data:`HYSTERESIS_STATES`."""
        p = self.params
        if signals.queue_len >= p.queue_red:
            return 3  # queue saturation: hard congestion
        if signals.occupancy >= p.occ_soft_red:
            return 2  # RTT-only: service inflated, queue below saturation
        if signals.queue_len >= p.queue_yellow or signals.occupancy >= p.occ_yellow:
            return 1
        return 0

    def saturation_bounds(self) -> Tuple[float, float]:
        return self.params.queue_red, self.drai_params.occ_sat_hi

    # -- state machine ---------------------------------------------------------

    def _advise(self, signals: PolicySignals) -> int:
        severity = self.severity(signals)
        if severity > self._state_idx:
            # Breach run: remember the mildest severity seen so escalation
            # lands on a level every qualifying sample supports.
            self._pending_severity = (
                severity if self._up_run == 0
                else min(self._pending_severity, severity)
            )
            self._up_run += 1
            self._down_run = 0
            if self._up_run >= self.params.sustain_up:
                self._state_idx = self._pending_severity
                self._up_run = 0
        elif severity < self._state_idx:
            self._down_run += 1
            self._up_run = 0
            if self._down_run >= self.params.sustain_down:
                self._state_idx -= 1  # one state per qualifying run
                self._down_run = 0
        else:
            self._up_run = 0
            self._down_run = 0
        return self._state_advice(signals)

    def _state_advice(self, signals: PolicySignals) -> int:
        p = self.params
        if self._state_idx == 0:
            return (
                p.advice_green_idle
                if signals.utilization < p.util_low
                else p.advice_green_busy
            )
        if self._state_idx == 1:
            return p.advice_yellow
        if self._state_idx == 2:
            # SOFT_RED: clamp to the floor and HOLD — no repeated decay.
            return p.advice_soft_red
        return p.advice_red

    def reset(self) -> None:
        super().reset()
        self._state_idx = 0
        self._up_run = 0
        self._down_run = 0
        self._pending_severity = 0

    def state(self) -> str:
        return HYSTERESIS_STATES[self._state_idx]


# ---------------------------------------------------------------------------
# Registry (mirrors repro.transport.registry's name -> class contract)

_REGISTRY: Dict[str, Type[AdvicePolicy]] = {}


def register_policy(name: str, cls: Type[AdvicePolicy]) -> None:
    """Register an advice-policy class under ``name``."""
    _REGISTRY[name] = cls


def policy_class(name: str) -> Type[AdvicePolicy]:
    """Look up a registered policy class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown advice policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_policies() -> List[str]:
    """All registered policy names, sorted."""
    return sorted(_REGISTRY)


def make_policy(
    name: str,
    params: Optional[Union[Dict[str, Any], Any]] = None,
    drai_params: Optional[DraiParams] = None,
) -> AdvicePolicy:
    """Instantiate a registered policy.

    ``params`` may be the policy's parameter dataclass or a JSON-layer dict
    (``ScenarioConfig.policy_params``); dicts are validated by constructing
    the dataclass.  ``drai_params`` seeds the fuzzy backbone the
    fuzzy-derived policies share.
    """
    cls = policy_class(name)
    if isinstance(params, dict):
        if cls.params_cls is None:  # pragma: no cover - no such policy yet
            raise ValueError(f"policy {name!r} takes no parameters")
        params = cls.params_cls(**params)
    return cls(params=params, drai_params=drai_params)


register_policy(FuzzyDraiPolicy.name, FuzzyDraiPolicy)
register_policy(BinaryFeedbackPolicy.name, BinaryFeedbackPolicy)
register_policy(QueueTrendPolicy.name, QueueTrendPolicy)
register_policy(HysteresisPolicy.name, HysteresisPolicy)
