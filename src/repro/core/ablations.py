"""Ablations of the Muzha design, used by the ablation benchmarks.

``BinaryFeedbackDrai`` collapses the five-level DRAI to an ECN-like binary
signal — the paper argues (§4.6) this is "too brief for the sender to gain
further network status"; the bench shows the resulting oscillation.

``TcpMuzhaNoMarking`` disables the §4.7 random-loss discrimination: every
triple-dupACK is treated as congestion, quantifying what the marking buys.
"""

from __future__ import annotations

from ..transport.segments import TcpSegment
from .drai import DraiEstimator
from .muzha import TcpMuzha


class BinaryFeedbackDrai(DraiEstimator):
    """ECN-style single-bit feedback expressed in DRAI terms.

    The node publishes 4 ("no congestion" -> moderate acceleration) or 1
    ("congestion" -> aggressive deceleration); the stabilizing and
    moderate levels are unavailable, so a sender at the optimal rate is
    always pushed away from it.  A shim over the registered
    ``binary-feedback`` policy, which also inherits the family-wide
    saturation clamp (advice capped at 3 while the sampled server/queue
    is saturated).
    """

    def _default_policy(self):
        from .policy import BinaryFeedbackPolicy

        return BinaryFeedbackPolicy(drai_params=self.params)


class TcpMuzhaNoMarking(TcpMuzha):
    """Muzha with the marked/unmarked dupACK classification disabled."""

    variant = "muzha-nomark"

    def _on_triple_dupack(self, seg: TcpSegment) -> None:
        if self.in_recovery:
            return
        # Force the congestion interpretation regardless of the echoed MRAI.
        forced = TcpSegment(
            "ack",
            sport=seg.sport,
            dport=seg.dport,
            ack=seg.ack,
            sack_blocks=seg.sack_blocks,
            echo_mrai=1,
        )
        super()._on_triple_dupack(forced)
