"""The paper's primary contribution (S7): TCP Muzha and the DRAI machinery.

Importing this package registers the Muzha variants with the transport
registry, so scenario code can request ``variant="muzha"``.  The
router-advice policy family (fuzzy / binary-feedback / queue-trend /
hysteresis) self-registers with :mod:`repro.core.policy` on import.
"""

from ..transport.registry import register_variant
from .ablations import BinaryFeedbackDrai, TcpMuzhaNoMarking
from .drai import (
    DECELERATION_BAND,
    DRAI_TABLE,
    MAX_DRAI,
    MIN_DRAI,
    DraiEstimator,
    DraiParams,
    QueueRttDrai,
    apply_drai,
    compute_drai,
    install_drai,
    is_marked,
)
from .muzha import MuzhaStats, TcpMuzha
from .policy import (
    HOLD_LEVEL,
    HYSTERESIS_STATES,
    AdvicePolicy,
    BinaryFeedbackPolicy,
    FuzzyDraiPolicy,
    HysteresisParams,
    HysteresisPolicy,
    PolicySignals,
    QueueTrendParams,
    QueueTrendPolicy,
    known_policies,
    make_policy,
    policy_class,
    register_policy,
)

register_variant("muzha", TcpMuzha)
register_variant("muzha-nomark", TcpMuzhaNoMarking)

__all__ = [
    "AdvicePolicy",
    "BinaryFeedbackDrai",
    "BinaryFeedbackPolicy",
    "DECELERATION_BAND",
    "DRAI_TABLE",
    "DraiEstimator",
    "DraiParams",
    "FuzzyDraiPolicy",
    "HOLD_LEVEL",
    "HYSTERESIS_STATES",
    "HysteresisParams",
    "HysteresisPolicy",
    "MAX_DRAI",
    "MIN_DRAI",
    "MuzhaStats",
    "PolicySignals",
    "QueueRttDrai",
    "QueueTrendParams",
    "QueueTrendPolicy",
    "TcpMuzha",
    "TcpMuzhaNoMarking",
    "apply_drai",
    "compute_drai",
    "install_drai",
    "is_marked",
    "known_policies",
    "make_policy",
    "policy_class",
    "register_policy",
]
