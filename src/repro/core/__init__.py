"""The paper's primary contribution (S7): TCP Muzha and the DRAI machinery.

Importing this package registers the Muzha variants with the transport
registry, so scenario code can request ``variant="muzha"``.
"""

from ..transport.registry import register_variant
from .ablations import BinaryFeedbackDrai, TcpMuzhaNoMarking
from .drai import (
    DECELERATION_BAND,
    DRAI_TABLE,
    MAX_DRAI,
    MIN_DRAI,
    DraiEstimator,
    DraiParams,
    QueueRttDrai,
    apply_drai,
    compute_drai,
    install_drai,
    is_marked,
)
from .muzha import MuzhaStats, TcpMuzha

register_variant("muzha", TcpMuzha)
register_variant("muzha-nomark", TcpMuzhaNoMarking)

__all__ = [
    "BinaryFeedbackDrai",
    "DECELERATION_BAND",
    "DRAI_TABLE",
    "DraiEstimator",
    "DraiParams",
    "MAX_DRAI",
    "MIN_DRAI",
    "MuzhaStats",
    "QueueRttDrai",
    "TcpMuzha",
    "TcpMuzhaNoMarking",
    "apply_drai",
    "compute_drai",
    "install_drai",
    "is_marked",
]
