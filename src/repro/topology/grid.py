"""Grid topologies — an extension beyond the paper's chain/cross scenarios,
useful for exercising AODV route diversity and the DRAI under richer
contention patterns."""

from __future__ import annotations

from typing import List, Optional

from ..mac.params import MacParams
from ..net.node import Node
from ..phy.error_models import ErrorModel
from ..phy.position import Position
from .builder import Network, make_network, place_nodes
from .chain import DEFAULT_SPACING


def grid_positions(
    rows: int, cols: int, spacing: float = DEFAULT_SPACING
) -> List[Position]:
    """Row-major positions of a ``rows x cols`` grid."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid needs positive dimensions, got {rows}x{cols}")
    return [
        Position(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]


def build_grid(
    rows: int,
    cols: int,
    seed: int = 1,
    spacing: float = DEFAULT_SPACING,
    error_model: Optional[ErrorModel] = None,
    mac_params: Optional[MacParams] = None,
    ifq_capacity: int = 50,
) -> Network:
    """Build a ``rows x cols`` grid network (node ids row-major)."""
    network = make_network(seed=seed, error_model=error_model)
    place_nodes(
        network,
        grid_positions(rows, cols, spacing),
        mac_params=mac_params,
        ifq_capacity=ifq_capacity,
    )
    return network


def grid_node(network: Network, rows: int, cols: int, r: int, c: int) -> Node:
    """The node at grid coordinate (r, c) of a grid built here."""
    if not (0 <= r < rows and 0 <= c < cols):
        raise IndexError(f"({r}, {c}) outside {rows}x{cols} grid")
    return network.nodes[r * cols + c]
