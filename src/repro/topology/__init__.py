"""Topology builders (substrate S8): chain, cross and grid networks."""

from .builder import Network, make_network, place_nodes
from .chain import DEFAULT_SPACING, build_chain, chain_endpoints, chain_positions
from .cross import CrossNetwork, build_cross, cross_positions
from .grid import build_grid, grid_node, grid_positions

__all__ = [
    "CrossNetwork",
    "DEFAULT_SPACING",
    "Network",
    "build_chain",
    "build_cross",
    "build_grid",
    "chain_endpoints",
    "chain_positions",
    "cross_positions",
    "grid_node",
    "grid_positions",
    "make_network",
    "place_nodes",
]
