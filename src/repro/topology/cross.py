"""Cross topologies (paper Fig. 5.15): two h-hop chains sharing the centre.

A 4-hop cross has 9 nodes: a horizontal chain of 5 and a vertical chain of
5 that share the centre node.  One flow runs left-to-right, the other
top-to-bottom; both must traverse the shared centre, which is where the
fairness contest of Simulation 3A happens.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..mac.params import MacParams
from ..net.node import Node
from ..phy.error_models import ErrorModel
from ..phy.position import Position
from .builder import Network, make_network, place_nodes
from .chain import DEFAULT_SPACING


def cross_positions(
    hops: int, spacing: float = DEFAULT_SPACING
) -> Tuple[List[Position], int, int, int, int, int]:
    """Positions for an h-hop cross plus the indices of its five landmarks.

    Returns ``(positions, left, right, top, bottom, center)`` where the
    named values are node indices.  ``hops`` must be even so the centre
    node lies on both chains.
    """
    if hops < 2 or hops % 2 != 0:
        raise ValueError(f"cross topology needs an even hops >= 2, got {hops}")
    half = hops // 2
    positions: List[Position] = []
    # Horizontal chain: node 0 .. node hops, centre at index `half`.
    for i in range(hops + 1):
        positions.append(Position((i - half) * spacing, 0.0))
    left, right, center = 0, hops, half
    # Vertical chain shares the centre: add the remaining `hops` nodes.
    top = len(positions)
    for j in range(hops + 1):
        if j == half:
            continue  # the centre node already exists
        positions.append(Position(0.0, (half - j) * spacing))
    # Vertical nodes are appended top-to-bottom skipping the centre, so the
    # last appended one is the bottom end.
    bottom = len(positions) - 1
    return positions, left, right, top, bottom, center


class CrossNetwork(Network):
    """A cross network annotated with its landmark nodes."""

    left: Node
    right: Node
    top: Node
    bottom: Node
    center: Node


def build_cross(
    hops: int,
    seed: int = 1,
    spacing: float = DEFAULT_SPACING,
    error_model: Optional[ErrorModel] = None,
    mac_params: Optional[MacParams] = None,
    ifq_capacity: int = 50,
    phy_lane: str = "auto",
) -> CrossNetwork:
    """Build an h-hop cross network (2h+1 nodes for even ``hops``)."""
    base = make_network(seed=seed, error_model=error_model, phy_lane=phy_lane)
    network = CrossNetwork(sim=base.sim, channel=base.channel)
    positions, left, right, top, bottom, center = cross_positions(hops, spacing)
    nodes = place_nodes(
        network, positions, mac_params=mac_params, ifq_capacity=ifq_capacity
    )
    network.left = nodes[left]
    network.right = nodes[right]
    network.top = nodes[top]
    network.bottom = nodes[bottom]
    network.center = nodes[center]
    return network
