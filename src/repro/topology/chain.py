"""Chain topologies (paper Fig. 5.1): h+1 equally spaced nodes, h hops.

Node 0 is the conventional source end and node ``h`` the destination end;
the 250 m spacing means each node decodes only its immediate neighbours
while sensing (and interfering with) nodes two hops away — the geometry the
paper's contention results depend on.
"""

from __future__ import annotations

from typing import List, Optional

from ..mac.params import MacParams
from ..net.node import Node
from ..phy.error_models import ErrorModel
from ..phy.position import Position
from .builder import Network, make_network, place_nodes

#: The paper's node spacing (metres) = the transmission radius.
DEFAULT_SPACING = 250.0


def chain_positions(hops: int, spacing: float = DEFAULT_SPACING) -> List[Position]:
    """Positions of the h+1 nodes of an h-hop chain along the x axis."""
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    return [Position(spacing * i, 0.0) for i in range(hops + 1)]


def build_chain(
    hops: int,
    seed: int = 1,
    spacing: float = DEFAULT_SPACING,
    error_model: Optional[ErrorModel] = None,
    mac_params: Optional[MacParams] = None,
    ifq_capacity: int = 50,
    phy_lane: str = "auto",
) -> Network:
    """Build an h-hop chain network (nodes 0..h)."""
    network = make_network(seed=seed, error_model=error_model, phy_lane=phy_lane)
    place_nodes(
        network,
        chain_positions(hops, spacing),
        mac_params=mac_params,
        ifq_capacity=ifq_capacity,
    )
    return network


def chain_endpoints(network: Network) -> tuple:
    """(source node, destination node) of a chain built here."""
    return network.nodes[0], network.nodes[-1]
