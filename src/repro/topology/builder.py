"""Network assembly: a :class:`Network` bundles the simulator, channel and
nodes of one scenario and offers the routing/DRAI installation helpers the
experiment runners use."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mac.params import MacParams
from ..net.node import Node
from ..phy.channel import WirelessChannel
from ..phy.error_models import ErrorModel
from ..phy.position import Position
from ..phy.propagation import DiskPropagation
from ..sim.simulator import Simulator


@dataclass
class Network:
    """One assembled scenario network."""

    sim: Simulator
    channel: WirelessChannel
    nodes: List[Node] = field(default_factory=list)

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        for candidate in self.nodes:
            if candidate.node_id == node_id:
                return candidate
        raise KeyError(f"no node with id {node_id}")

    def add_node(self, position: Position, **node_kwargs) -> Node:
        """Create a node at ``position`` with the next free id."""
        node_id = max((n.node_id for n in self.nodes), default=-1) + 1
        node = Node(self.sim, self.channel, node_id, position, **node_kwargs)
        self.nodes.append(node)
        return node

    @property
    def ids(self) -> List[int]:
        return [node.node_id for node in self.nodes]


def make_network(
    seed: int = 1,
    propagation: Optional[DiskPropagation] = None,
    error_model: Optional[ErrorModel] = None,
    sim: Optional[Simulator] = None,
    phy_lane: str = "auto",
) -> Network:
    """Create an empty network (simulator + channel) ready for nodes."""
    sim = sim or Simulator(seed=seed)
    channel = WirelessChannel(
        sim, propagation=propagation, error_model=error_model, phy_lane=phy_lane
    )
    return Network(sim=sim, channel=channel)


def place_nodes(
    network: Network,
    positions: List[Position],
    mac_params: Optional[MacParams] = None,
    ifq_capacity: int = 50,
) -> List[Node]:
    """Add one node per position (ids assigned in order)."""
    return [
        network.add_node(pos, mac_params=mac_params, ifq_capacity=ifq_capacity)
        for pos in positions
    ]
