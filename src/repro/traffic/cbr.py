"""Constant-bit-rate (UDP-like) traffic source, for background load.

The paper's runs have no background traffic, but the extension benches use
CBR cross-traffic to stress the DRAI under non-TCP load (which routers must
handle without parsing, per the protocol-independence argument of §4.4).
"""

from __future__ import annotations

from typing import Optional

from ..net.node import Node
from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.timer import PeriodicTimer


class CbrSink:
    """Counts CBR packets/bytes arriving on a port."""

    def __init__(self, sim: Simulator, node: Node, port: int) -> None:
        self.sim = sim
        self.node = node
        self.port = port
        self.received_packets = 0
        self.received_bytes = 0
        node.bind_port(port, self)

    def receive_packet(self, packet: Packet) -> None:
        self.received_packets += 1
        self.received_bytes += packet.size_bytes


class _CbrDatagram:
    """Payload marker so the port demux can route CBR packets."""

    __slots__ = ("dport",)

    def __init__(self, dport: int) -> None:
        self.dport = dport


class CbrSource:
    """Sends fixed-size datagrams at a constant rate from start to stop."""

    def __init__(
        self,
        sim: Simulator,
        src: Node,
        dst: Node,
        port: int,
        rate_bps: float,
        packet_bytes: int = 512,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.port = port
        self.packet_bytes = packet_bytes
        self.interval = packet_bytes * 8.0 / rate_bps
        self.stop_time = stop_time
        self.sent_packets = 0
        self._timer = PeriodicTimer(sim, self.interval, self._emit, name="cbr.tick")
        sim.at(start_time, self._timer.start, 0.0)
        if stop_time is not None:
            sim.at(stop_time, self._timer.stop)

    def _emit(self) -> None:
        self.sent_packets += 1
        self.src.send(
            Packet(
                src=self.src.node_id,
                dst=self.dst.node_id,
                protocol="cbr",
                size_bytes=self.packet_bytes,
                payload=_CbrDatagram(self.port),
            )
        )
