"""FTP traffic: a bulk transfer riding a TCP sender.

The paper's flows are FTP sessions — effectively unlimited backlogs.  This
wrapper pairs a sender with its sink, starts it at the scheduled time, and
exposes flow-level results (goodput, retransmissions, cwnd trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.node import Node
from ..sim.simulator import Simulator
from ..transport.base import TcpSenderBase
from ..transport.receiver import TcpSink
from ..transport.registry import sender_class


@dataclass
class FtpFlow:
    """A unidirectional FTP transfer between two nodes."""

    sender: TcpSenderBase
    sink: TcpSink
    start_time: float

    @property
    def variant(self) -> str:
        return self.sender.variant

    def goodput_kbps(self, duration: float) -> float:
        """Average goodput over ``duration`` seconds of active time."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.sink.delivered_bytes * 8.0 / duration / 1000.0


def start_ftp(
    sim: Simulator,
    src: Node,
    dst: Node,
    variant: str = "newreno",
    window: int = 32,
    sport: int = 1000,
    dport: int = 2000,
    start_time: float = 0.0,
    max_packets: Optional[int] = None,
    **sender_kwargs,
) -> FtpFlow:
    """Create sender + sink for an FTP flow and schedule its start.

    SACK-capable variants automatically get a SACK-enabled sink.
    """
    cls = sender_class(variant)
    sender = cls(
        sim,
        src,
        dst=dst.node_id,
        sport=sport,
        dport=dport,
        window=window,
        max_packets=max_packets,
        **sender_kwargs,
    )
    sink = TcpSink(sim, dst, port=dport, sack=getattr(cls, "needs_sack_sink", False))
    sender.start(at=start_time)
    return FtpFlow(sender=sender, sink=sink, start_time=start_time)
