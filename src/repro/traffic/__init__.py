"""Traffic generators (substrate S9): FTP-over-TCP flows and CBR sources."""

from .cbr import CbrSink, CbrSource
from .ftp import FtpFlow, start_ftp

__all__ = ["CbrSink", "CbrSource", "FtpFlow", "start_ftp"]
