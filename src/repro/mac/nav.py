"""Network Allocation Vector: 802.11 virtual carrier sense."""

from __future__ import annotations


class Nav:
    """Tracks the time until which the medium is virtually reserved."""

    def __init__(self) -> None:
        self._until = 0.0

    @property
    def until(self) -> float:
        """Absolute time at which the current reservation ends."""
        return self._until

    def set(self, until: float) -> bool:
        """Extend the reservation to ``until`` if later than the current one.

        Returns True if the NAV actually moved (callers use this to know
        whether a medium-state re-evaluation is needed).
        """
        if until > self._until:
            self._until = until
            return True
        return False

    def busy(self, now: float) -> bool:
        """True while the virtual reservation is still in effect."""
        return now < self._until

    def clear(self) -> None:
        """Drop any reservation (used on channel reset in tests)."""
        self._until = 0.0
