"""MAC frame types for the 802.11 DCF exchange (RTS/CTS/DATA/ACK).

``MacFrame`` is a ``__slots__`` class rather than a dataclass: every
unicast data packet costs four frames (RTS/CTS/DATA/ACK), so frame
construction is the single most frequent object allocation in a saturated
run (see the allocation-churn notes in ``net/packet.py``).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

#: Link-layer broadcast address.
BROADCAST = -1


class FrameKind(Enum):
    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


class MacFrame:
    """One frame on the air.

    ``duration`` is the 802.11 Duration/ID field in seconds: how long the
    medium will remain reserved *after* this frame ends.  Third-party
    stations use it to set their NAV.
    """

    __slots__ = ("kind", "src", "dst", "size_bytes", "duration", "frame_id", "payload")

    def __init__(
        self,
        kind: FrameKind,
        src: int,
        dst: int,
        size_bytes: int,
        duration: float = 0.0,
        frame_id: int = 0,
        payload: Optional[object] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.duration = duration
        #: Sequence number for receiver-side duplicate detection; stable across
        #: retransmissions of the same MSDU.
        self.frame_id = frame_id
        #: The network-layer packet carried by DATA frames.
        self.payload = payload

    def __repr__(self) -> str:  # payload elided, as before the slots change
        return (
            f"MacFrame(kind={self.kind}, src={self.src}, dst={self.dst}, "
            f"size_bytes={self.size_bytes}, duration={self.duration}, "
            f"frame_id={self.frame_id})"
        )

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST
