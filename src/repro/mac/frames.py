"""MAC frame types for the 802.11 DCF exchange (RTS/CTS/DATA/ACK)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

#: Link-layer broadcast address.
BROADCAST = -1


class FrameKind(Enum):
    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


@dataclass
class MacFrame:
    """One frame on the air.

    ``duration`` is the 802.11 Duration/ID field in seconds: how long the
    medium will remain reserved *after* this frame ends.  Third-party
    stations use it to set their NAV.
    """

    kind: FrameKind
    src: int
    dst: int
    size_bytes: int
    duration: float = 0.0
    #: Sequence number for receiver-side duplicate detection; stable across
    #: retransmissions of the same MSDU.
    frame_id: int = 0
    #: The network-layer packet carried by DATA frames.
    payload: Optional[object] = field(default=None, repr=False)

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST
