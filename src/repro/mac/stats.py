"""Per-MAC counters and the medium-utilisation meter.

The utilisation meter is a substrate for TCP Muzha's router-side DRAI: each
node measures the fraction of wall-clock time its local medium was busy,
which (together with IFQ occupancy) is the "network status" the paper says
routers quantise into a rate-adjustment recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MacCounters:
    """Event counters exposed by each DCF instance."""

    data_tx: int = 0
    data_rx: int = 0
    rts_tx: int = 0
    cts_tx: int = 0
    ack_tx: int = 0
    retries: int = 0
    drops_retry_limit: int = 0
    duplicates_rx: int = 0
    broadcast_tx: int = 0
    broadcast_rx: int = 0
    rx_errors: int = 0
    #: Total backoff slots drawn across all contention rounds.
    backoff_slots: int = 0
    #: Seconds of virtual carrier sense (NAV) this MAC honoured.
    nav_time_s: float = 0.0


class MediumUtilizationMeter:
    """Accumulates how long the local medium has been busy.

    Driven by the MAC's busy/idle transitions; readers call
    :meth:`busy_time_since` with their own bookkeeping of the last read.
    """

    def __init__(self) -> None:
        self._busy_accum = 0.0
        self._busy_since: float = -1.0  # <0 means currently idle

    def on_busy(self, now: float) -> None:
        if self._busy_since < 0:
            self._busy_since = now

    def on_idle(self, now: float) -> None:
        if self._busy_since >= 0:
            self._busy_accum += now - self._busy_since
            self._busy_since = -1.0

    def total_busy_time(self, now: float) -> float:
        """Cumulative busy seconds up to ``now``."""
        total = self._busy_accum
        if self._busy_since >= 0:
            total += now - self._busy_since
        return total

    def busy_fraction(self, since: float, since_busy_time: float, now: float) -> float:
        """Busy fraction over the window (``since``, ``now``].

        ``since_busy_time`` is the value :meth:`total_busy_time` returned at
        ``since``; the caller keeps it so the meter itself stays stateless
        with respect to readers.
        """
        window = now - since
        if window <= 0:
            return 0.0
        fraction = (self.total_busy_time(now) - since_busy_time) / window
        return min(1.0, max(0.0, fraction))
