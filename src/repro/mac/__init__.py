"""IEEE 802.11 DCF MAC layer (substrate S3).

CSMA/CA with physical + virtual (NAV) carrier sense, RTS/CTS/DATA/ACK
exchange, binary exponential backoff, retry limits with link-failure
callbacks, and a medium-utilisation meter feeding the DRAI estimator.
"""

from .dcf import DcfMac, DcfState, MacListener, QueuedPacket
from .frames import BROADCAST, FrameKind, MacFrame
from .nav import Nav
from .params import MacParams
from .stats import MacCounters, MediumUtilizationMeter

__all__ = [
    "BROADCAST",
    "DcfMac",
    "DcfState",
    "FrameKind",
    "MacCounters",
    "MacFrame",
    "MacListener",
    "MacParams",
    "MediumUtilizationMeter",
    "Nav",
    "QueuedPacket",
]
