"""IEEE 802.11 Distributed Coordination Function (DCF).

Implements the access method the paper's NS2 runs relied on:

* physical carrier sense (from the radio) combined with virtual carrier
  sense (NAV, set from overheard Duration fields);
* DIFS/EIFS deferral and binary-exponential slotted backoff, with the
  countdown paused while the medium is busy and resumed where it left off;
* RTS/CTS/DATA/ACK exchange for unicast data (RTS threshold 0, as in the
  common MANET configuration), plain DATA for broadcast;
* short (pre-CTS) and long (post-CTS) retry limits with a *link failure*
  callback on exhaustion — the signal AODV uses to detect broken links;
* receiver-side duplicate detection via MAC sequence numbers.

The intra-flow contention, hidden-terminal collisions and retry-limit drops
this machinery produces on multihop chains are precisely the phenomena the
paper's evaluation (and TCP Muzha's design) revolves around.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Optional, Protocol, Tuple

from ..phy.channel import WirelessChannel
from ..phy.radio import Radio
from ..sim.simulator import Simulator
from ..sim.timer import Timer
from .frames import BROADCAST, FrameKind, MacFrame
from .nav import Nav
from .params import MacParams
from .stats import MacCounters, MediumUtilizationMeter


class MacListener(Protocol):
    """Upper-layer (link layer / network layer) interface."""

    def mac_deliver(self, packet: object, from_addr: int) -> None:
        """A network packet arrived for this node from MAC ``from_addr``."""

    def mac_tx_ok(self, next_hop: int, packet: object) -> None:
        """A unicast packet was acknowledged by ``next_hop``."""

    def mac_link_failure(self, next_hop: int, packet: object) -> None:
        """Retry limit exhausted sending ``packet`` to ``next_hop``."""


class TxQueue(Protocol):
    """What the DCF needs from the interface queue."""

    def dequeue(self) -> Optional["QueuedPacket"]:
        ...


class QueuedPacket:
    """An IFQ entry: a network packet bound for a MAC next hop."""

    __slots__ = ("packet", "next_hop", "size_bytes")

    def __init__(self, packet: object, next_hop: int, size_bytes: int) -> None:
        self.packet = packet
        self.next_hop = next_hop
        self.size_bytes = size_bytes


class DcfState(Enum):
    IDLE = "idle"
    CONTEND = "contend"
    WAIT_CTS = "wait_cts"
    SEND_DATA = "send_data"
    WAIT_ACK = "wait_ack"


class DcfMac:
    """One 802.11 DCF instance, bound to one radio."""

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        radio: Radio,
        address: int,
        params: Optional[MacParams] = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.radio = radio
        self.address = address
        self.params = params or MacParams()
        self.listener: Optional[MacListener] = None
        self.queue: Optional[TxQueue] = None

        self.nav = Nav()
        self.counters = MacCounters()
        self.meter = MediumUtilizationMeter()
        #: Fraction of time the MAC has a packet in service (dequeued but not
        #: yet acknowledged/dropped) — the router-side "no headroom" signal
        #: TCP Muzha's DRAI estimator reads.
        self.service_meter = MediumUtilizationMeter()

        radio.listener = self

        p = self.params
        phy = channel.phy
        self._cts_time = phy.control_tx_time(p.cts_bytes)
        self._ack_time = phy.control_tx_time(p.ack_bytes)
        self._eifs = p.sifs + self._ack_time + p.difs

        # Interned per-hop forwarding frames.  RTS and ACK frames are fully
        # determined by (next_hop, data size) / peer respectively and are
        # never mutated after construction, so the same frame object is
        # reused for every retransmission and every later packet along the
        # same hop instead of being rebuilt per attempt.  Tx-time memos
        # cache the (pure) PHY timing functions by frame size — same
        # floats, computed once.
        self._rts_cache: Dict[Tuple[int, int], MacFrame] = {}
        self._ack_cache: Dict[int, MacFrame] = {}
        self._data_time: Dict[int, float] = {}
        self._control_time: Dict[int, float] = {}

        self._rng = sim.stream(f"mac.backoff.{address}")
        self._down = False
        self._state = DcfState.IDLE
        self._current: Optional[QueuedPacket] = None
        self._frame_id = 0
        self._retries_short = 0
        self._retries_long = 0
        self._cw = p.cw_min
        self._backoff_slots = 0
        self._use_eifs = False

        self._access_event = None
        self._countdown_start = 0.0
        self._countdown_ifs = 0.0
        self._medium_idle_since: Optional[float] = 0.0
        self._nav_event = None

        self._pending_response: Optional[MacFrame] = None
        self._response_timer = Timer(sim, self._send_response, name="mac.sifs")
        self._cts_timer = Timer(sim, self._on_cts_timeout, name="mac.cts_to")
        self._ack_timer = Timer(sim, self._on_ack_timeout, name="mac.ack_to")

        self._rx_dedup: Dict[int, int] = {}

    # -- public API -------------------------------------------------------------

    @property
    def state(self) -> DcfState:
        return self._state

    @property
    def busy_with_packet(self) -> bool:
        """True while a packet is being contended for / transmitted."""
        return self._current is not None

    def wakeup(self) -> None:
        """The interface queue went non-empty; pull if we are idle."""
        if self._down:
            return
        if self._current is None:
            self._pull_next()

    def shutdown(self) -> None:
        """Power the MAC down (node crash): cancel every pending timer and
        event, drop the in-service packet, and ignore stale callbacks.

        Events whose handles the MAC does not keep (``mac.tx_done``, SIFS
        responses already queued) may still fire after shutdown; the
        ``_down`` guards turn them into no-ops instead of stale-state
        corruption.
        """
        if self._down:
            return
        self._down = True
        self._reset_tx_state()
        self._response_timer.stop()
        self._pending_response = None
        self.sim.cancel(self._nav_event)
        self._nav_event = None
        self.nav.clear()
        self._use_eifs = False
        self._medium_idle_since = None

    def restart(self) -> None:
        """Power back up with fresh link state (a rebooted node forgets its
        duplicate-detection history and any virtual carrier reservation)."""
        if not self._down:
            return
        self._down = False
        self._rx_dedup.clear()
        # _frame_id deliberately keeps counting: reusing ids after a reboot
        # would trip the peers' duplicate caches and silently eat frames.
        self._reevaluate_medium()
        self.wakeup()

    # -- medium state -------------------------------------------------------------

    def _medium_busy(self) -> bool:
        return (
            self.radio.carrier_busy
            or self.nav.busy(self.sim.now)
            or self._pending_response is not None
        )

    def _reevaluate_medium(self) -> None:
        if self._medium_busy():
            if self._medium_idle_since is not None:
                self._medium_idle_since = None
                self._pause_countdown()
        else:
            if self._medium_idle_since is None:
                self._medium_idle_since = self.sim.now
                self._maybe_start_countdown()

    # -- PHY listener interface -----------------------------------------------------

    def phy_channel_busy(self) -> None:
        self.meter.on_busy(self.sim.now)
        self._reevaluate_medium()

    def phy_channel_idle(self) -> None:
        self.meter.on_idle(self.sim.now)
        self._reevaluate_medium()

    def phy_rx_error(self) -> None:
        # A frame we might have decoded was lost: defer by EIFS next time,
        # per the standard, to protect the (unheard) ACK of that exchange.
        self.counters.rx_errors += 1
        self._use_eifs = True

    def phy_receive(self, frame: MacFrame) -> None:
        if self._down:
            return
        self._use_eifs = False
        if frame.dst == self.address:
            if frame.kind is FrameKind.RTS:
                self._handle_rts(frame)
            elif frame.kind is FrameKind.CTS:
                self._handle_cts(frame)
            elif frame.kind is FrameKind.DATA:
                self._handle_data(frame)
            elif frame.kind is FrameKind.ACK:
                self._handle_ack(frame)
        elif frame.is_broadcast and frame.kind is FrameKind.DATA:
            self.counters.broadcast_rx += 1
            if self.listener is not None:
                self.listener.mac_deliver(frame.payload, frame.src)
        else:
            self._update_nav(frame)

    def _update_nav(self, frame: MacFrame) -> None:
        if frame.duration <= 0:
            return
        now = self.sim.now
        until = now + frame.duration
        prev = self.nav.until
        if self.nav.set(until):
            # Each successful extension adds exactly the newly reserved span.
            self.counters.nav_time_s += until - max(prev, now)
            self.sim.cancel(self._nav_event)
            self._nav_event = self.sim.at(
                until, self._on_nav_end, name="mac.nav_end"
            )
            self._reevaluate_medium()

    def _on_nav_end(self) -> None:
        # Drop the handle before re-evaluating: the scheduler recycles fired
        # events, so keeping (and later cancelling) a dead reference could
        # hit an unrelated reissued event.
        self._nav_event = None
        self._reevaluate_medium()

    # -- backoff countdown ---------------------------------------------------------

    def _maybe_start_countdown(self) -> None:
        if self._state is not DcfState.CONTEND or self._access_event is not None:
            return
        if self._medium_idle_since is None:
            return
        ifs = self._eifs if self._use_eifs else self.params.difs
        self._countdown_ifs = ifs
        self._countdown_start = self.sim.now
        delay = ifs + self._backoff_slots * self.params.slot_time
        self._access_event = self.sim.after(delay, self._access, name="mac.access")

    def _pause_countdown(self) -> None:
        if self._access_event is None:
            return
        self.sim.cancel(self._access_event)
        self._access_event = None
        elapsed = self.sim.now - self._countdown_start - self._countdown_ifs
        if elapsed > 0:
            slots_done = int(elapsed / self.params.slot_time + 1e-9)
            self._backoff_slots = max(0, self._backoff_slots - slots_done)

    def _begin_contention(self, first_attempt: bool) -> None:
        """Enter CONTEND; transmit immediately if the medium has been idle
        longer than DIFS (802.11 immediate access), else run the backoff."""
        self._state = DcfState.CONTEND
        idle_since = self._medium_idle_since
        if (
            first_attempt
            and idle_since is not None
            and self.sim.now - idle_since >= self.params.difs
            and not self._use_eifs
        ):
            self._backoff_slots = 0
            self._access()
            return
        self._backoff_slots = self._rng.randint(0, self._cw)
        self.counters.backoff_slots += self._backoff_slots
        self._maybe_start_countdown()

    def _access(self) -> None:
        self._access_event = None
        if self._down:
            return
        if self._current is None:
            self._state = DcfState.IDLE
            return
        if self._medium_busy():
            # Lost the race against a same-instant arrival; the idle
            # transition will restart the countdown.
            return
        entry = self._current
        if entry.next_hop == BROADCAST:
            self._send_frame(self._build_data_frame(entry))
        elif self.params.rts_threshold == 0 or entry.size_bytes >= self.params.rts_threshold:
            self._send_frame(self._build_rts(entry))
        else:
            self._send_frame(self._build_data_frame(entry))

    # -- frame construction ----------------------------------------------------------

    def _data_frame_bytes(self, entry: QueuedPacket) -> int:
        return entry.size_bytes + self.params.data_header_bytes

    def _data_tx_time(self, size_bytes: int) -> float:
        time = self._data_time.get(size_bytes)
        if time is None:
            time = self.channel.phy.data_tx_time(size_bytes)
            self._data_time[size_bytes] = time
        return time

    def _build_rts(self, entry: QueuedPacket) -> MacFrame:
        key = (entry.next_hop, entry.size_bytes)
        frame = self._rts_cache.get(key)
        if frame is None:
            data_time = self._data_tx_time(self._data_frame_bytes(entry))
            duration = (
                3 * self.params.sifs + self._cts_time + data_time + self._ack_time
            )
            frame = MacFrame(
                FrameKind.RTS,
                src=self.address,
                dst=entry.next_hop,
                size_bytes=self.params.rts_bytes,
                duration=duration,
            )
            self._rts_cache[key] = frame
        return frame

    def _build_data_frame(self, entry: QueuedPacket) -> MacFrame:
        broadcast = entry.next_hop == BROADCAST
        duration = 0.0 if broadcast else self.params.sifs + self._ack_time
        return MacFrame(
            FrameKind.DATA,
            src=self.address,
            dst=entry.next_hop,
            size_bytes=self._data_frame_bytes(entry),
            duration=duration,
            frame_id=self._frame_id,
            payload=entry.packet,
        )

    # -- transmission ------------------------------------------------------------------

    def _tx_time(self, frame: MacFrame) -> float:
        if frame.kind is FrameKind.DATA and frame.dst != BROADCAST:
            return self._data_tx_time(frame.size_bytes)
        # Control frames and broadcast data go out at the basic rate.
        time = self._control_time.get(frame.size_bytes)
        if time is None:
            time = self.channel.phy.control_tx_time(frame.size_bytes)
            self._control_time[frame.size_bytes] = time
        return time

    def _send_frame(self, frame: MacFrame) -> None:
        tx_time = self._tx_time(frame)
        # Gate before building the field dict: an unsubscribed run must not
        # pay for trace-field construction on the per-frame hot path.
        if self.sim.trace.wants("mac.tx"):
            self.sim.emit(
                "mac", "mac.tx",
                kind=frame.kind.name, src=frame.src, dst=frame.dst,
                size_bytes=frame.size_bytes,
            )
        if frame.kind is FrameKind.RTS:
            self.counters.rts_tx += 1
            self._state = DcfState.WAIT_CTS
        elif frame.kind is FrameKind.CTS:
            self.counters.cts_tx += 1
        elif frame.kind is FrameKind.ACK:
            self.counters.ack_tx += 1
        elif frame.is_broadcast:
            self.counters.broadcast_tx += 1
        else:
            self.counters.data_tx += 1
        self.channel.transmit(self.radio, frame, tx_time)
        self.sim.after(tx_time, self._tx_done, frame, name="mac.tx_done")

    def _tx_done(self, frame: MacFrame) -> None:
        if self._down:
            return  # the node died between keying up and tx completion
        if frame.kind is FrameKind.RTS:
            self._cts_timer.start(
                self.params.sifs + self._cts_time + self.params.timeout_guard
            )
        elif frame.kind is FrameKind.DATA:
            if frame.is_broadcast:
                self._finish_current(success=True)
            elif self._current is not None and frame.payload is self._current.packet:
                self._state = DcfState.WAIT_ACK
                self._ack_timer.start(
                    self.params.sifs + self._ack_time + self.params.timeout_guard
                )

    # -- SIFS responses ------------------------------------------------------------------

    def _schedule_response(self, frame: MacFrame) -> None:
        if self._pending_response is not None:
            return  # should not happen on a conforming medium; drop quietly
        self._pending_response = frame
        self._response_timer.start(self.params.sifs)
        self._reevaluate_medium()

    def _send_response(self) -> None:
        frame = self._pending_response
        self._pending_response = None
        if self._down:
            return
        if frame is not None:
            self._send_frame(frame)
        self._reevaluate_medium()

    # -- frame handlers ----------------------------------------------------------------------

    def _handle_rts(self, frame: MacFrame) -> None:
        if (
            self._pending_response is not None
            or self.radio.transmitting
            or self._state in (DcfState.WAIT_CTS, DcfState.SEND_DATA, DcfState.WAIT_ACK)
            or self.nav.busy(self.sim.now)
        ):
            return  # cannot honour the reservation; sender will retry
        duration = max(0.0, frame.duration - self.params.sifs - self._cts_time)
        cts = MacFrame(
            FrameKind.CTS,
            src=self.address,
            dst=frame.src,
            size_bytes=self.params.cts_bytes,
            duration=duration,
        )
        self._schedule_response(cts)

    def _handle_cts(self, frame: MacFrame) -> None:
        if (
            self._state is not DcfState.WAIT_CTS
            or self._current is None
            or frame.src != self._current.next_hop
        ):
            return
        self._cts_timer.stop()
        self._state = DcfState.SEND_DATA
        self._schedule_response(self._build_data_frame(self._current))

    def _handle_data(self, frame: MacFrame) -> None:
        ack = self._ack_cache.get(frame.src)
        if ack is None:
            ack = MacFrame(
                FrameKind.ACK,
                src=self.address,
                dst=frame.src,
                size_bytes=self.params.ack_bytes,
                duration=0.0,
            )
            self._ack_cache[frame.src] = ack
        self._schedule_response(ack)
        if self._rx_dedup.get(frame.src) == frame.frame_id:
            self.counters.duplicates_rx += 1
            return
        self._rx_dedup[frame.src] = frame.frame_id
        self.counters.data_rx += 1
        if self.listener is not None:
            self.listener.mac_deliver(frame.payload, frame.src)

    def _handle_ack(self, frame: MacFrame) -> None:
        if (
            self._state is not DcfState.WAIT_ACK
            or self._current is None
            or frame.src != self._current.next_hop
        ):
            return
        self._ack_timer.stop()
        entry = self._current
        if self.listener is not None:
            self.listener.mac_tx_ok(entry.next_hop, entry.packet)
        self._finish_current(success=True)

    # -- timeouts / retries -------------------------------------------------------------------

    def _on_cts_timeout(self) -> None:
        if self._state is not DcfState.WAIT_CTS:
            return
        self._retries_short += 1
        self.counters.retries += 1
        if self._retries_short >= self.params.short_retry_limit:
            self._drop_current()
        else:
            self._retry()

    def _on_ack_timeout(self) -> None:
        if self._state is not DcfState.WAIT_ACK:
            return
        self._retries_long += 1
        self.counters.retries += 1
        if self._retries_long >= self.params.long_retry_limit:
            self._drop_current()
        else:
            self._retry()

    def _retry(self) -> None:
        self._cw = self.params.next_cw(self._cw)
        self._begin_contention(first_attempt=False)

    def _drop_current(self) -> None:
        self.counters.drops_retry_limit += 1
        entry = self._current
        # Gate before building the field dict (sim.trace discipline).
        if entry is not None and self.sim.trace.active and self.sim.trace.wants("mac.drop"):
            self.sim.emit(
                "mac", "mac.drop",
                node=self.address, dst=entry.next_hop,
                retries=self._retries_short + self._retries_long,
            )
        self._reset_tx_state()
        if entry is not None and self.listener is not None:
            self.listener.mac_link_failure(entry.next_hop, entry.packet)
        self._pull_next()

    def _finish_current(self, success: bool) -> None:
        self._reset_tx_state()
        self._pull_next()

    def _reset_tx_state(self) -> None:
        self._cts_timer.stop()
        self._ack_timer.stop()
        self._pause_countdown()
        if self._current is not None:
            self.service_meter.on_idle(self.sim.now)
        self._current = None
        self._retries_short = 0
        self._retries_long = 0
        self._cw = self.params.cw_min
        self._state = DcfState.IDLE

    # -- queue interaction ---------------------------------------------------------------------

    def _pull_next(self) -> None:
        if self._current is not None or self.queue is None:
            return
        entry = self.queue.dequeue()
        if entry is None:
            self._state = DcfState.IDLE
            return
        self._current = entry
        self.service_meter.on_busy(self.sim.now)
        self._frame_id += 1
        self._begin_contention(first_attempt=True)
