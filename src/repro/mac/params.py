"""IEEE 802.11 DCF MAC parameters (DSSS PHY defaults, as in NS2 2.29).

These constants drive every timing decision in the DCF state machine and are
the same knobs the paper's NS2 setup used.  ``rts_threshold = 0`` means
RTS/CTS protects every unicast data frame, the common MANET-study setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import units


@dataclass(frozen=True)
class MacParams:
    """Timing, contention and framing constants for 802.11 DCF."""

    slot_time: float = units.microseconds(20.0)
    sifs: float = units.microseconds(10.0)
    #: DIFS = SIFS + 2 * slot.
    difs: float = units.microseconds(50.0)
    cw_min: int = 31
    cw_max: int = 1023
    #: Retry limit for frames that failed before CTS arrived (SSRC).
    short_retry_limit: int = 7
    #: Retry limit for data frames that failed to be ACKed (SLRC).
    long_retry_limit: int = 4
    #: Unicast payloads >= this size use RTS/CTS; 0 = always.
    rts_threshold: int = 0
    #: MAC data header + FCS, bytes.
    data_header_bytes: int = 28
    rts_bytes: int = 20
    cts_bytes: int = 14
    ack_bytes: int = 14
    #: Extra guard added to CTS/ACK timeouts to absorb propagation delay.
    timeout_guard: float = units.microseconds(40.0)

    def next_cw(self, cw: int) -> int:
        """Binary exponential backoff: double the window, capped at cw_max."""
        return min(2 * (cw + 1) - 1, self.cw_max)
