"""Parallel, cached experiment campaigns.

The paper's evaluation is a grid — TCP variant × hop count × loss model ×
replication — of mutually independent simulation runs.  This module turns
that grid into a batch workload:

* :func:`run_campaign` fans :class:`repro.experiments.runner.RunSpec` units
  out over a ``multiprocessing`` worker pool (``jobs`` workers, default
  ``os.cpu_count()``);
* every run's master seed is derived from its ``(scenario, replication)``
  key via :func:`repro.sim.rng.derive_run_seed`, so metrics are
  bit-identical whatever the worker count or execution order;
* completed runs are memoised in a :class:`CampaignCache` — an on-disk
  content-addressed store keyed by the hash of the run's full configuration
  plus the code schema version — so re-running a campaign only executes
  scenarios whose parameters (or the simulator itself) changed.

Determinism contract: ``run_campaign(grid)`` is a pure function of the grid
and the campaign seed.  The property tests in
``tests/props/test_campaign_determinism.py`` hold this module to it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..sim.rng import derive_run_seed
from .config import CACHE_SCHEMA_VERSION, ScenarioConfig, stable_digest
from .runner import RunResult, RunSpec, execute_run

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Scenario identity and cache keys


def scenario_key(spec: RunSpec) -> str:
    """Stable identity of a scenario *shape*, independent of its seed.

    Two specs that differ only in ``config.seed`` are the same scenario:
    replications of it draw their seeds from this key, so adding a scenario
    to a grid can never perturb another scenario's randomness.
    """
    payload = spec.to_dict()
    payload["config"].pop("seed")
    return stable_digest(payload)


def run_digest(spec: RunSpec) -> str:
    """Content-address of one fully-seeded run, including the code schema.

    This is the cache key: it covers every parameter the simulation result
    depends on, plus :data:`CACHE_SCHEMA_VERSION` so bumping that constant
    invalidates all previously cached results at once.
    """
    return stable_digest(
        {"schema": CACHE_SCHEMA_VERSION, "spec": spec.to_dict()}
    )


# ---------------------------------------------------------------------------
# On-disk content-addressed cache


class CampaignCache:
    """Content-addressed store of run results under a root directory.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` — one JSON document per
    completed run.  Writes are atomic (tmp file + rename) so a campaign
    killed mid-write never leaves a truncated entry behind.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``digest``, or None on a miss."""
        path = self._path(digest)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A corrupt entry is a miss; the rerun will overwrite it.
            return None

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Campaign plan and results


@dataclass(frozen=True)
class CampaignRun:
    """One schedulable unit: a seeded spec plus its identity/cache keys."""

    index: int
    scenario: str  # scenario_key(spec) — seed-independent identity
    replication: int
    seed: int
    spec: RunSpec  # spec.config.seed == seed
    digest: str  # run_digest(spec) — the cache key


@dataclass
class RunRecord:
    """Outcome of one campaign run.

    ``metrics`` is the run's canonical plain data and the sole input to
    fingerprints; ``manifest`` is the run's provenance document (wall time,
    platform, spec, result digest) — attached for attribution, excluded from
    every determinism comparison by construction.
    """

    run: CampaignRun
    metrics: Dict[str, Any]  # RunResult.to_dict() — canonical plain data
    cached: bool
    manifest: Optional[Dict[str, Any]] = None

    @property
    def result(self) -> RunResult:
        res = RunResult.from_dict(self.metrics)
        res.manifest = self.manifest
        return res

    def metrics_bytes(self) -> bytes:
        """Canonical byte serialization, for bit-identity comparisons."""
        return json.dumps(
            self.metrics, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


@dataclass
class CampaignResult:
    """All records of a campaign, in the order the grid listed them."""

    records: List[RunRecord] = field(default_factory=list)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    def results(self) -> List[RunResult]:
        return [record.result for record in self.records]

    def fingerprint(self) -> str:
        """Digest of every run's metrics, keyed by (scenario, replication).

        Keying by identity rather than grid position makes fingerprints of
        reordered-but-equal campaigns compare equal — the determinism
        property the tests assert.
        """
        payload = {
            f"{r.run.scenario}:{r.run.replication}": r.metrics
            for r in self.records
        }
        return stable_digest(payload)


# ---------------------------------------------------------------------------
# Grid construction helpers


def chain_grid(
    variants: Sequence[str],
    hops_list: Sequence[int],
    config: Optional[ScenarioConfig] = None,
    record_dynamics: bool = False,
) -> List[RunSpec]:
    """The paper's staple grid: every (variant, hops) single-flow chain."""
    config = config or ScenarioConfig()
    return [
        RunSpec(kind="chain", hops=hops, variants=(variant,), config=config,
                record_dynamics=record_dynamics)
        for variant in variants
        for hops in hops_list
    ]


def plan_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
) -> List[CampaignRun]:
    """Expand a scenario grid into seeded, cache-addressed run units."""
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    runs: List[CampaignRun] = []
    for spec in grid:
        key = scenario_key(spec)
        for replication in range(replications):
            seed = derive_run_seed(base_seed, key, replication)
            seeded = spec.with_seed(seed)
            runs.append(
                CampaignRun(
                    index=len(runs),
                    scenario=key,
                    replication=replication,
                    seed=seed,
                    spec=seeded,
                    digest=run_digest(seeded),
                )
            )
    return runs


# ---------------------------------------------------------------------------
# Execution


def _execute_unit(
    args: Tuple[int, RunSpec]
) -> Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]]:
    """Worker entry point: run one spec, return (index, metrics, manifest)."""
    index, spec = args
    result = execute_run(spec)
    return index, result.to_dict(), result.manifest


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) starts workers in milliseconds; results do not
    # depend on the start method because every run re-derives its RNG state
    # from the spec alone.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


ProgressFn = Callable[[RunRecord, int, int], None]


def run_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Run every ``(spec, replication)`` in ``grid``; return ordered records.

    ``jobs`` is the worker-process count (default ``os.cpu_count()``;
    ``1`` executes in-process with no pool).  ``cache`` enables the on-disk
    memo: hits skip execution entirely, misses are written back after their
    run completes.  ``progress`` is invoked once per finished run — from
    the coordinating process, in completion order — with
    ``(record, done_count, total_count)``.

    The returned records are always in grid order, and their metrics are
    byte-identical for any ``jobs`` value: seeds come from
    :func:`plan_campaign`, never from scheduling.
    """
    runs = plan_campaign(grid, replications=replications, base_seed=base_seed)
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    records: Dict[int, RunRecord] = {}
    done = 0

    def finish(record: RunRecord) -> None:
        nonlocal done
        records[record.run.index] = record
        done += 1
        if progress is not None:
            progress(record, done, len(runs))

    pending: List[CampaignRun] = []
    for run in runs:
        payload = cache.get(run.digest) if cache is not None else None
        if payload is not None:
            # v2 entries are {"result": ..., "manifest": ...} envelopes;
            # tolerate bare-result payloads for robustness.
            metrics = payload.get("result", payload)
            finish(RunRecord(run=run, metrics=metrics, cached=True,
                             manifest=payload.get("manifest")))
        else:
            pending.append(run)

    def store(run: CampaignRun, metrics: Dict[str, Any],
              manifest: Optional[Dict[str, Any]]) -> None:
        if cache is not None:
            cache.put(run.digest, {"result": metrics, "manifest": manifest})
        finish(RunRecord(run=run, metrics=metrics, cached=False,
                         manifest=manifest))

    by_index = {run.index: run for run in pending}
    if pending and jobs == 1:
        for run in pending:
            _, metrics, manifest = _execute_unit((run.index, run.spec))
            store(run, metrics, manifest)
    elif pending:
        ctx = _pool_context()
        workers = min(jobs, len(pending))
        with ctx.Pool(processes=workers) as pool:
            work = [(run.index, run.spec) for run in pending]
            for index, metrics, manifest in pool.imap_unordered(
                _execute_unit, work
            ):
                store(by_index[index], metrics, manifest)

    return CampaignResult(records=[records[i] for i in range(len(runs))])
