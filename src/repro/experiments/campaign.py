"""Parallel, cached, self-healing experiment campaigns.

The paper's evaluation is a grid — TCP variant × hop count × loss model ×
replication — of mutually independent simulation runs.  This module turns
that grid into a batch workload:

* :func:`run_campaign` fans :class:`repro.experiments.runner.RunSpec` units
  out over supervised ``multiprocessing`` workers (``jobs`` at a time,
  default ``os.cpu_count()``);
* every run's master seed is derived from its ``(scenario, replication)``
  key via :func:`repro.sim.rng.derive_run_seed`, so metrics are
  bit-identical whatever the worker count, pool mode, batching, or
  execution order;
* completed runs are memoised in a :class:`CampaignCache` — an on-disk
  content-addressed store keyed by the hash of the run's full configuration
  plus the code schema version — so re-running a campaign only executes
  scenarios whose parameters (or the simulator itself) changed.

Execution backends (``pool_mode``):

* ``"warm"`` (default) — a persistent pool of long-lived supervised
  workers.  Each worker is forked once, pulls batches of units over its own
  duplex pipe, and streams one result message back per unit as it
  completes, so interpreter startup and module import are amortised over
  the whole campaign instead of being paid per attempt.
* ``"per-attempt"`` — the PR-4 model: one freshly forked process per
  attempt.  Slower on short runs, but every attempt gets a pristine
  interpreter; prefer it when hunting state-leak bugs or when a unit is
  suspected of corrupting interpreter-global state.
* ``"inproc"`` — everything in the coordinating process, no forks, no
  watchdog.  The debugging backend (breakpoints and monkeypatches apply
  directly).

Self-healing (``warm`` and ``per-attempt``): each attempt runs under a
supervisor with an optional wall-clock watchdog
(:class:`RetryPolicy.task_timeout`).  A worker that crashes, is killed, or
hangs past its deadline is terminated — and, in warm mode, transparently
replaced by a freshly forked worker — while the unit is retried with
exponential backoff up to :class:`RetryPolicy.max_retries` times; a unit
that exhausts its retries is *quarantined* — recorded in
``CampaignResult.failed`` — and the rest of the campaign completes
normally.  Units that were merely queued behind a crashed/hung unit on the
same warm worker are requeued without being charged an attempt.  Cache
entries carry a content checksum; a truncated or bit-flipped entry is
detected on read, reported via :class:`CacheCorruptionWarning`, evicted,
and transparently recomputed.  Cache hits short-circuit before dispatch:
a fully cached campaign never starts a worker at all.

Determinism contract: ``run_campaign(grid)`` is a pure function of the grid
and the campaign seed — pool mode included.  Per-unit seeds are derived in
:func:`plan_campaign` before any dispatch, so which warm worker executes a
unit (and in which batch) is invisible in the results.  The property tests
in ``tests/props/test_campaign_determinism.py`` and the pool-mode
byte-identity tests in ``tests/integration/test_pool_modes.py`` hold this
module to it.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs.engine import CampaignTelemetry
from ..sim.rng import derive_run_seed
from .config import CACHE_SCHEMA_VERSION, ScenarioConfig, stable_digest
from .journal import CampaignJournal, JournalReplay
from .runner import RunResult, RunSpec, execute_run

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: Fault-injection hook for CI/testing: ``"<sentinel-path>:<index>"`` makes
#: the worker executing unit ``index`` hard-exit (``os._exit``) once — the
#: sentinel file marks the crash as spent so the retry succeeds.
CRASH_ONCE_ENV = "REPRO_CAMPAIGN_CRASH_ONCE"

#: Rendezvous hook for CI/testing: ``"<path>:<index>"`` makes the worker
#: executing unit ``index`` touch ``<path>.ready`` and block until
#: ``<path>.go`` appears — a deterministic mid-flight moment for the
#: signal/interruption tests to deliver SIGTERM at.  One-shot: once
#: ``<path>.ready`` exists the hook is spent, so retries and resumed
#: campaigns run through unimpeded.
BARRIER_ENV = "REPRO_CAMPAIGN_BARRIER"

#: Execution backends accepted by :func:`run_campaign`'s ``pool_mode``.
POOL_MODES = ("warm", "per-attempt", "inproc")

#: Upper bound on how many units one warm-pool dispatch hands a worker.
#: Small enough that a late straggler batch cannot serialise the tail of a
#: campaign, large enough to amortise the pipe round-trip on tiny units.
WARM_BATCH_MAX = 4


class CacheCorruptionWarning(UserWarning):
    """A campaign cache entry failed validation and was evicted."""


class GracefulShutdown:
    """Cooperative SIGINT/SIGTERM handling for a running campaign.

    The first signal sets :attr:`requested`: the coordinator stops
    dispatching new units, drains in-flight work for up to
    ``drain_timeout`` seconds, checkpoints the journal, and terminates its
    workers cleanly (TERM, escalating to KILL).  A second signal sets
    :attr:`force` — the drain is abandoned immediately — and uninstalls the
    handlers, so a third signal kills the process outright via the default
    disposition.  ``request()`` drives the same state machine without a
    signal, which is what the in-process tests use.
    """

    SIGNAL_NAMES = ("SIGINT", "SIGTERM")

    def __init__(self, drain_timeout: float = 5.0) -> None:
        if drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        self.drain_timeout = drain_timeout
        self.requested = False
        self.force = False
        self.signal_name: Optional[str] = None
        self._deadline: Optional[float] = None
        self._previous: Dict[int, Any] = {}

    def request(self, signal_name: str = "manual") -> None:
        """First call starts the drain; a second call forces the abort."""
        if self.requested:
            self.force = True
        else:
            self.requested = True
            self.signal_name = signal_name
            self._deadline = time.monotonic() + self.drain_timeout

    @property
    def abort(self) -> bool:
        """True once draining must stop: forced, or past the deadline."""
        return self.force or (
            self._deadline is not None and time.monotonic() >= self._deadline
        )

    def _handler(self, signum: int, frame: Any) -> None:
        already = self.requested
        self.request(signal.Signals(signum).name)
        if already:
            self.uninstall()  # third signal → default disposition → death

    def install(self) -> "GracefulShutdown":
        """Route SIGINT/SIGTERM through this object (main thread only)."""
        for name in self.SIGNAL_NAMES:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - exotic platforms
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        return self

    def uninstall(self) -> None:
        for signum, previous in list(self._previous.items()):
            try:
                signal.signal(signum, previous)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        self._previous.clear()

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()


def _reset_worker_signals() -> None:
    """Detach a forked worker from the coordinator's signal handlers.

    Workers inherit signal dispositions across ``fork``; an inherited
    graceful-shutdown handler would make SIGTERM a no-op in the child and
    push every drain onto the slow KILL escalation path.  SIGINT is
    ignored (the terminal delivers ^C to the whole foreground group, but
    shutdown is the coordinator's call to make); SIGTERM is restored to
    its default so ``process.terminate()`` works.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-POSIX
        pass


# ---------------------------------------------------------------------------
# Scenario identity and cache keys


def scenario_key(spec: RunSpec) -> str:
    """Stable identity of a scenario *shape*, independent of its seed.

    Two specs that differ only in ``config.seed`` are the same scenario:
    replications of it draw their seeds from this key, so adding a scenario
    to a grid can never perturb another scenario's randomness.
    """
    payload = spec.to_dict()
    payload["config"].pop("seed")
    return stable_digest(payload)


def run_digest(spec: RunSpec) -> str:
    """Content-address of one fully-seeded run, including the code schema.

    This is the cache key: it covers every parameter the simulation result
    depends on, plus :data:`CACHE_SCHEMA_VERSION` so bumping that constant
    invalidates all previously cached results at once.
    """
    return stable_digest(
        {"schema": CACHE_SCHEMA_VERSION, "spec": spec.to_dict()}
    )


# ---------------------------------------------------------------------------
# On-disk content-addressed cache


def _envelope_checksum(result: Dict[str, Any],
                       manifest: Optional[Dict[str, Any]]) -> str:
    return stable_digest({"manifest": manifest, "result": result})


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename into it survives a crash/power cut."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystems
        pass
    finally:
        os.close(fd)


class CampaignCache:
    """Content-addressed store of run results under a root directory.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` — one JSON document per
    completed run, a ``{"result", "manifest", "checksum"}`` envelope whose
    checksum is the content digest of the result+manifest pair.  Writes are
    durable and atomic (pid-unique tmp file, fsynced, renamed over the final
    path, directory fsynced) so a campaign killed mid-write — or a power cut
    — never leaves a truncated entry behind; corruption that slips past that
    (bit rot, a partial copy) is caught by the checksum on read — the entry
    is evicted with a :class:`CacheCorruptionWarning` and the run recomputed.

    Concurrency: mutations (:meth:`put`, evictions, :meth:`clear`) hold an
    advisory ``fcntl.flock`` on the ``.lock`` sidecar under the root, so
    concurrent campaigns can share one cache directory.  Reads are
    lock-free: atomic rename guarantees a reader sees either the old state
    or a complete entry, and the checksum catches everything else.
    """

    LOCK_NAME = ".lock"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        #: Corrupt entries evicted by :meth:`get` over this cache's lifetime.
        self.evictions = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    @property
    def lock_path(self) -> Path:
        return self.root / self.LOCK_NAME

    @contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory exclusive lock over cache mutations (no-op sans fcntl)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            os.close(fd)

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached ``{"result", "manifest"}`` payload, or None on a miss.

        Any validation failure — unreadable file, broken JSON, missing
        checksum, checksum mismatch — warns, evicts the entry, and reports a
        miss so the caller recomputes.
        """
        path = self._path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._evict(path, digest, f"unreadable: {exc}")
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            self._evict(path, digest, f"truncated or invalid JSON: {exc}")
            return None
        if (
            not isinstance(payload, dict)
            or "result" not in payload
            or "checksum" not in payload
        ):
            self._evict(path, digest, "malformed envelope")
            return None
        expected = _envelope_checksum(payload["result"], payload.get("manifest"))
        if payload["checksum"] != expected:
            self._evict(path, digest, "checksum mismatch (corrupted content)")
            return None
        return {"result": payload["result"], "manifest": payload.get("manifest")}

    def _evict(self, path: Path, digest: str, reason: str) -> None:
        self.evictions += 1
        warnings.warn(
            f"campaign cache entry {digest[:12]}… {reason}; "
            "evicting and recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )
        with self._lock():
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Durably store one result envelope (locked, atomic, fsynced).

        Write path: pid-unique hidden tmp file → flush → ``fsync`` the file
        → ``os.replace`` over the final name → ``fsync`` the directory.  A
        crash or power cut at any point leaves either the old state or the
        complete new entry, never a torn one.
        """
        result = payload["result"]
        manifest = payload.get("manifest")
        envelope = {
            "result": result,
            "manifest": manifest,
            "checksum": _envelope_checksum(result, manifest),
        }
        path = self._path(digest)
        with self._lock():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
            try:
                with tmp.open("w", encoding="utf-8") as handle:
                    json.dump(envelope, handle, sort_keys=True,
                              separators=(",", ":"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
            _fsync_dir(path.parent)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock():
            for entry in self.root.glob("*/*.json"):
                entry.unlink()
                removed += 1
        return removed


# ---------------------------------------------------------------------------
# Campaign plan and results


@dataclass(frozen=True)
class CampaignRun:
    """One schedulable unit: a seeded spec plus its identity/cache keys."""

    index: int
    scenario: str  # scenario_key(spec) — seed-independent identity
    replication: int
    seed: int
    spec: RunSpec  # spec.config.seed == seed
    digest: str  # run_digest(spec) — the cache key


@dataclass
class RunRecord:
    """Outcome of one campaign run.

    ``metrics`` is the run's canonical plain data and the sole input to
    fingerprints; ``manifest`` is the run's provenance document (wall time,
    platform, spec, result digest) — attached for attribution, excluded from
    every determinism comparison by construction.
    """

    run: CampaignRun
    metrics: Dict[str, Any]  # RunResult.to_dict() — canonical plain data
    cached: bool
    manifest: Optional[Dict[str, Any]] = None

    @property
    def result(self) -> RunResult:
        res = RunResult.from_dict(self.metrics)
        res.manifest = self.manifest
        return res

    def metrics_bytes(self) -> bytes:
        """Canonical byte serialization, for bit-identity comparisons."""
        return json.dumps(
            self.metrics, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


@dataclass
class FailedRun:
    """A unit quarantined after exhausting its retries."""

    run: CampaignRun
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.run.index,
            "scenario": self.run.scenario,
            "replication": self.run.replication,
            "seed": self.run.seed,
            "digest": self.run.digest,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class CampaignResult:
    """All records of a campaign, in the order the grid listed them.

    ``failed`` holds the quarantined units — present only when workers
    crashed or hung past their retry budget.  ``records`` then covers the
    surviving subset, still in grid order, so a partially failed campaign
    yields partial (explicitly attributed) results instead of nothing.
    """

    records: List[RunRecord] = field(default_factory=list)
    failed: List[FailedRun] = field(default_factory=list)
    #: Corrupt cache entries evicted (and recomputed) during this campaign —
    #: the delta of :attr:`CampaignCache.evictions` across the run.  An
    #: environment fact: eviction forces recomputation, never different bytes.
    cache_evictions: int = 0
    #: Graceful shutdown stopped the campaign before every planned unit
    #: resolved.  The journal (if one was attached) is resumable.
    interrupted: bool = False
    #: How many units the campaign planned (0 when constructed by hand).
    planned: int = 0

    @property
    def complete(self) -> bool:
        return not self.failed and not self.interrupted

    @property
    def remaining(self) -> int:
        """Planned units neither recorded nor quarantined (interruption)."""
        return max(0, self.planned - len(self.records) - len(self.failed))

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    def results(self) -> List[RunResult]:
        return [record.result for record in self.records]

    def fingerprint(self) -> str:
        """Digest of every run's metrics, keyed by (scenario, replication).

        Keying by identity rather than grid position makes fingerprints of
        reordered-but-equal campaigns compare equal — the determinism
        property the tests assert.
        """
        payload = {
            f"{r.run.scenario}:{r.run.replication}": r.metrics
            for r in self.records
        }
        return stable_digest(payload)


# ---------------------------------------------------------------------------
# Grid construction helpers


def chain_grid(
    variants: Sequence[str],
    hops_list: Sequence[int],
    config: Optional[ScenarioConfig] = None,
    record_dynamics: bool = False,
) -> List[RunSpec]:
    """The paper's staple grid: every (variant, hops) single-flow chain."""
    config = config or ScenarioConfig()
    return [
        RunSpec(kind="chain", hops=hops, variants=(variant,), config=config,
                record_dynamics=record_dynamics)
        for variant in variants
        for hops in hops_list
    ]


def plan_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
) -> List[CampaignRun]:
    """Expand a scenario grid into seeded, cache-addressed run units."""
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    runs: List[CampaignRun] = []
    for spec in grid:
        key = scenario_key(spec)
        for replication in range(replications):
            seed = derive_run_seed(base_seed, key, replication)
            seeded = spec.with_seed(seed)
            runs.append(
                CampaignRun(
                    index=len(runs),
                    scenario=key,
                    replication=replication,
                    seed=seed,
                    spec=seeded,
                    digest=run_digest(seeded),
                )
            )
    return runs


# ---------------------------------------------------------------------------
# Execution


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats crashed or hung workers.

    ``task_timeout`` is a per-attempt wall-clock deadline in seconds (None
    disables the watchdog).  A failed attempt is retried up to
    ``max_retries`` times — attempt ``n``'s retry waits
    ``backoff * 2**(n-1)`` seconds first — after which the unit is
    quarantined into ``CampaignResult.failed``.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before the retry that follows failed attempt ``attempt``."""
        return self.backoff * (2 ** (attempt - 1))


def _maybe_injected_crash(index: int) -> None:
    """Honour the :data:`CRASH_ONCE_ENV` chaos hook (no-op when unset)."""
    spec = os.environ.get(CRASH_ONCE_ENV)
    if not spec:
        return
    sentinel, _, target = spec.rpartition(":")
    if not sentinel or not target or int(target) != index:
        return
    path = Path(sentinel)
    if path.exists():
        return  # the one allowed crash already happened
    path.touch()
    os._exit(13)


def _maybe_barrier(index: int) -> None:
    """Honour the :data:`BARRIER_ENV` rendezvous hook (no-op when unset)."""
    spec = os.environ.get(BARRIER_ENV)
    if not spec:
        return
    base, _, target = spec.rpartition(":")
    if not base or not target or int(target) != index:
        return
    ready = Path(base + ".ready")
    if ready.exists():
        return  # the barrier already fired (retry or resumed campaign)
    ready.touch()
    go = Path(base + ".go")
    while not go.exists():
        time.sleep(0.02)


def _execute_unit(
    args: Tuple[int, RunSpec]
) -> Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]]:
    """Worker entry point: run one spec, return (index, metrics, manifest)."""
    index, spec = args
    _maybe_injected_crash(index)
    _maybe_barrier(index)
    result = execute_run(spec)
    return index, result.to_dict(), result.manifest


def _supervised_worker(conn, index: int, spec: RunSpec) -> None:
    """Child-process shim around :func:`_execute_unit`.

    Routes through ``_execute_unit`` (not ``execute_run`` directly) so test
    monkeypatches of ``_execute_unit`` — inherited across ``fork`` — and the
    :data:`CRASH_ONCE_ENV` hook apply to supervised execution too.
    """
    _reset_worker_signals()
    try:
        idx, metrics, manifest = _execute_unit((index, spec))
        conn.send(("ok", idx, metrics, manifest))
    except BaseException as exc:  # a worker must never die silently
        try:
            conn.send(("err", index, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) starts workers in milliseconds; results do not
    # depend on the start method because every run re-derives its RNG state
    # from the spec alone.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _Attempt:
    """Supervisor bookkeeping for one in-flight worker process."""

    run: CampaignRun
    attempt: int  # 1-based
    process: Any
    conn: Any
    deadline: Optional[float]  # time.monotonic watchdog cutoff
    wid: str = ""  # telemetry worker id ("p<pid>")


def _terminate(process) -> None:
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():  # pragma: no cover - SIGTERM ignored
        process.kill()
        process.join()


# ---------------------------------------------------------------------------
# Warm-worker pool


#: Wire form of one schedulable unit, as shipped to a warm worker inside a
#: ``("batch", [unit, ...])`` message: ``(index, spec)``.
_CampaignUnit = Tuple[int, RunSpec]


def _warm_worker_main(conn) -> None:
    """Long-lived warm-worker loop: pull unit batches, stream results back.

    One ``("ok", index, metrics, manifest)`` or ``("err", index, message)``
    reply is sent per unit *as it completes*, so the supervisor can reset
    its per-unit watchdog between units of the same batch and attribute a
    crash to exactly the unit that was executing.  Routes through
    :func:`_execute_unit` (not ``execute_run``) so test monkeypatches —
    inherited across ``fork`` at pool start — and the :data:`CRASH_ONCE_ENV`
    hook apply to warm execution too.
    """
    _reset_worker_signals()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] != "batch":  # ("stop",) — orderly shutdown
            break
        for index, spec in message[1]:
            try:
                idx, metrics, manifest = _execute_unit((index, spec))
                reply = ("ok", idx, metrics, manifest)
            except BaseException as exc:  # a worker must never die silently
                reply = ("err", index, f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
                return
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


@dataclass
class _WarmWorker:
    """Supervisor bookkeeping for one persistent worker process.

    ``batch`` lists the (run, attempt) pairs currently dispatched to the
    worker, in execution order: the head is the unit executing right now,
    the tail is queued behind it in the worker's loop.  ``deadline`` is the
    head unit's watchdog cutoff (reset every time a result arrives).
    """

    process: Any
    conn: Any
    wid: str = ""  # telemetry worker id ("w<n>", stable across the campaign)
    batch: List[Tuple[CampaignRun, int]] = field(default_factory=list)
    deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return not self.batch


def _run_warm_pool(
    pending: Sequence[CampaignRun],
    jobs: int,
    policy: RetryPolicy,
    store: Callable[[CampaignRun, Dict[str, Any], Optional[Dict[str, Any]]], None],
    quarantine: Callable[[FailedRun], None],
    telemetry: Optional[CampaignTelemetry] = None,
    shutdown: Optional[GracefulShutdown] = None,
) -> None:
    """Run ``pending`` on a persistent pool of ``jobs`` warm workers.

    Workers are forked once and reused: each pulls :data:`_CampaignUnit`
    batches over its own duplex pipe and streams per-unit results back.
    The supervisor loop keeps every PR-4 robustness guarantee:

    * a worker that dies (crash, ``os._exit``, kill) is detected via pipe
      EOF; the unit it was executing is charged a failed attempt, the rest
      of its batch is requeued un-charged, and a fresh worker is forked to
      keep the pool at strength;
    * a worker whose head unit overstays ``policy.task_timeout`` is killed
      by the watchdog and replaced the same way;
    * failed attempts retry with exponential backoff (the backoff clock
      lives in the ready-queue, so a waiting retry never blocks a worker);
    * units that exhaust their retries are quarantined and the campaign
      completes without them.

    ``shutdown.requested`` turns the loop into a drain: no new spawns or
    dispatches, in-flight batches are awaited until ``shutdown.abort``
    (force or deadline), then every worker is stopped — TERM escalating to
    KILL for any that ignore it.  Units never dispatched (or requeued by
    retries during the drain) stay unexecuted and unjournaled: they are the
    remainder a resume picks up.
    """
    ctx = _pool_context()
    target_workers = max(1, min(jobs, len(pending)))
    # (ready_time, run, attempt) — ready_time is a monotonic timestamp.
    queue: List[Tuple[float, CampaignRun, int]] = [(0.0, run, 1) for run in pending]
    workers: Dict[Any, _WarmWorker] = {}  # conn -> worker
    worker_serial = itertools.count(1)

    def spawn(replacement: bool = False) -> None:
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_warm_worker_main, args=(child,), daemon=True
        )
        process.start()
        child.close()
        wid = f"w{next(worker_serial)}"
        workers[parent] = _WarmWorker(process=process, conn=parent, wid=wid)
        if telemetry is not None:
            telemetry.worker_spawned(wid, process.pid, replacement=replacement)

    def handle_failure(run: CampaignRun, attempt: int, error: str) -> None:
        if attempt <= policy.max_retries:
            delay = policy.retry_delay(attempt)
            if telemetry is not None:
                telemetry.retry_scheduled(run.index, attempt, delay, error)
            queue.append((time.monotonic() + delay, run, attempt + 1))
        else:
            quarantine(FailedRun(run=run, error=error, attempts=attempt))

    def requeue_innocent(worker: _WarmWorker) -> None:
        """Units queued behind a failed head unit go back un-charged."""
        queue.extend((0.0, run, attempt) for run, attempt in worker.batch)
        worker.batch = []

    def retire(worker: _WarmWorker, kill: bool) -> None:
        workers.pop(worker.conn)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if kill:
            _terminate(worker.process)
        else:
            worker.process.join()

    def on_worker_death(worker: _WarmWorker) -> None:
        retire(worker, kill=False)
        code = worker.process.exitcode
        if worker.batch:
            run, attempt = worker.batch.pop(0)
            error = f"worker crashed (exit code {code})"
            if telemetry is not None:
                telemetry.unit_result(
                    worker.wid, run.index, attempt, "crash",
                    scenario=run.scenario[:12], replication=run.replication,
                    error=error,
                )
            handle_failure(run, attempt, error)
            requeue_innocent(worker)
        if telemetry is not None:
            telemetry.worker_exited(worker.wid, "crash", exitcode=code)

    def on_worker_timeout(worker: _WarmWorker) -> None:
        retire(worker, kill=True)
        run, attempt = worker.batch.pop(0)
        error = f"timed out after {policy.task_timeout:g}s wall clock"
        if telemetry is not None:
            telemetry.unit_result(
                worker.wid, run.index, attempt, "timeout",
                scenario=run.scenario[:12], replication=run.replication,
                error=error,
            )
        handle_failure(run, attempt, error)
        requeue_innocent(worker)
        if telemetry is not None:
            telemetry.worker_exited(
                worker.wid, "timeout", exitcode=worker.process.exitcode
            )

    def on_message(worker: _WarmWorker, message: Tuple[Any, ...]) -> None:
        run, attempt = worker.batch.pop(0)
        now = time.monotonic()
        worker.deadline = (
            now + policy.task_timeout
            if worker.batch and policy.task_timeout is not None
            else None
        )
        if message[0] == "ok":
            if telemetry is not None:
                telemetry.unit_result(
                    worker.wid, run.index, attempt, "ok",
                    scenario=run.scenario[:12], replication=run.replication,
                    manifest=message[3],
                )
            store(run, message[2], message[3])
        else:
            if telemetry is not None:
                telemetry.unit_result(
                    worker.wid, run.index, attempt, "error",
                    scenario=run.scenario[:12], replication=run.replication,
                    error=message[2],
                )
            handle_failure(run, attempt, message[2])

    def dispatch() -> None:
        """Hand ready units to idle workers, WARM_BATCH_MAX at most each."""
        idle = [w for w in workers.values() if w.idle]
        if not idle:
            return
        now = time.monotonic()
        ready: List[Tuple[CampaignRun, int]] = []
        i = 0
        while i < len(queue):
            if queue[i][0] <= now:
                _, run, attempt = queue.pop(i)
                ready.append((run, attempt))
            else:
                i += 1
        if not ready:
            return
        per = max(1, min(WARM_BATCH_MAX, -(-len(ready) // len(idle))))
        handout = iter(ready)
        for worker in idle:
            chunk = list(itertools.islice(handout, per))
            if not chunk:
                break
            worker.batch = chunk
            worker.deadline = (
                now + policy.task_timeout if policy.task_timeout is not None else None
            )
            try:
                worker.conn.send(
                    ("batch", [(run.index, run.spec) for run, _ in chunk])
                )
            except (BrokenPipeError, OSError):
                # Death noticed mid-send: the worker never received the
                # batch, so nothing was executing — requeue the whole chunk
                # un-charged and let the wait loop reap the (now idle)
                # corpse without blaming the head unit.
                requeue_innocent(worker)
            else:
                if telemetry is not None:
                    telemetry.batch_dispatched(
                        worker.wid, [run.index for run, _ in chunk]
                    )
        queue.extend((0.0, run, attempt) for run, attempt in handout)

    for _ in range(target_workers):
        spawn()

    try:
        while queue or any(not w.idle for w in workers.values()):
            draining = shutdown is not None and shutdown.requested
            if draining:
                # Drain: no new spawns or dispatches; leave once every
                # in-flight batch has resolved or the deadline/force hits.
                if shutdown.abort or all(w.idle for w in workers.values()):
                    break
            else:
                # Keep the pool at strength: crashed workers are replaced
                # as long as there is (or will be) work for them.
                while len(workers) < target_workers and (
                    queue or any(not w.idle for w in workers.values())
                ):
                    spawn(replacement=True)
                dispatch()
            if telemetry is not None:
                telemetry.tick()
            now = time.monotonic()
            timeout = 0.5
            deadlines = [
                w.deadline for w in workers.values() if w.deadline is not None
            ]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - now))
            # Only FUTURE ready times (backoff expiries) bound the wait:
            # ready-now units are picked up by ``dispatch()`` as soon as a
            # worker goes idle, which always coincides with its connection
            # becoming readable.  Letting a ready-now queue clamp the
            # timeout to zero would busy-spin the coordinator and starve
            # the workers of CPU while every worker is mid-batch.
            future_ready = [r for r, _, _ in queue if r > now]
            if future_ready:
                timeout = min(timeout, max(0.0, min(future_ready) - now))
            ready_conns = multiprocessing.connection.wait(
                list(workers), timeout=timeout
            )
            for conn in ready_conns:
                worker = workers[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    on_worker_death(worker)
                else:
                    on_message(worker, message)
            now = time.monotonic()
            for worker in [
                w for w in workers.values()
                if w.deadline is not None and now >= w.deadline
            ]:
                on_worker_timeout(worker)
    finally:
        for worker in list(workers.values()):
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                _terminate(worker.process)
            if telemetry is not None:
                telemetry.worker_exited(
                    worker.wid, "stop", exitcode=worker.process.exitcode
                )
        workers.clear()


def _run_supervised(
    pending: Sequence[CampaignRun],
    jobs: int,
    policy: RetryPolicy,
    store: Callable[[CampaignRun, Dict[str, Any], Optional[Dict[str, Any]]], None],
    quarantine: Callable[[FailedRun], None],
    telemetry: Optional[CampaignTelemetry] = None,
    shutdown: Optional[GracefulShutdown] = None,
) -> None:
    """Run ``pending`` under crash/hang supervision, ``jobs`` at a time.

    Each unit gets its own forked process and result pipe.  The loop
    launches ready units into free slots, waits on the pipes with a timeout
    bounded by the nearest watchdog deadline / backoff expiry, reaps
    results, terminates over-deadline workers, and requeues failures with
    exponential backoff until their retry budget runs out.

    ``shutdown.requested`` turns the loop into a drain (see
    :func:`_run_warm_pool`): no new launches, in-flight attempts are
    awaited until ``shutdown.abort``, then any still-running worker is
    terminated and its unit left unrecorded for a resume to re-execute.
    """
    ctx = _pool_context()
    workers = min(jobs, len(pending))
    # (ready_time, run, attempt) — ready_time is a monotonic timestamp.
    queue: List[Tuple[float, CampaignRun, int]] = [(0.0, run, 1) for run in pending]
    active: Dict[Any, _Attempt] = {}

    def launch_ready() -> None:
        now = time.monotonic()
        i = 0
        while i < len(queue) and len(active) < workers:
            ready, run, attempt = queue[i]
            if ready > now:
                i += 1
                continue
            queue.pop(i)
            parent, child = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_supervised_worker, args=(child, run.index, run.spec)
            )
            process.start()
            child.close()
            deadline = (
                now + policy.task_timeout if policy.task_timeout is not None else None
            )
            wid = f"p{process.pid}"
            active[parent] = _Attempt(run, attempt, process, parent, deadline, wid)
            if telemetry is not None:
                telemetry.worker_spawned(wid, process.pid)
                telemetry.batch_dispatched(wid, [run.index])

    def handle_failure(entry: _Attempt, error: str) -> None:
        if entry.attempt <= policy.max_retries:
            delay = policy.retry_delay(entry.attempt)
            if telemetry is not None:
                telemetry.retry_scheduled(
                    entry.run.index, entry.attempt, delay, error
                )
            queue.append((time.monotonic() + delay, entry.run, entry.attempt + 1))
        else:
            quarantine(FailedRun(run=entry.run, error=error, attempts=entry.attempt))

    def unit_span(entry: _Attempt, status: str, *, manifest=None,
                  error=None) -> None:
        if telemetry is not None:
            telemetry.unit_result(
                entry.wid, entry.run.index, entry.attempt, status,
                scenario=entry.run.scenario[:12],
                replication=entry.run.replication,
                manifest=manifest, error=error,
            )

    def reap(conn, timed_out: bool) -> None:
        entry = active.pop(conn)
        message = None
        if not timed_out:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None  # died before sending: a hard crash
        conn.close()
        if timed_out:
            _terminate(entry.process)
            error = f"timed out after {policy.task_timeout:g}s wall clock"
            unit_span(entry, "timeout", error=error)
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "timeout", exitcode=entry.process.exitcode
                )
            handle_failure(entry, error)
            return
        entry.process.join()
        if message is not None and message[0] == "ok":
            _, _, metrics, manifest = message
            unit_span(entry, "ok", manifest=manifest)
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "stop", exitcode=entry.process.exitcode
                )
            store(entry.run, metrics, manifest)
        elif message is not None:
            unit_span(entry, "error", error=message[2])
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "stop", exitcode=entry.process.exitcode
                )
            handle_failure(entry, message[2])
        else:
            code = entry.process.exitcode
            error = f"worker crashed (exit code {code})"
            unit_span(entry, "crash", error=error)
            if telemetry is not None:
                telemetry.worker_exited(entry.wid, "crash", exitcode=code)
            handle_failure(entry, error)

    while queue or active:
        draining = shutdown is not None and shutdown.requested
        if draining:
            if shutdown.abort or not active:
                break
        else:
            launch_ready()
        now = time.monotonic()
        if not active:
            # Every remaining unit is waiting out its backoff.
            time.sleep(max(0.0, min(ready for ready, _, _ in queue) - now))
            continue
        timeout = 0.5
        deadlines = [e.deadline for e in active.values() if e.deadline is not None]
        if deadlines:
            timeout = min(timeout, max(0.0, min(deadlines) - now))
        # Future ready times only (see the warm-pool loop): a ready-now
        # backlog just means every slot is busy, and ``launch_ready`` runs
        # again as soon as a worker's connection signals completion.
        future_ready = [r for r, _, _ in queue if r > now]
        if future_ready:
            timeout = min(timeout, max(0.0, min(future_ready) - now))
        ready_conns = multiprocessing.connection.wait(list(active), timeout=timeout)
        for conn in ready_conns:
            reap(conn, timed_out=False)
        now = time.monotonic()
        for conn in [
            c for c, e in active.items()
            if e.deadline is not None and now >= e.deadline
        ]:
            reap(conn, timed_out=True)

    # Drain abandoned with attempts still in flight: terminate them and
    # leave their units unrecorded — a resume re-executes exactly those.
    for conn, entry in list(active.items()):
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        _terminate(entry.process)
        if telemetry is not None:
            telemetry.worker_exited(
                entry.wid, "stop", exitcode=entry.process.exitcode
            )
    active.clear()


ProgressFn = Callable[[RunRecord, int, int], None]


def run_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    progress: Optional[ProgressFn] = None,
    policy: Optional[RetryPolicy] = None,
    pool_mode: str = "warm",
    telemetry: Optional[CampaignTelemetry] = None,
    journal: Optional[CampaignJournal] = None,
    resume: Optional[JournalReplay] = None,
    shutdown: Optional[GracefulShutdown] = None,
) -> CampaignResult:
    """Run every ``(spec, replication)`` in ``grid``; return ordered records.

    ``jobs`` is the worker-process count (default ``os.cpu_count()``; ``1``
    with no watchdog executes in-process).  ``cache`` enables the on-disk
    memo: hits skip execution entirely — they are resolved before any
    worker is dispatched, so a fully cached campaign never starts a pool.
    ``progress`` is invoked once per finished run — from the coordinating
    process, in completion order — with ``(record, done_count,
    total_count)``.  ``policy`` configures the self-healing supervisor
    (watchdog timeout, retries, backoff); units that exhaust their retries
    land in ``CampaignResult.failed`` and the campaign still completes.

    ``pool_mode`` selects the execution backend (see the module docstring):
    ``"warm"`` (persistent warm-worker pool, the default),
    ``"per-attempt"`` (one forked process per attempt), or ``"inproc"``
    (no forks, no watchdog).  ``jobs == 1`` with no watchdog short-circuits
    to in-process execution in every mode — a single-slot pool buys nothing
    over running the units directly.

    ``telemetry`` (a :class:`repro.obs.engine.CampaignTelemetry`) streams
    spans, coordinator events, worker heartbeats and progress over NDJSON as
    the campaign runs.  It observes the coordinator only — nothing telemetry
    does can reach a worker or a result, so metrics and fingerprints are
    byte-identical with telemetry on or off.

    Crash safety: ``journal`` (a :class:`~repro.experiments.journal.
    CampaignJournal`) write-ahead-records the plan before any dispatch and
    every completion/quarantine after it.  ``resume`` (a
    :class:`~repro.experiments.journal.JournalReplay`) replays a previous
    generation: it requires a ``cache``, verifies the plan digest matches,
    re-verifies every journaled completion against the cache (drifted or
    missing entries re-execute), and dispatches only the remainder.
    ``shutdown`` (a :class:`GracefulShutdown`) lets SIGINT/SIGTERM stop the
    campaign cooperatively — the result comes back with
    ``interrupted=True`` and the journal closes resumable.

    The returned records are always in grid order, and their metrics are
    byte-identical for any ``jobs`` value and any ``pool_mode`` — resumed
    or not: seeds come from :func:`plan_campaign`, never from scheduling.
    """
    if pool_mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool_mode {pool_mode!r}; expected one of {POOL_MODES}"
        )
    runs = plan_campaign(grid, replications=replications, base_seed=base_seed)
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = policy if policy is not None else RetryPolicy()
    if resume is not None:
        if cache is None:
            raise ValueError(
                "resume requires a cache: journaled completions are "
                "re-verified against (and their results read from) the "
                "content-addressed cache"
            )
        resume.verify_plan(runs)

    records: Dict[int, RunRecord] = {}
    failed: List[FailedRun] = []
    done = 0
    evictions_before = cache.evictions if cache is not None else 0

    if telemetry is not None:
        telemetry.begin_campaign(
            len(runs), pool_mode, jobs,
            base_seed=base_seed, replications=replications,
        )
    if journal is not None:
        journal.begin(
            runs, pool_mode=pool_mode, base_seed=base_seed,
            replications=replications, resumed=resume is not None,
        )

    def finish(record: RunRecord) -> None:
        nonlocal done
        records[record.run.index] = record
        done += 1
        if telemetry is not None:
            telemetry.progress(done, len(runs), len(failed))
        if progress is not None:
            progress(record, done, len(runs))

    def quarantine(failure: FailedRun) -> None:
        nonlocal done
        failed.append(failure)
        done += 1
        if journal is not None:
            journal.failed(failure.run, failure.error, failure.attempts)
        if telemetry is not None:
            telemetry.quarantined(
                failure.run.index, failure.attempts, failure.error
            )
            telemetry.progress(done, len(runs), len(failed))

    pending: List[CampaignRun] = []
    verified = drift = 0
    for run in runs:
        if shutdown is not None and shutdown.requested:
            # Interrupted during cache resolution: everything not yet
            # resolved stays pending-and-undispatched → the remainder.
            pending = []
            break
        payload = None
        if cache is not None:
            seen_evictions = cache.evictions
            payload = cache.get(run.digest)
            if telemetry is not None and cache.evictions > seen_evictions:
                telemetry.cache_evicted(run.index, run.digest)
        if resume is not None and run.index in resume.completed:
            # Re-verify the journaled completion against the cache: the
            # entry must exist, pass its checksum (cache.get), and hash to
            # the journaled result digest.  Anything else is drift — the
            # unit re-executes.
            if (
                payload is not None
                and stable_digest(payload["result"])
                == resume.completed[run.index]
            ):
                verified += 1
            else:
                drift += 1
                payload = None
        if payload is not None:
            if telemetry is not None:
                telemetry.cache_hit(run.index, run.digest)
                # Cached units get a span too (consumers see every unit),
                # but no manifest: its timings/engine facts describe the
                # original execution, not this campaign.
                telemetry.unit_result(
                    "cache", run.index, 0, "ok", cached=True,
                    scenario=run.scenario[:12], replication=run.replication,
                )
            if journal is not None:
                journal.done(run, stable_digest(payload["result"]),
                             cached=True)
            finish(RunRecord(run=run, metrics=payload["result"], cached=True,
                             manifest=payload.get("manifest")))
        else:
            if telemetry is not None and cache is not None:
                telemetry.cache_miss(run.index, run.digest)
            pending.append(run)

    if resume is not None and telemetry is not None:
        telemetry.campaign_resumed(
            str(resume.path), verified=verified, drift=drift,
            remainder=len(pending),
        )

    def store(run: CampaignRun, metrics: Dict[str, Any],
              manifest: Optional[Dict[str, Any]]) -> None:
        if cache is not None:
            cache.put(run.digest, {"result": metrics, "manifest": manifest})
        if journal is not None:
            # Journaled after cache.put: a done record implies the cache
            # holds the result, which is what resume verification assumes.
            journal.done(run, stable_digest(metrics), cached=False)
        finish(RunRecord(run=run, metrics=metrics, cached=False,
                         manifest=manifest))

    if pending and (
        pool_mode == "inproc" or (jobs == 1 and policy.task_timeout is None)
    ):
        # In-process fast path: no fork, no pipes.  Exceptions are retried
        # without backoff (an in-process failure is deterministic; sleeping
        # between identical attempts buys nothing) and then quarantined.
        if telemetry is not None:
            telemetry.worker_spawned("main", os.getpid())
        for run in pending:
            if shutdown is not None and shutdown.requested:
                break  # in-flight unit finished; the rest stay unexecuted
            attempt = 0
            while True:
                attempt += 1
                try:
                    _, metrics, manifest = _execute_unit((run.index, run.spec))
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if telemetry is not None:
                        telemetry.unit_result(
                            "main", run.index, attempt, "error",
                            scenario=run.scenario[:12],
                            replication=run.replication, error=error,
                        )
                    if attempt <= policy.max_retries:
                        if telemetry is not None:
                            telemetry.retry_scheduled(
                                run.index, attempt, 0.0, error
                            )
                        continue
                    quarantine(FailedRun(
                        run=run, error=error, attempts=attempt,
                    ))
                    break
                if telemetry is not None:
                    telemetry.unit_result(
                        "main", run.index, attempt, "ok",
                        scenario=run.scenario[:12],
                        replication=run.replication, manifest=manifest,
                    )
                store(run, metrics, manifest)
                break
        if telemetry is not None:
            telemetry.worker_exited("main", "stop")
    elif pending and pool_mode == "per-attempt":
        _run_supervised(pending, jobs, policy, store, quarantine, telemetry,
                        shutdown)
    elif pending:
        _run_warm_pool(pending, jobs, policy, store, quarantine, telemetry,
                       shutdown)

    failed.sort(key=lambda f: f.run.index)
    evictions = (cache.evictions - evictions_before) if cache is not None else 0
    remaining = len(runs) - len(records) - len(failed)
    # A signal that lands after the last unit resolves is not an
    # interruption: nothing is missing, the campaign simply completed.
    interrupted = (
        shutdown is not None and shutdown.requested and remaining > 0
    )
    result = CampaignResult(
        records=[records[i] for i in sorted(records)],
        failed=failed,
        cache_evictions=evictions,
        interrupted=interrupted,
        planned=len(runs),
    )
    if telemetry is not None:
        if interrupted:
            telemetry.campaign_interrupted(
                shutdown.signal_name or "manual",
                done=done, total=len(runs),
            )
        telemetry.end_campaign(
            executed=result.executed,
            cache_hits=result.cache_hits,
            cache_evictions=evictions,
            failed=len(failed),
            interrupted=interrupted,
            remaining=remaining,
        )
    if journal is not None:
        if interrupted:
            status = "interrupted"
        elif failed:
            status = "partial"
        else:
            status = "ok"
        journal.end(
            status=status,
            # No fingerprint for an interrupted generation: the digest of a
            # partial record set would collide meaninglessly with nothing.
            fingerprint=None if interrupted else result.fingerprint(),
            executed=result.executed,
            cache_hits=result.cache_hits,
            quarantined=len(failed),
            remaining=remaining,
        )
    return result
