"""Parallel, cached, self-healing experiment campaigns.

The paper's evaluation is a grid — TCP variant × hop count × loss model ×
replication — of mutually independent simulation runs.  This module turns
that grid into a batch workload:

* :func:`run_campaign` fans :class:`repro.experiments.runner.RunSpec` units
  out over supervised ``multiprocessing`` workers (``jobs`` at a time,
  default ``os.cpu_count()``);
* every run's master seed is derived from its ``(scenario, replication)``
  key via :func:`repro.sim.rng.derive_run_seed`, so metrics are
  bit-identical whatever the worker count, pool mode, batching, or
  execution order;
* completed runs are memoised in a :class:`CampaignCache` — an on-disk
  content-addressed store keyed by the hash of the run's full configuration
  plus the code schema version — so re-running a campaign only executes
  scenarios whose parameters (or the simulator itself) changed.

Execution backends (``pool_mode``):

* ``"warm"`` (default) — a persistent pool of long-lived supervised
  workers.  Each worker is forked once, pulls batches of units over its own
  duplex pipe, and streams one result message back per unit as it
  completes, so interpreter startup and module import are amortised over
  the whole campaign instead of being paid per attempt.
* ``"per-attempt"`` — the PR-4 model: one freshly forked process per
  attempt.  Slower on short runs, but every attempt gets a pristine
  interpreter; prefer it when hunting state-leak bugs or when a unit is
  suspected of corrupting interpreter-global state.
* ``"inproc"`` — everything in the coordinating process, no forks, no
  watchdog.  The debugging backend (breakpoints and monkeypatches apply
  directly).
* ``"cluster"`` — the warm pool's supervisor loop over a TCP transport
  (:class:`repro.experiments.transport.TcpTransport`): worker *agents*
  (``repro-muzha worker --connect HOST:PORT``) dial the coordinator's
  listener — from other hosts, or self-spawned locally — and pull units
  through the same work-stealing dispatch.  Agents may join late; a dead
  connection requeues its in-flight unit un-charged (the wire died, not
  necessarily the work).  Shards share one content-addressed cache via
  :mod:`repro.experiments.cachestore`.

Self-healing (``warm`` and ``per-attempt``): each attempt runs under a
supervisor with an optional wall-clock watchdog
(:class:`RetryPolicy.task_timeout`).  A worker that crashes, is killed, or
hangs past its deadline is terminated — and, in warm mode, transparently
replaced by a freshly forked worker — while the unit is retried with
exponential backoff up to :class:`RetryPolicy.max_retries` times; a unit
that exhausts its retries is *quarantined* — recorded in
``CampaignResult.failed`` — and the rest of the campaign completes
normally.  Units that were merely queued behind a crashed/hung unit on the
same warm worker are requeued without being charged an attempt.  Cache
entries carry a content checksum; a truncated or bit-flipped entry is
detected on read, reported via :class:`CacheCorruptionWarning`, evicted,
and transparently recomputed.  Cache hits short-circuit before dispatch:
a fully cached campaign never starts a worker at all.

Determinism contract: ``run_campaign(grid)`` is a pure function of the grid
and the campaign seed — pool mode included.  Per-unit seeds are derived in
:func:`plan_campaign` before any dispatch, so which warm worker executes a
unit (and in which batch) is invisible in the results.  The property tests
in ``tests/props/test_campaign_determinism.py`` and the pool-mode
byte-identity tests in ``tests/integration/test_pool_modes.py`` hold this
module to it.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs.engine import CampaignTelemetry
from ..sim.rng import derive_run_seed
# Re-exported for backward compatibility: the cache grew into its own
# module (cachestore) when PR 10 added remote stores, but callers and
# tests keep importing these names from here.
from .cachestore import (  # noqa: F401
    CLUSTER_REGISTRY_DIRNAME,
    CacheCorruptionWarning,
    CacheStore,
    CampaignCache,
    _envelope_checksum,
    _fsync_dir,
)
from .config import CACHE_SCHEMA_VERSION, ScenarioConfig, stable_digest
from .journal import CampaignJournal, JournalReplay
from .runner import RunResult, RunSpec, execute_run
from .transport import (
    PipeTransport,
    TcpTransport,
    Transport,
    TransportError,
)

PathLike = Union[str, Path]

#: Fault-injection hook for CI/testing: ``"<sentinel-path>:<index>"`` makes
#: the worker executing unit ``index`` hard-exit (``os._exit``) once — the
#: sentinel file marks the crash as spent so the retry succeeds.
CRASH_ONCE_ENV = "REPRO_CAMPAIGN_CRASH_ONCE"

#: Rendezvous hook for CI/testing: ``"<path>:<index>"`` makes the worker
#: executing unit ``index`` touch ``<path>.ready`` and block until
#: ``<path>.go`` appears — a deterministic mid-flight moment for the
#: signal/interruption tests to deliver SIGTERM at.  One-shot: once
#: ``<path>.ready`` exists the hook is spent, so retries and resumed
#: campaigns run through unimpeded.
BARRIER_ENV = "REPRO_CAMPAIGN_BARRIER"

#: Execution backends accepted by :func:`run_campaign`'s ``pool_mode``.
POOL_MODES = ("warm", "per-attempt", "inproc", "cluster")

#: Upper bound on how many units one warm-pool dispatch hands a worker.
#: Small enough that a late straggler batch cannot serialise the tail of a
#: campaign, large enough to amortise the pipe round-trip on tiny units.
WARM_BATCH_MAX = 4


class GracefulShutdown:
    """Cooperative SIGINT/SIGTERM handling for a running campaign.

    The first signal sets :attr:`requested`: the coordinator stops
    dispatching new units, drains in-flight work for up to
    ``drain_timeout`` seconds, checkpoints the journal, and terminates its
    workers cleanly (TERM, escalating to KILL).  A second signal sets
    :attr:`force` — the drain is abandoned immediately — and uninstalls the
    handlers, so a third signal kills the process outright via the default
    disposition.  ``request()`` drives the same state machine without a
    signal, which is what the in-process tests use.
    """

    SIGNAL_NAMES = ("SIGINT", "SIGTERM")

    def __init__(self, drain_timeout: float = 5.0) -> None:
        if drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        self.drain_timeout = drain_timeout
        self.requested = False
        self.force = False
        self.signal_name: Optional[str] = None
        self._deadline: Optional[float] = None
        self._previous: Dict[int, Any] = {}

    def request(self, signal_name: str = "manual") -> None:
        """First call starts the drain; a second call forces the abort."""
        if self.requested:
            self.force = True
        else:
            self.requested = True
            self.signal_name = signal_name
            self._deadline = time.monotonic() + self.drain_timeout

    @property
    def abort(self) -> bool:
        """True once draining must stop: forced, or past the deadline."""
        return self.force or (
            self._deadline is not None and time.monotonic() >= self._deadline
        )

    def _handler(self, signum: int, frame: Any) -> None:
        already = self.requested
        self.request(signal.Signals(signum).name)
        if already:
            self.uninstall()  # third signal → default disposition → death

    def install(self) -> "GracefulShutdown":
        """Route SIGINT/SIGTERM through this object (main thread only)."""
        for name in self.SIGNAL_NAMES:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - exotic platforms
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        return self

    def uninstall(self) -> None:
        for signum, previous in list(self._previous.items()):
            try:
                signal.signal(signum, previous)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        self._previous.clear()

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()


def _reset_worker_signals() -> None:
    """Detach a forked worker from the coordinator's signal handlers.

    Workers inherit signal dispositions across ``fork``; an inherited
    graceful-shutdown handler would make SIGTERM a no-op in the child and
    push every drain onto the slow KILL escalation path.  SIGINT is
    ignored (the terminal delivers ^C to the whole foreground group, but
    shutdown is the coordinator's call to make); SIGTERM is restored to
    its default so ``process.terminate()`` works.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-POSIX
        pass


# ---------------------------------------------------------------------------
# Scenario identity and cache keys


def scenario_key(spec: RunSpec) -> str:
    """Stable identity of a scenario *shape*, independent of its seed.

    Two specs that differ only in ``config.seed`` are the same scenario:
    replications of it draw their seeds from this key, so adding a scenario
    to a grid can never perturb another scenario's randomness.
    """
    payload = spec.to_dict()
    payload["config"].pop("seed")
    return stable_digest(payload)


def run_digest(spec: RunSpec) -> str:
    """Content-address of one fully-seeded run, including the code schema.

    This is the cache key: it covers every parameter the simulation result
    depends on, plus :data:`CACHE_SCHEMA_VERSION` so bumping that constant
    invalidates all previously cached results at once.
    """
    return stable_digest(
        {"schema": CACHE_SCHEMA_VERSION, "spec": spec.to_dict()}
    )


# ---------------------------------------------------------------------------
# Campaign plan and results


@dataclass(frozen=True)
class CampaignRun:
    """One schedulable unit: a seeded spec plus its identity/cache keys."""

    index: int
    scenario: str  # scenario_key(spec) — seed-independent identity
    replication: int
    seed: int
    spec: RunSpec  # spec.config.seed == seed
    digest: str  # run_digest(spec) — the cache key


@dataclass
class RunRecord:
    """Outcome of one campaign run.

    ``metrics`` is the run's canonical plain data and the sole input to
    fingerprints; ``manifest`` is the run's provenance document (wall time,
    platform, spec, result digest) — attached for attribution, excluded from
    every determinism comparison by construction.
    """

    run: CampaignRun
    metrics: Dict[str, Any]  # RunResult.to_dict() — canonical plain data
    cached: bool
    manifest: Optional[Dict[str, Any]] = None

    @property
    def result(self) -> RunResult:
        res = RunResult.from_dict(self.metrics)
        res.manifest = self.manifest
        return res

    def metrics_bytes(self) -> bytes:
        """Canonical byte serialization, for bit-identity comparisons."""
        return json.dumps(
            self.metrics, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


@dataclass
class FailedRun:
    """A unit quarantined after exhausting its retries."""

    run: CampaignRun
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.run.index,
            "scenario": self.run.scenario,
            "replication": self.run.replication,
            "seed": self.run.seed,
            "digest": self.run.digest,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class CampaignResult:
    """All records of a campaign, in the order the grid listed them.

    ``failed`` holds the quarantined units — present only when workers
    crashed or hung past their retry budget.  ``records`` then covers the
    surviving subset, still in grid order, so a partially failed campaign
    yields partial (explicitly attributed) results instead of nothing.
    """

    records: List[RunRecord] = field(default_factory=list)
    failed: List[FailedRun] = field(default_factory=list)
    #: Corrupt cache entries evicted (and recomputed) during this campaign —
    #: the delta of :attr:`CampaignCache.evictions` across the run.  An
    #: environment fact: eviction forces recomputation, never different bytes.
    cache_evictions: int = 0
    #: Graceful shutdown stopped the campaign before every planned unit
    #: resolved.  The journal (if one was attached) is resumable.
    interrupted: bool = False
    #: How many units the campaign planned (0 when constructed by hand).
    planned: int = 0

    @property
    def complete(self) -> bool:
        return not self.failed and not self.interrupted

    @property
    def remaining(self) -> int:
        """Planned units neither recorded nor quarantined (interruption)."""
        return max(0, self.planned - len(self.records) - len(self.failed))

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    def results(self) -> List[RunResult]:
        return [record.result for record in self.records]

    def fingerprint(self) -> str:
        """Digest of every run's metrics, keyed by (scenario, replication).

        Keying by identity rather than grid position makes fingerprints of
        reordered-but-equal campaigns compare equal — the determinism
        property the tests assert.
        """
        payload = {
            f"{r.run.scenario}:{r.run.replication}": r.metrics
            for r in self.records
        }
        return stable_digest(payload)


# ---------------------------------------------------------------------------
# Grid construction helpers


def chain_grid(
    variants: Sequence[str],
    hops_list: Sequence[int],
    config: Optional[ScenarioConfig] = None,
    record_dynamics: bool = False,
) -> List[RunSpec]:
    """The paper's staple grid: every (variant, hops) single-flow chain."""
    config = config or ScenarioConfig()
    return [
        RunSpec(kind="chain", hops=hops, variants=(variant,), config=config,
                record_dynamics=record_dynamics)
        for variant in variants
        for hops in hops_list
    ]


def plan_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
) -> List[CampaignRun]:
    """Expand a scenario grid into seeded, cache-addressed run units."""
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    runs: List[CampaignRun] = []
    for spec in grid:
        key = scenario_key(spec)
        for replication in range(replications):
            seed = derive_run_seed(base_seed, key, replication)
            seeded = spec.with_seed(seed)
            runs.append(
                CampaignRun(
                    index=len(runs),
                    scenario=key,
                    replication=replication,
                    seed=seed,
                    spec=seeded,
                    digest=run_digest(seeded),
                )
            )
    return runs


# ---------------------------------------------------------------------------
# Execution


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats crashed or hung workers.

    ``task_timeout`` is a per-attempt wall-clock deadline in seconds (None
    disables the watchdog).  A failed attempt is retried up to
    ``max_retries`` times — attempt ``n``'s retry waits
    ``backoff * 2**(n-1)`` seconds first — after which the unit is
    quarantined into ``CampaignResult.failed``.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before the retry that follows failed attempt ``attempt``."""
        return self.backoff * (2 ** (attempt - 1))


def _maybe_injected_crash(index: int) -> None:
    """Honour the :data:`CRASH_ONCE_ENV` chaos hook (no-op when unset)."""
    spec = os.environ.get(CRASH_ONCE_ENV)
    if not spec:
        return
    sentinel, _, target = spec.rpartition(":")
    if not sentinel or not target or int(target) != index:
        return
    path = Path(sentinel)
    if path.exists():
        return  # the one allowed crash already happened
    path.touch()
    os._exit(13)


def _maybe_barrier(index: int) -> None:
    """Honour the :data:`BARRIER_ENV` rendezvous hook (no-op when unset)."""
    spec = os.environ.get(BARRIER_ENV)
    if not spec:
        return
    base, _, target = spec.rpartition(":")
    if not base or not target or int(target) != index:
        return
    ready = Path(base + ".ready")
    if ready.exists():
        return  # the barrier already fired (retry or resumed campaign)
    ready.touch()
    go = Path(base + ".go")
    while not go.exists():
        time.sleep(0.02)


def _execute_unit(
    args: Tuple[int, RunSpec]
) -> Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]]:
    """Worker entry point: run one spec, return (index, metrics, manifest)."""
    index, spec = args
    _maybe_injected_crash(index)
    _maybe_barrier(index)
    result = execute_run(spec)
    return index, result.to_dict(), result.manifest


def _supervised_worker(conn, index: int, spec: RunSpec) -> None:
    """Child-process shim around :func:`_execute_unit`.

    Routes through ``_execute_unit`` (not ``execute_run`` directly) so test
    monkeypatches of ``_execute_unit`` — inherited across ``fork`` — and the
    :data:`CRASH_ONCE_ENV` hook apply to supervised execution too.
    """
    _reset_worker_signals()
    try:
        idx, metrics, manifest = _execute_unit((index, spec))
        conn.send(("ok", idx, metrics, manifest))
    except BaseException as exc:  # a worker must never die silently
        try:
            conn.send(("err", index, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) starts workers in milliseconds; results do not
    # depend on the start method because every run re-derives its RNG state
    # from the spec alone.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _Attempt:
    """Supervisor bookkeeping for one in-flight worker process."""

    run: CampaignRun
    attempt: int  # 1-based
    process: Any
    conn: Any
    deadline: Optional[float]  # time.monotonic watchdog cutoff
    wid: str = ""  # telemetry worker id ("p<pid>")


def _terminate(process) -> None:
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():  # pragma: no cover - SIGTERM ignored
        process.kill()
        process.join()


# ---------------------------------------------------------------------------
# Warm-worker pool


#: Wire form of one schedulable unit, as shipped to a warm worker inside a
#: ``("batch", [unit, ...])`` message: ``(index, spec)``.
_CampaignUnit = Tuple[int, RunSpec]


def _warm_worker_main(conn) -> None:
    """Long-lived warm-worker loop: pull unit batches, stream results back.

    One ``("ok", index, metrics, manifest)`` or ``("err", index, message)``
    reply is sent per unit *as it completes*, so the supervisor can reset
    its per-unit watchdog between units of the same batch and attribute a
    crash to exactly the unit that was executing.  Routes through
    :func:`_execute_unit` (not ``execute_run``) so test monkeypatches —
    inherited across ``fork`` at pool start — and the :data:`CRASH_ONCE_ENV`
    hook apply to warm execution too.
    """
    _reset_worker_signals()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] != "batch":  # ("stop",) — orderly shutdown
            break
        for index, spec in message[1]:
            try:
                idx, metrics, manifest = _execute_unit((index, spec))
                reply = ("ok", idx, metrics, manifest)
            except BaseException as exc:  # a worker must never die silently
                reply = ("err", index, f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
                return
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


@dataclass
class _PoolWorker:
    """Supervisor bookkeeping for one connected worker (any transport).

    ``batch`` lists the (run, attempt) pairs currently dispatched to the
    worker, in execution order: the head is the unit executing right now,
    the tail is queued behind it in the worker's loop.  ``deadline`` is the
    head unit's watchdog cutoff (reset every time a result arrives).
    """

    link: Any  # transport.WorkerLink
    wid: str = ""  # telemetry worker id ("w<n>", or "host:w<n>" for agents)
    batch: List[Tuple[CampaignRun, int]] = field(default_factory=list)
    deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return not self.batch


def _run_pool(
    transport: Transport,
    pending: Sequence[CampaignRun],
    jobs: int,
    policy: RetryPolicy,
    store: Callable[[CampaignRun, Dict[str, Any], Optional[Dict[str, Any]]], None],
    quarantine: Callable[[FailedRun], None],
    telemetry: Optional[CampaignTelemetry] = None,
    shutdown: Optional[GracefulShutdown] = None,
    store_hit: Optional[
        Callable[[CampaignRun, Dict[str, Any], Optional[Dict[str, Any]]], None]
    ] = None,
) -> None:
    """Run ``pending`` on a work-stealing pool of persistent workers.

    The supervisor loop is transport-generic: ``transport`` provides the
    :class:`~repro.experiments.transport.WorkerLink` objects — forked pipe
    workers (:class:`~repro.experiments.transport.PipeTransport`, the warm
    pool) or TCP worker agents (:class:`~repro.experiments.transport.
    TcpTransport`, the cluster backend) — and the loop waits on links and
    the transport's listener alike, so agents can join mid-campaign and
    immediately start stealing units from the shared ready-queue.  Every
    PR-4/PR-5 robustness guarantee carries over:

    * a local worker that dies (crash, ``os._exit``, kill) is detected via
      pipe EOF; the unit it was executing is charged a failed attempt, the
      rest of its batch is requeued un-charged, and a fresh worker is
      spawned to keep the pool at strength;
    * a *remote* link that drops mid-unit requeues its head unit
      **un-charged** — the connection died, not necessarily the work — but
      a unit that keeps killing its connections is charged after
      ``policy.max_retries + 1`` disconnects, so a poison unit cannot loop
      forever;
    * a worker whose head unit overstays ``policy.task_timeout`` is
      killed/severed by the watchdog and replaced the same way;
    * failed attempts retry with exponential backoff (the backoff clock
      lives in the ready-queue, so a waiting retry never blocks a worker);
    * units that exhaust their retries are quarantined and the campaign
      completes without them.

    Remote agents consult the shared cache store before executing and may
    answer ``hit`` instead of ``ok``; ``store_hit`` records those as cached
    completions (same metrics bytes, so fingerprints are untouched).

    ``shutdown.requested`` turns the loop into a drain: no new spawns or
    dispatches, in-flight batches are awaited until ``shutdown.abort``
    (force or deadline), then every worker is stopped — TERM escalating to
    KILL for any that ignore it.  Units never dispatched (or requeued by
    retries during the drain) stay unexecuted and unjournaled: they are the
    remainder a resume picks up.
    """
    target_workers = max(1, min(jobs, len(pending)))
    # (ready_time, run, attempt) — ready_time is a monotonic timestamp.
    queue: List[Tuple[float, CampaignRun, int]] = [(0.0, run, 1) for run in pending]
    workers: Dict[Any, _PoolWorker] = {}  # link -> worker
    worker_serial = itertools.count(1)
    #: Mid-unit disconnect count per unit index (remote links only).
    disconnects: Dict[int, int] = {}

    def register(link: Any, replacement: bool = False) -> None:
        serial = next(worker_serial)
        wid = (
            f"{link.host}:w{serial}" if link.remote else f"w{serial}"
        )
        workers[link] = _PoolWorker(link=link, wid=wid)
        if telemetry is not None:
            telemetry.worker_spawned(
                wid,
                link.pid if link.pid_is_local else None,
                replacement=replacement,
                host=link.host,
            )

    def spawn(replacement: bool = False) -> None:
        link = transport.spawn()
        if link is not None:  # TCP agents join later through accept()
            register(link, replacement=replacement)

    def handle_failure(run: CampaignRun, attempt: int, error: str) -> None:
        if attempt <= policy.max_retries:
            delay = policy.retry_delay(attempt)
            if telemetry is not None:
                telemetry.retry_scheduled(run.index, attempt, delay, error)
            queue.append((time.monotonic() + delay, run, attempt + 1))
        else:
            quarantine(FailedRun(run=run, error=error, attempts=attempt))

    def requeue_innocent(worker: _PoolWorker) -> None:
        """Units queued behind a failed head unit go back un-charged."""
        queue.extend((0.0, run, attempt) for run, attempt in worker.batch)
        worker.batch = []

    def retire(worker: _PoolWorker, kill: bool) -> None:
        workers.pop(worker.link)
        if kill:
            worker.link.kill()
        else:
            worker.link.reap()

    def on_worker_death(worker: _PoolWorker) -> None:
        retire(worker, kill=False)
        code = worker.link.exitcode
        reason = "disconnect" if worker.link.remote else "crash"
        if worker.batch:
            run, attempt = worker.batch.pop(0)
            if worker.link.remote:
                # The *connection* died; the work itself may be blameless
                # (agent host rebooted, network blip).  Requeue un-charged —
                # but cap it: a unit that repeatedly takes its connection
                # down with it is eventually charged like a local crash.
                seen = disconnects.get(run.index, 0) + 1
                disconnects[run.index] = seen
                if seen <= policy.max_retries + 1:
                    queue.append((0.0, run, attempt))
                else:
                    error = (
                        f"connection lost mid-unit {seen} times "
                        f"(last exit code {code})"
                    )
                    if telemetry is not None:
                        telemetry.unit_result(
                            worker.wid, run.index, attempt, "crash",
                            scenario=run.scenario[:12],
                            replication=run.replication, error=error,
                        )
                    handle_failure(run, attempt, error)
            else:
                error = f"worker crashed (exit code {code})"
                if telemetry is not None:
                    telemetry.unit_result(
                        worker.wid, run.index, attempt, "crash",
                        scenario=run.scenario[:12],
                        replication=run.replication, error=error,
                    )
                handle_failure(run, attempt, error)
            requeue_innocent(worker)
        if telemetry is not None:
            telemetry.worker_exited(worker.wid, reason, exitcode=code)

    def on_worker_timeout(worker: _PoolWorker) -> None:
        retire(worker, kill=True)
        run, attempt = worker.batch.pop(0)
        error = f"timed out after {policy.task_timeout:g}s wall clock"
        if telemetry is not None:
            telemetry.unit_result(
                worker.wid, run.index, attempt, "timeout",
                scenario=run.scenario[:12], replication=run.replication,
                error=error,
            )
        handle_failure(run, attempt, error)
        requeue_innocent(worker)
        if telemetry is not None:
            telemetry.worker_exited(
                worker.wid, "timeout", exitcode=worker.link.exitcode
            )

    def on_message(worker: _PoolWorker, message: Tuple[Any, ...]) -> None:
        run, attempt = worker.batch.pop(0)
        now = time.monotonic()
        worker.deadline = (
            now + policy.task_timeout
            if worker.batch and policy.task_timeout is not None
            else None
        )
        kind = message[0]
        if kind in ("ok", "hit"):
            cached = kind == "hit"
            if telemetry is not None:
                telemetry.unit_result(
                    worker.wid, run.index, attempt, "ok", cached=cached,
                    scenario=run.scenario[:12], replication=run.replication,
                    manifest=message[3],
                )
            if cached and store_hit is not None:
                store_hit(run, message[2], message[3])
            else:
                store(run, message[2], message[3])
        else:
            if telemetry is not None:
                telemetry.unit_result(
                    worker.wid, run.index, attempt, "error",
                    scenario=run.scenario[:12], replication=run.replication,
                    error=message[2],
                )
            handle_failure(run, attempt, message[2])

    def dispatch() -> None:
        """Hand ready units to idle workers, ``transport.prefetch`` each.

        This *is* the work-stealing: the queue is shared, idle workers
        (however they joined, whenever they joined) pull from it, and the
        per-worker grain shrinks as more workers show up, so a late joiner
        steals its share of whatever remains.
        """
        idle = [w for w in workers.values() if w.idle]
        if not idle:
            return
        now = time.monotonic()
        ready: List[Tuple[CampaignRun, int]] = []
        i = 0
        while i < len(queue):
            if queue[i][0] <= now:
                _, run, attempt = queue.pop(i)
                ready.append((run, attempt))
            else:
                i += 1
        if not ready:
            return
        per = max(1, min(transport.prefetch, -(-len(ready) // len(idle))))
        handout = iter(ready)
        for worker in idle:
            chunk = list(itertools.islice(handout, per))
            if not chunk:
                break
            worker.batch = chunk
            worker.deadline = (
                now + policy.task_timeout if policy.task_timeout is not None else None
            )
            try:
                worker.link.send_batch(
                    [(run.index, run.spec, run.digest) for run, _ in chunk]
                )
            except (BrokenPipeError, OSError):
                # Death noticed mid-send: the worker never received the
                # batch, so nothing was executing — requeue the whole chunk
                # un-charged and let the wait loop reap the (now idle)
                # corpse without blaming the head unit.
                requeue_innocent(worker)
            else:
                if telemetry is not None:
                    telemetry.batch_dispatched(
                        worker.wid, [run.index for run, _ in chunk]
                    )
        queue.extend((0.0, run, attempt) for run, attempt in handout)

    if transport.can_spawn:
        for _ in range(target_workers):
            spawn()

    try:
        while queue or any(not w.idle for w in workers.values()):
            draining = shutdown is not None and shutdown.requested
            if draining:
                # Drain: no new spawns or dispatches; leave once every
                # in-flight batch has resolved or the deadline/force hits.
                if shutdown.abort or all(w.idle for w in workers.values()):
                    break
            else:
                # Keep the pool at strength: crashed workers are replaced
                # as long as there is (or will be) work for them.  Spawns
                # that join asynchronously (TCP agents) are counted via
                # ``pending_spawns`` so a slow joiner is not double-spawned.
                while transport.can_spawn and (
                    len(workers) + transport.pending_spawns < target_workers
                ) and (
                    queue or any(not w.idle for w in workers.values())
                ):
                    spawn(replacement=True)
                dispatch()
            if telemetry is not None:
                telemetry.tick()
            now = time.monotonic()
            timeout = 0.5
            deadlines = [
                w.deadline for w in workers.values() if w.deadline is not None
            ]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - now))
            # Only FUTURE ready times (backoff expiries) bound the wait:
            # ready-now units are picked up by ``dispatch()`` as soon as a
            # worker goes idle, which always coincides with its connection
            # becoming readable.  Letting a ready-now queue clamp the
            # timeout to zero would busy-spin the coordinator and starve
            # the workers of CPU while every worker is mid-batch.
            future_ready = [r for r, _, _ in queue if r > now]
            if future_ready:
                timeout = min(timeout, max(0.0, min(future_ready) - now))
            ready_objs = multiprocessing.connection.wait(
                list(workers) + transport.waitables, timeout=timeout
            )
            accepted = False
            for obj in ready_objs:
                worker = workers.get(obj)
                if worker is None:
                    accepted = True  # the transport listener is readable
                    continue
                try:
                    message = worker.link.recv()
                except (EOFError, OSError, TransportError):
                    on_worker_death(worker)
                else:
                    on_message(worker, message)
            if accepted:
                for link in transport.accept():
                    register(link)
            now = time.monotonic()
            for worker in [
                w for w in workers.values()
                if w.deadline is not None and now >= w.deadline
            ]:
                on_worker_timeout(worker)
    finally:
        for worker in list(workers.values()):
            worker.link.stop()
            if telemetry is not None:
                telemetry.worker_exited(
                    worker.wid, "stop", exitcode=worker.link.exitcode
                )
        workers.clear()


def _run_supervised(
    pending: Sequence[CampaignRun],
    jobs: int,
    policy: RetryPolicy,
    store: Callable[[CampaignRun, Dict[str, Any], Optional[Dict[str, Any]]], None],
    quarantine: Callable[[FailedRun], None],
    telemetry: Optional[CampaignTelemetry] = None,
    shutdown: Optional[GracefulShutdown] = None,
) -> None:
    """Run ``pending`` under crash/hang supervision, ``jobs`` at a time.

    Each unit gets its own forked process and result pipe.  The loop
    launches ready units into free slots, waits on the pipes with a timeout
    bounded by the nearest watchdog deadline / backoff expiry, reaps
    results, terminates over-deadline workers, and requeues failures with
    exponential backoff until their retry budget runs out.

    ``shutdown.requested`` turns the loop into a drain (see
    :func:`_run_warm_pool`): no new launches, in-flight attempts are
    awaited until ``shutdown.abort``, then any still-running worker is
    terminated and its unit left unrecorded for a resume to re-execute.
    """
    ctx = _pool_context()
    workers = min(jobs, len(pending))
    # (ready_time, run, attempt) — ready_time is a monotonic timestamp.
    queue: List[Tuple[float, CampaignRun, int]] = [(0.0, run, 1) for run in pending]
    active: Dict[Any, _Attempt] = {}

    def launch_ready() -> None:
        now = time.monotonic()
        i = 0
        while i < len(queue) and len(active) < workers:
            ready, run, attempt = queue[i]
            if ready > now:
                i += 1
                continue
            queue.pop(i)
            parent, child = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_supervised_worker, args=(child, run.index, run.spec)
            )
            process.start()
            child.close()
            deadline = (
                now + policy.task_timeout if policy.task_timeout is not None else None
            )
            wid = f"p{process.pid}"
            active[parent] = _Attempt(run, attempt, process, parent, deadline, wid)
            if telemetry is not None:
                telemetry.worker_spawned(wid, process.pid)
                telemetry.batch_dispatched(wid, [run.index])

    def handle_failure(entry: _Attempt, error: str) -> None:
        if entry.attempt <= policy.max_retries:
            delay = policy.retry_delay(entry.attempt)
            if telemetry is not None:
                telemetry.retry_scheduled(
                    entry.run.index, entry.attempt, delay, error
                )
            queue.append((time.monotonic() + delay, entry.run, entry.attempt + 1))
        else:
            quarantine(FailedRun(run=entry.run, error=error, attempts=entry.attempt))

    def unit_span(entry: _Attempt, status: str, *, manifest=None,
                  error=None) -> None:
        if telemetry is not None:
            telemetry.unit_result(
                entry.wid, entry.run.index, entry.attempt, status,
                scenario=entry.run.scenario[:12],
                replication=entry.run.replication,
                manifest=manifest, error=error,
            )

    def reap(conn, timed_out: bool) -> None:
        entry = active.pop(conn)
        message = None
        if not timed_out:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None  # died before sending: a hard crash
        conn.close()
        if timed_out:
            _terminate(entry.process)
            error = f"timed out after {policy.task_timeout:g}s wall clock"
            unit_span(entry, "timeout", error=error)
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "timeout", exitcode=entry.process.exitcode
                )
            handle_failure(entry, error)
            return
        entry.process.join()
        if message is not None and message[0] == "ok":
            _, _, metrics, manifest = message
            unit_span(entry, "ok", manifest=manifest)
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "stop", exitcode=entry.process.exitcode
                )
            store(entry.run, metrics, manifest)
        elif message is not None:
            unit_span(entry, "error", error=message[2])
            if telemetry is not None:
                telemetry.worker_exited(
                    entry.wid, "stop", exitcode=entry.process.exitcode
                )
            handle_failure(entry, message[2])
        else:
            code = entry.process.exitcode
            error = f"worker crashed (exit code {code})"
            unit_span(entry, "crash", error=error)
            if telemetry is not None:
                telemetry.worker_exited(entry.wid, "crash", exitcode=code)
            handle_failure(entry, error)

    while queue or active:
        draining = shutdown is not None and shutdown.requested
        if draining:
            if shutdown.abort or not active:
                break
        else:
            launch_ready()
        now = time.monotonic()
        if not active:
            # Every remaining unit is waiting out its backoff.
            time.sleep(max(0.0, min(ready for ready, _, _ in queue) - now))
            continue
        timeout = 0.5
        deadlines = [e.deadline for e in active.values() if e.deadline is not None]
        if deadlines:
            timeout = min(timeout, max(0.0, min(deadlines) - now))
        # Future ready times only (see the warm-pool loop): a ready-now
        # backlog just means every slot is busy, and ``launch_ready`` runs
        # again as soon as a worker's connection signals completion.
        future_ready = [r for r, _, _ in queue if r > now]
        if future_ready:
            timeout = min(timeout, max(0.0, min(future_ready) - now))
        ready_conns = multiprocessing.connection.wait(list(active), timeout=timeout)
        for conn in ready_conns:
            reap(conn, timed_out=False)
        now = time.monotonic()
        for conn in [
            c for c, e in active.items()
            if e.deadline is not None and now >= e.deadline
        ]:
            reap(conn, timed_out=True)

    # Drain abandoned with attempts still in flight: terminate them and
    # leave their units unrecorded — a resume re-executes exactly those.
    for conn, entry in list(active.items()):
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        _terminate(entry.process)
        if telemetry is not None:
            telemetry.worker_exited(
                entry.wid, "stop", exitcode=entry.process.exitcode
            )
    active.clear()


ProgressFn = Callable[[RunRecord, int, int], None]


def run_campaign(
    grid: Sequence[RunSpec],
    replications: int = 1,
    base_seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    progress: Optional[ProgressFn] = None,
    policy: Optional[RetryPolicy] = None,
    pool_mode: str = "warm",
    telemetry: Optional[CampaignTelemetry] = None,
    journal: Optional[CampaignJournal] = None,
    resume: Optional[JournalReplay] = None,
    shutdown: Optional[GracefulShutdown] = None,
    transport: Optional[Transport] = None,
) -> CampaignResult:
    """Run every ``(spec, replication)`` in ``grid``; return ordered records.

    ``jobs`` is the worker-process count (default ``os.cpu_count()``; ``1``
    with no watchdog executes in-process).  ``cache`` enables the on-disk
    memo: hits skip execution entirely — they are resolved before any
    worker is dispatched, so a fully cached campaign never starts a pool.
    ``progress`` is invoked once per finished run — from the coordinating
    process, in completion order — with ``(record, done_count,
    total_count)``.  ``policy`` configures the self-healing supervisor
    (watchdog timeout, retries, backoff); units that exhaust their retries
    land in ``CampaignResult.failed`` and the campaign still completes.

    ``pool_mode`` selects the execution backend (see the module docstring):
    ``"warm"`` (persistent warm-worker pool, the default),
    ``"per-attempt"`` (one forked process per attempt), ``"inproc"``
    (no forks, no watchdog), or ``"cluster"`` (the warm pool's supervisor
    loop over a TCP transport; worker agents join over the network and a
    mid-unit disconnect requeues the unit un-charged).  ``jobs == 1`` with
    no watchdog short-circuits to in-process execution in every local mode
    — a single-slot pool buys nothing over running the units directly —
    but never in ``cluster`` mode, where even one worker lives behind the
    transport.  ``transport`` lets a caller supply a pre-opened
    :class:`~repro.experiments.transport.TcpTransport` (to pin the listen
    address, disable agent self-spawn, or reuse warmed agents across
    campaigns); by default ``cluster`` opens a loopback transport that
    keeps itself at ``jobs`` local agents.  A transport this function
    opened, it also closes.

    ``telemetry`` (a :class:`repro.obs.engine.CampaignTelemetry`) streams
    spans, coordinator events, worker heartbeats and progress over NDJSON as
    the campaign runs.  It observes the coordinator only — nothing telemetry
    does can reach a worker or a result, so metrics and fingerprints are
    byte-identical with telemetry on or off.

    Crash safety: ``journal`` (a :class:`~repro.experiments.journal.
    CampaignJournal`) write-ahead-records the plan before any dispatch and
    every completion/quarantine after it.  ``resume`` (a
    :class:`~repro.experiments.journal.JournalReplay`) replays a previous
    generation: it requires a ``cache``, verifies the plan digest matches,
    re-verifies every journaled completion against the cache (drifted or
    missing entries re-execute), and dispatches only the remainder.
    ``shutdown`` (a :class:`GracefulShutdown`) lets SIGINT/SIGTERM stop the
    campaign cooperatively — the result comes back with
    ``interrupted=True`` and the journal closes resumable.

    The returned records are always in grid order, and their metrics are
    byte-identical for any ``jobs`` value and any ``pool_mode`` — resumed
    or not: seeds come from :func:`plan_campaign`, never from scheduling.
    """
    if pool_mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool_mode {pool_mode!r}; expected one of {POOL_MODES}"
        )
    runs = plan_campaign(grid, replications=replications, base_seed=base_seed)
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = policy if policy is not None else RetryPolicy()
    if resume is not None:
        if cache is None:
            raise ValueError(
                "resume requires a cache: journaled completions are "
                "re-verified against (and their results read from) the "
                "content-addressed cache"
            )
        resume.verify_plan(runs)

    records: Dict[int, RunRecord] = {}
    failed: List[FailedRun] = []
    done = 0
    evictions_before = cache.evictions if cache is not None else 0

    # Cluster mode opens its transport before the journal's begin record is
    # written, so the record can carry the coordinator's endpoint — that is
    # what lets a resume (and the doctor) reason about the previous
    # generation's cluster.  Ownership rule: whoever transitioned the
    # transport to open closes it, so a caller-provided pre-opened
    # transport (a bench reusing warmed agents) survives this campaign.
    owns_transport = False
    transport_info: Optional[Dict[str, Any]] = None
    if pool_mode == "cluster":
        if transport is None:
            registry = None
            if isinstance(cache, CampaignCache):
                registry = cache.root / CLUSTER_REGISTRY_DIRNAME
            transport = TcpTransport(
                cache_spec=cache.describe() if cache is not None else None,
                registry=registry,
            )
        owns_transport = transport.open()
        if getattr(transport, "cache_spec", None) is None and cache is not None:
            transport.cache_spec = cache.describe()
        transport_info = transport.info()

    if telemetry is not None:
        extra: Dict[str, Any] = {}
        if transport_info is not None and "endpoint" in transport_info:
            extra["transport"] = transport_info["endpoint"]
        telemetry.begin_campaign(
            len(runs), pool_mode, jobs,
            base_seed=base_seed, replications=replications, **extra,
        )
    if journal is not None:
        journal.begin(
            runs, pool_mode=pool_mode, base_seed=base_seed,
            replications=replications, resumed=resume is not None,
            transport=transport_info,
        )

    def finish(record: RunRecord) -> None:
        nonlocal done
        records[record.run.index] = record
        done += 1
        if telemetry is not None:
            telemetry.progress(done, len(runs), len(failed))
        if progress is not None:
            progress(record, done, len(runs))

    def quarantine(failure: FailedRun) -> None:
        nonlocal done
        failed.append(failure)
        done += 1
        if journal is not None:
            journal.failed(failure.run, failure.error, failure.attempts)
        if telemetry is not None:
            telemetry.quarantined(
                failure.run.index, failure.attempts, failure.error
            )
            telemetry.progress(done, len(runs), len(failed))

    pending: List[CampaignRun] = []
    verified = drift = 0
    for run in runs:
        if shutdown is not None and shutdown.requested:
            # Interrupted during cache resolution: everything not yet
            # resolved stays pending-and-undispatched → the remainder.
            pending = []
            break
        payload = None
        if cache is not None:
            seen_evictions = cache.evictions
            payload = cache.get(run.digest)
            if telemetry is not None and cache.evictions > seen_evictions:
                telemetry.cache_evicted(run.index, run.digest)
        if resume is not None and run.index in resume.completed:
            # Re-verify the journaled completion against the cache: the
            # entry must exist, pass its checksum (cache.get), and hash to
            # the journaled result digest.  Anything else is drift — the
            # unit re-executes.
            if (
                payload is not None
                and stable_digest(payload["result"])
                == resume.completed[run.index]
            ):
                verified += 1
            else:
                drift += 1
                payload = None
        if payload is not None:
            if telemetry is not None:
                telemetry.cache_hit(run.index, run.digest)
                # Cached units get a span too (consumers see every unit),
                # but no manifest: its timings/engine facts describe the
                # original execution, not this campaign.
                telemetry.unit_result(
                    "cache", run.index, 0, "ok", cached=True,
                    scenario=run.scenario[:12], replication=run.replication,
                )
            if journal is not None:
                journal.done(run, stable_digest(payload["result"]),
                             cached=True)
            finish(RunRecord(run=run, metrics=payload["result"], cached=True,
                             manifest=payload.get("manifest")))
        else:
            if telemetry is not None and cache is not None:
                telemetry.cache_miss(run.index, run.digest)
            pending.append(run)

    if resume is not None and telemetry is not None:
        telemetry.campaign_resumed(
            str(resume.path), verified=verified, drift=drift,
            remainder=len(pending),
        )

    def store(run: CampaignRun, metrics: Dict[str, Any],
              manifest: Optional[Dict[str, Any]]) -> None:
        if cache is not None:
            cache.put(run.digest, {"result": metrics, "manifest": manifest})
        if journal is not None:
            # Journaled after cache.put: a done record implies the cache
            # holds the result, which is what resume verification assumes.
            journal.done(run, stable_digest(metrics), cached=False)
        finish(RunRecord(run=run, metrics=metrics, cached=False,
                         manifest=manifest))

    def store_hit(run: CampaignRun, metrics: Dict[str, Any],
                  manifest: Optional[Dict[str, Any]]) -> None:
        # A remote agent answered from the shared cache store: same bytes
        # as an execution (the fingerprint cannot tell), recorded as a
        # cached completion.  The result already lives in the shared
        # store, so no local put.
        if telemetry is not None:
            telemetry.cache_hit(run.index, run.digest)
        if journal is not None:
            journal.done(run, stable_digest(metrics), cached=True)
        finish(RunRecord(run=run, metrics=metrics, cached=True,
                         manifest=manifest))

    if pending and (
        pool_mode == "inproc" or (
            jobs == 1 and policy.task_timeout is None
            and pool_mode != "cluster"
        )
    ):
        # In-process fast path: no fork, no pipes.  Exceptions are retried
        # without backoff (an in-process failure is deterministic; sleeping
        # between identical attempts buys nothing) and then quarantined.
        if telemetry is not None:
            telemetry.worker_spawned("main", os.getpid())
        for run in pending:
            if shutdown is not None and shutdown.requested:
                break  # in-flight unit finished; the rest stay unexecuted
            attempt = 0
            while True:
                attempt += 1
                try:
                    _, metrics, manifest = _execute_unit((run.index, run.spec))
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if telemetry is not None:
                        telemetry.unit_result(
                            "main", run.index, attempt, "error",
                            scenario=run.scenario[:12],
                            replication=run.replication, error=error,
                        )
                    if attempt <= policy.max_retries:
                        if telemetry is not None:
                            telemetry.retry_scheduled(
                                run.index, attempt, 0.0, error
                            )
                        continue
                    quarantine(FailedRun(
                        run=run, error=error, attempts=attempt,
                    ))
                    break
                if telemetry is not None:
                    telemetry.unit_result(
                        "main", run.index, attempt, "ok",
                        scenario=run.scenario[:12],
                        replication=run.replication, manifest=manifest,
                    )
                store(run, metrics, manifest)
                break
        if telemetry is not None:
            telemetry.worker_exited("main", "stop")
    elif pending and pool_mode == "per-attempt":
        _run_supervised(pending, jobs, policy, store, quarantine, telemetry,
                        shutdown)
    elif pending:
        pool_transport = (
            transport if pool_mode == "cluster" else PipeTransport()
        )
        try:
            _run_pool(pool_transport, pending, jobs, policy, store,
                      quarantine, telemetry, shutdown, store_hit=store_hit)
        finally:
            if owns_transport:
                transport.close()
                owns_transport = False

    if owns_transport:
        # Nothing was dispatched (fully cached, or interrupted during
        # cache resolution) but the transport was opened above: close it.
        transport.close()

    failed.sort(key=lambda f: f.run.index)
    evictions = (cache.evictions - evictions_before) if cache is not None else 0
    remaining = len(runs) - len(records) - len(failed)
    # A signal that lands after the last unit resolves is not an
    # interruption: nothing is missing, the campaign simply completed.
    interrupted = (
        shutdown is not None and shutdown.requested and remaining > 0
    )
    result = CampaignResult(
        records=[records[i] for i in sorted(records)],
        failed=failed,
        cache_evictions=evictions,
        interrupted=interrupted,
        planned=len(runs),
    )
    if telemetry is not None:
        if interrupted:
            telemetry.campaign_interrupted(
                shutdown.signal_name or "manual",
                done=done, total=len(runs),
            )
        telemetry.end_campaign(
            executed=result.executed,
            cache_hits=result.cache_hits,
            cache_evictions=evictions,
            failed=len(failed),
            interrupted=interrupted,
            remaining=remaining,
        )
    if journal is not None:
        if interrupted:
            status = "interrupted"
        elif failed:
            status = "partial"
        else:
            status = "ok"
        journal.end(
            status=status,
            # No fingerprint for an interrupted generation: the digest of a
            # partial record set would collide meaninglessly with nothing.
            fingerprint=None if interrupted else result.fingerprint(),
            executed=result.executed,
            cache_hits=result.cache_hits,
            quarantined=len(failed),
            remaining=remaining,
        )
    return result
