"""Experiment harness (S11): scenario runners, per-figure generators and
text reporting used by the benchmarks, the examples and the CLI."""

from .config import (
    FULL_ENV_VAR,
    PAPER_VARIANTS,
    ScenarioConfig,
    SweepConfig,
    Table51Parameters,
    full_scale,
)
from .export import (
    export_coexistence_csv,
    export_multi_series_csv,
    export_series_csv,
    export_sweep_csv,
)
from .figures import (
    CoexistencePoint,
    SweepPoint,
    SweepResult,
    fig_coexistence,
    fig_cwnd_traces,
    fig_dynamics,
    throughput_retransmit_sweep,
)
from .reporting import (
    ascii_series,
    format_coexistence,
    format_sweep,
    format_table,
    format_traces_summary,
)
from .runner import FlowResult, RunResult, run_chain, run_cross

__all__ = [
    "CoexistencePoint",
    "FULL_ENV_VAR",
    "FlowResult",
    "PAPER_VARIANTS",
    "RunResult",
    "ScenarioConfig",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "Table51Parameters",
    "ascii_series",
    "export_coexistence_csv",
    "export_multi_series_csv",
    "export_series_csv",
    "export_sweep_csv",
    "fig_coexistence",
    "fig_cwnd_traces",
    "fig_dynamics",
    "format_coexistence",
    "format_sweep",
    "format_table",
    "format_traces_summary",
    "full_scale",
    "run_chain",
    "run_cross",
    "throughput_retransmit_sweep",
]
