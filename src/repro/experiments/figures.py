"""Per-figure data generators.

One function per paper artefact; each returns plain data structures (dicts /
lists of tuples) that the benchmarks print, assert on, and the examples
plot as ASCII charts.  Figure numbering follows the paper:

=================  =========================================================
fig_cwnd_traces    Figs 5.2–5.7 (cwnd vs time, chain, one flow per variant)
throughput_sweep   Figs 5.8–5.10 (goodput vs hops per advertised window)
retransmit_sweep   Figs 5.11–5.13 (retransmissions vs hops) — same runs
fig_coexistence    Figs 5.16–5.18 (two flows on a cross + Jain index)
fig_dynamics       Figs 5.19–5.22 (three staggered flows' rate series)
=================  =========================================================
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import PAPER_VARIANTS, ScenarioConfig, SweepConfig
from .runner import RunResult, run_chain, run_cross


@dataclass
class SweepPoint:
    """Aggregated result at one (variant, hops) grid point."""

    goodput_kbps: float
    goodput_stdev: float
    retransmits: float
    timeouts: float
    samples: int


@dataclass
class SweepResult:
    """The full Figure 5.8–5.13 grid for one advertised window."""

    window: int
    hops: Sequence[int]
    variants: Sequence[str]
    points: Dict[Tuple[str, int], SweepPoint] = field(default_factory=dict)

    def goodput_series(self, variant: str) -> List[Tuple[int, float]]:
        return [(h, self.points[(variant, h)].goodput_kbps) for h in self.hops]

    def retransmit_series(self, variant: str) -> List[Tuple[int, float]]:
        return [(h, self.points[(variant, h)].retransmits) for h in self.hops]


def fig_cwnd_traces(
    hops: int,
    variants: Sequence[str] = PAPER_VARIANTS,
    window: int = 32,
    sim_time: float = 10.0,
    seed: int = 1,
    routing: str = "aodv",
) -> Dict[str, List[Tuple[float, float]]]:
    """Figs 5.2–5.7: one single-flow run per variant, returning cwnd traces."""
    traces: Dict[str, List[Tuple[float, float]]] = {}
    for variant in variants:
        config = ScenarioConfig(
            sim_time=sim_time, seed=seed, routing=routing, window=window
        )
        result = run_chain(hops, [variant], config=config)
        traces[variant] = result.flows[0].cwnd_trace
    return traces


def throughput_retransmit_sweep(
    window: int,
    sweep: Optional[SweepConfig] = None,
    variants: Sequence[str] = PAPER_VARIANTS,
    routing: str = "aodv",
) -> SweepResult:
    """Figs 5.8–5.13: goodput and retransmissions vs hop count.

    Each grid point averages over ``sweep.seeds`` independent runs.
    """
    sweep = sweep or SweepConfig.for_scale()
    result = SweepResult(window=window, hops=tuple(sweep.hops), variants=tuple(variants))
    for variant in variants:
        for hops in sweep.hops:
            goodputs: List[float] = []
            retransmits: List[float] = []
            timeouts: List[float] = []
            for seed in sweep.seeds:
                config = ScenarioConfig(
                    sim_time=sweep.sim_time, seed=seed, routing=routing, window=window
                )
                run = run_chain(hops, [variant], config=config)
                flow = run.flows[0]
                goodputs.append(flow.goodput_kbps)
                retransmits.append(float(flow.retransmits))
                timeouts.append(float(flow.timeouts))
            result.points[(variant, hops)] = SweepPoint(
                goodput_kbps=statistics.mean(goodputs),
                goodput_stdev=statistics.stdev(goodputs) if len(goodputs) > 1 else 0.0,
                retransmits=statistics.mean(retransmits),
                timeouts=statistics.mean(timeouts),
                samples=len(goodputs),
            )
    return result


@dataclass
class CoexistencePoint:
    """One cross-topology contest at a given hop count."""

    hops: int
    goodput_a_kbps: float
    goodput_b_kbps: float
    fairness: float


def fig_coexistence(
    variant_a: str,
    variant_b: str,
    hops_list: Sequence[int] = (4, 6, 8),
    sim_time: float = 50.0,
    seeds: Sequence[int] = (1, 2, 3),
    window: int = 4,
    routing: str = "aodv",
) -> List[CoexistencePoint]:
    """Figs 5.16–5.18: ``variant_a`` (horizontal) vs ``variant_b`` (vertical)
    on an h-hop cross; goodputs and Jain fairness, averaged over seeds."""
    points: List[CoexistencePoint] = []
    for hops in hops_list:
        a_vals: List[float] = []
        b_vals: List[float] = []
        fairness_vals: List[float] = []
        for seed in seeds:
            config = ScenarioConfig(
                sim_time=sim_time, seed=seed, routing=routing, window=window
            )
            run = run_cross(hops, variant_a, variant_b, config=config)
            a_vals.append(run.flows[0].goodput_kbps)
            b_vals.append(run.flows[1].goodput_kbps)
            fairness_vals.append(run.fairness)
        points.append(
            CoexistencePoint(
                hops=hops,
                goodput_a_kbps=statistics.mean(a_vals),
                goodput_b_kbps=statistics.mean(b_vals),
                fairness=statistics.mean(fairness_vals),
            )
        )
    return points


def fig_dynamics(
    variant: str,
    hops: int = 4,
    starts: Sequence[float] = (0.0, 10.0, 20.0),
    sim_time: float = 40.0,
    seed: int = 1,
    window: int = 8,
    routing: str = "aodv",
    sampler_interval: float = 1.0,
) -> RunResult:
    """Figs 5.19–5.22: three same-variant flows entering at 0/10/20 s on a
    4-hop chain; per-flow throughput-dynamics series are recorded."""
    config = ScenarioConfig(
        sim_time=sim_time,
        seed=seed,
        routing=routing,
        window=window,
        sampler_interval=sampler_interval,
    )
    return run_chain(
        hops,
        [variant] * len(starts),
        config=config,
        starts=starts,
        record_dynamics=True,
    )
