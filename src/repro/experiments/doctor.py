"""``repro-muzha doctor`` — fsck for campaign state on disk.

A campaign leaves three artifacts behind: the content-addressed result
cache, the write-ahead journal, and (optionally) a span log.  All three
are designed to survive crashes — atomic cache writes, per-line journal
flushes, torn-tail-tolerant readers — but a killed coordinator, a full
disk, or a stray ``cp -r`` can still leave debris.  This module walks a
cache/journal/span-log triple and reports (or, with ``repair=True``,
fixes) what it finds:

* **orphaned tmp files** in the cache — the write-in-progress a killed
  ``CampaignCache.put`` left behind (never visible to readers; safe to
  delete);
* **corrupt cache envelopes** — zero-length files, broken JSON, missing
  fields, checksum mismatches (``get`` would evict these lazily; doctor
  finds them all eagerly);
* **journal damage** — a torn final line (killed writer; repair truncates
  it), mid-file corruption, schema violations;
* **journal/cache drift** — journaled completions whose cache entry is
  missing, corrupt, or hashes to a different ``result_digest`` than the
  journal recorded (these re-execute on resume; repair deletes the
  drifted entry so the re-execution starts clean);
* **unclosed span logs** — spans opened but never closed, the signature
  of a killed campaign (informational; ``repro-muzha report`` renders
  such logs as partial);
* **stale cluster registrations** — liveness files under the cache's
  ``.cluster/`` registry whose process is gone (local pid) or whose
  coordinator endpoint no longer answers (remote host): the debris of a
  killed distributed campaign (repair deletes them);
* **cluster endpoints in interrupted journals** — a ``begin`` record
  carrying a transport endpoint is probed: still answering means the
  campaign may still be running (resuming risks double execution), dead
  means it is safe to resume (resumes never reconnect).

Every diagnosis is a :class:`Finding`; nothing here ever *executes* a
simulation, takes the cache lock for reads, or mutates anything unless
``repair=True``.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.provenance import stable_digest
from ..obs.spans import read_span_log
from ..obs.validate import validate_journal_file
from .cachestore import (
    CLUSTER_REGISTRY_DIRNAME,
    CampaignCache,
    _envelope_checksum,
)
from .journal import JournalError, read_journal, replay_journal

PathLike = Union[str, Path]

#: Finding severities: ``error`` blocks a clean resume or hides results;
#: ``warn`` is survivable debris (resume/report already tolerate it);
#: ``info`` is state worth knowing about (an interrupted, resumable run).
SEVERITIES = ("error", "warn", "info")


@dataclass
class Finding:
    """One diagnosed problem (or notable state) in campaign artifacts."""

    severity: str  # one of SEVERITIES
    category: str  # e.g. "orphan-tmp", "corrupt-envelope", "journal-drift"
    path: str
    detail: str
    repaired: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "category": self.category,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
        }


def _read_envelope(path: Path) -> Optional[str]:
    """Why this cache entry is bad, or None if it is healthy.

    A read-only re-implementation of the :meth:`CampaignCache.get`
    validation chain: doctor must never evict as a side effect of
    *diagnosing* (that is what ``repair`` is for).
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return f"unreadable: {exc}"
    if not text:
        return "zero-length file"
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return f"truncated or invalid JSON: {exc}"
    if (
        not isinstance(payload, dict)
        or "result" not in payload
        or "checksum" not in payload
    ):
        return "malformed envelope (missing result/checksum)"
    expected = _envelope_checksum(payload["result"], payload.get("manifest"))
    if payload["checksum"] != expected:
        return "checksum mismatch (corrupted content)"
    return None


def _remove(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process on *this* host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive but not ours
        return True
    except OSError:  # pragma: no cover - exotic platform failure
        return False
    return True


def _endpoint_alive(endpoint: str, timeout: float = 0.5) -> bool:
    """Whether a ``host:port`` coordinator endpoint accepts connections.

    A bare connect-and-close: the coordinator's accept loop treats a
    connection that sends no ``hello`` as a garbage connect and drops it
    silently, so probing a live campaign is harmless.
    """
    try:
        host, _, port = endpoint.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=timeout):
            return True
    except (OSError, ValueError):
        return False


def _diagnose_cluster_registry(root: Path, repair: bool) -> List[Finding]:
    """Findings for the ``.cluster/`` liveness registry of one cache.

    :class:`~repro.experiments.transport.TcpTransport` writes one JSON
    file per coordinator/worker and removes them on a clean close, so
    anything still here belongs to a campaign that is either *running*
    (pid alive / endpoint answering — reported as info, never repaired)
    or *dead* (stale registration — repair deletes it).
    """
    registry = root / CLUSTER_REGISTRY_DIRNAME
    findings: List[Finding] = []
    if not registry.is_dir():
        return findings
    local_host = socket.gethostname()
    for path in sorted(registry.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            kind = str(record["kind"])
            host = str(record["host"])
            pid = int(record["pid"])
            endpoint = str(record["endpoint"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            finding = Finding(
                "warn", "cluster-registry-corrupt", str(path),
                f"unreadable cluster registration: {exc}",
            )
            if repair:
                finding.repaired = _remove(path)
            findings.append(finding)
            continue
        if host == local_host and pid > 0:
            alive = _pid_alive(pid)
            how = f"pid {pid} is {'alive' if alive else 'gone'}"
        else:
            # Remote (or pid-less) registrant: the best liveness signal
            # we have is whether its coordinator endpoint still answers.
            alive = _endpoint_alive(endpoint)
            how = (f"coordinator endpoint {endpoint} is "
                   f"{'answering' if alive else 'not answering'}")
        if alive:
            findings.append(Finding(
                "info", "cluster-active", str(path),
                f"registered cluster {kind} on {host} looks live ({how}); "
                "a distributed campaign may still be running",
            ))
            continue
        finding = Finding(
            "warn", "cluster-orphan", str(path),
            f"stale cluster {kind} registration ({how}); the {kind} "
            "exited without cleaning up",
        )
        if repair:
            finding.repaired = _remove(path)
        findings.append(finding)
    if repair:
        try:  # leave no empty registry behind once every file is gone
            registry.rmdir()
        except OSError:
            pass
    return findings


def diagnose_cache(root: PathLike, repair: bool = False) -> List[Finding]:
    """Findings for one campaign cache directory."""
    root = Path(root)
    findings: List[Finding] = []
    if not root.is_dir():
        findings.append(Finding(
            "error", "cache-missing", str(root),
            "cache directory does not exist",
        ))
        return findings
    # Orphaned write-in-progress files: the current hidden pid-unique form
    # (.<digest>.<pid>.tmp) and the legacy <digest>.tmp form both end in
    # .tmp, and pathlib's ``*`` matches dotfiles, so one glob covers both.
    # That same dotfile matching would also pull in the ``.cluster/``
    # liveness registry, which is not envelope-shaped — skip it here and
    # diagnose it separately below.
    for tmp in sorted(root.glob("*/*.tmp")):
        if tmp.parent.name == CLUSTER_REGISTRY_DIRNAME:
            continue
        finding = Finding(
            "warn", "orphan-tmp", str(tmp),
            "orphaned write-in-progress file (coordinator killed "
            "mid-put); never visible to readers",
        )
        if repair:
            finding.repaired = _remove(tmp)
        findings.append(finding)
    for entry in sorted(root.glob("*/*.json")):
        if entry.parent.name == CLUSTER_REGISTRY_DIRNAME:
            continue
        reason = _read_envelope(entry)
        if reason is None:
            continue
        finding = Finding(
            "error", "corrupt-envelope", str(entry),
            f"{reason}; the engine would evict and recompute this entry "
            "on read",
        )
        if repair:
            finding.repaired = _remove(entry)
        findings.append(finding)
    findings.extend(_diagnose_cluster_registry(root, repair))
    return findings


def _truncate_torn_tail(path: Path) -> bool:
    """Cut a journal back to its last complete line."""
    try:
        data = path.read_bytes()
        cut = data.rfind(b"\n")
        path.write_bytes(data[: cut + 1] if cut >= 0 else b"")
        return True
    except OSError:
        return False


def diagnose_journal(
    path: PathLike,
    cache: Optional[PathLike] = None,
    repair: bool = False,
) -> List[Finding]:
    """Findings for one write-ahead journal (+ drift against ``cache``)."""
    path = Path(path)
    findings: List[Finding] = []
    if not path.is_file():
        findings.append(Finding(
            "error", "journal-missing", str(path), "journal does not exist",
        ))
        return findings
    try:
        records, truncated = read_journal(path)
    except JournalError as exc:
        findings.append(Finding(
            "error", "journal-corrupt", str(path),
            f"unreadable past repair: {exc}",
        ))
        return findings
    if truncated:
        finding = Finding(
            "warn", "journal-torn-tail", str(path),
            "partial final line (writer killed mid-record); replay "
            "ignores it, repair truncates it",
        )
        if repair:
            finding.repaired = _truncate_torn_tail(path)
        findings.append(finding)
    for violation in validate_journal_file(path, allow_torn_tail=True):
        findings.append(Finding(
            "error", "journal-schema", str(path), violation,
        ))
    try:
        replay = replay_journal(path)
    except JournalError as exc:
        findings.append(Finding(
            "error", "journal-corrupt", str(path), str(exc),
        ))
        return findings
    if replay.interrupted:
        findings.append(Finding(
            "info", "journal-interrupted", str(path),
            f"campaign interrupted with {replay.remaining} of "
            f"{replay.total} units remaining; resume with "
            "--resume",
        ))
        # The latest generation's begin record carries the coordinator
        # endpoint of a cluster run; probe it so the operator knows
        # whether the interrupted campaign might still be alive.
        transport: Optional[Dict[str, Any]] = None
        for record in reversed(records):
            if record.get("kind") == "begin":
                transport = record.get("transport")
                break
        endpoint = (transport or {}).get("endpoint")
        if endpoint:
            if _endpoint_alive(str(endpoint)):
                findings.append(Finding(
                    "warn", "cluster-endpoint-live", str(path),
                    f"interrupted cluster generation's coordinator "
                    f"endpoint {endpoint} still answers — the campaign "
                    "may still be running; resuming now risks executing "
                    "units twice",
                ))
            else:
                findings.append(Finding(
                    "info", "cluster-endpoint-stale", str(path),
                    f"interrupted cluster generation's coordinator "
                    f"endpoint {endpoint} no longer answers; safe to "
                    "resume (resumes never reconnect to it)",
                ))
    if cache is None:
        return findings
    store = CampaignCache(cache)
    for index, result_digest in sorted(replay.completed.items()):
        planned = replay.planned.get(index)
        if planned is None:
            # validate_journal_file already flagged the unplanned done.
            continue
        entry = store._path(planned["digest"])
        reason = None
        if not entry.is_file():
            reason = "cache entry missing"
        else:
            reason = _read_envelope(entry)
            if reason is None:
                payload = json.loads(entry.read_text(encoding="utf-8"))
                if stable_digest(payload["result"]) != result_digest:
                    reason = (
                        "cache result digest differs from the journaled one"
                    )
        if reason is None:
            continue
        finding = Finding(
            "warn", "journal-drift", str(entry),
            f"unit {index} is journaled done but {reason}; it re-executes "
            "on resume",
        )
        if repair and entry.is_file():
            # Delete the drifted entry so the re-execution starts clean.
            finding.repaired = _remove(entry)
        findings.append(finding)
    return findings


def diagnose_spans(path: PathLike, repair: bool = False) -> List[Finding]:
    """Findings for one campaign span log."""
    path = Path(path)
    findings: List[Finding] = []
    if not path.is_file():
        findings.append(Finding(
            "error", "spans-missing", str(path), "span log does not exist",
        ))
        return findings
    raw = path.read_text(encoding="utf-8")
    if raw and not raw.endswith("\n"):
        finding = Finding(
            "warn", "spans-torn-tail", str(path),
            "partial final line (writer killed mid-record)",
        )
        if repair:
            finding.repaired = _truncate_torn_tail(path)
        findings.append(finding)
    try:
        records = read_span_log(path, skip_partial_tail=True)
    except ValueError as exc:
        findings.append(Finding(
            "error", "spans-corrupt", str(path), str(exc),
        ))
        return findings
    open_spans: Dict[str, str] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "span_open":
            open_spans[record.get("id", "?")] = record.get("span", "?")
        elif kind == "span_close":
            open_spans.pop(record.get("id", "?"), None)
    if open_spans:
        names = ", ".join(
            f"{sid} ({name})" for sid, name in sorted(open_spans.items())
        )
        findings.append(Finding(
            "warn", "spans-unclosed", str(path),
            f"{len(open_spans)} span(s) never closed — killed campaign? "
            f"({names}); `repro-muzha report` renders this log as partial",
        ))
    return findings


@dataclass
class DoctorReport:
    """Everything one ``doctor`` invocation diagnosed."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def unrepaired_errors(self) -> List[Finding]:
        return [f for f in self.errors if not f.repaired]

    @property
    def healthy(self) -> bool:
        """No unrepaired errors (warnings/info do not fail a checkup)."""
        return not self.unrepaired_errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "healthy": self.healthy,
            "findings": [f.to_dict() for f in self.findings],
        }


def run_doctor(
    cache: Optional[PathLike] = None,
    journal: Optional[PathLike] = None,
    spans: Optional[PathLike] = None,
    repair: bool = False,
) -> DoctorReport:
    """Diagnose any combination of cache / journal / span-log artifacts."""
    report = DoctorReport()
    if cache is not None:
        report.findings.extend(diagnose_cache(cache, repair=repair))
    if journal is not None:
        report.findings.extend(
            diagnose_journal(journal, cache=cache, repair=repair)
        )
    if spans is not None:
        report.findings.extend(diagnose_spans(spans, repair=repair))
    return report


def format_report(report: DoctorReport) -> str:
    """Human-readable rendering of a :class:`DoctorReport`."""
    if not report.findings:
        return "doctor: no findings — campaign state is healthy"
    lines = []
    for finding in report.findings:
        mark = "repaired" if finding.repaired else finding.severity
        lines.append(
            f"[{mark}] {finding.category}: {finding.path}\n"
            f"    {finding.detail}"
        )
    errors = len(report.unrepaired_errors)
    repaired = sum(1 for f in report.findings if f.repaired)
    lines.append(
        f"doctor: {len(report.findings)} finding(s), "
        f"{repaired} repaired, {errors} unrepaired error(s)"
    )
    return "\n".join(lines)


__all__ = [
    "DoctorReport",
    "Finding",
    "SEVERITIES",
    "diagnose_cache",
    "diagnose_journal",
    "diagnose_spans",
    "format_report",
    "run_doctor",
]
