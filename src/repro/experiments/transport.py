"""Pluggable worker transports for the campaign coordinator.

PR 5's warm pool wired the coordinator to its workers with one mechanism:
``multiprocessing`` duplex pipes to processes forked from the coordinator
itself.  That caps a campaign at one host's cores.  This module lifts the
mechanism behind two small interfaces so the same work-stealing pool loop
(:func:`repro.experiments.campaign._run_pool`) drives either:

* :class:`PipeTransport` / :class:`PipeLink` — the existing local pipe
  pool, byte-identical in behaviour: workers are forked once (inheriting
  test monkeypatches and chaos hooks), pull unit batches over their pipe,
  and stream one result message back per unit;
* :class:`TcpTransport` / :class:`SocketLink` — length-prefixed JSON
  frames over TCP.  Worker *agents* (``repro-muzha worker --connect
  HOST:PORT``) — on other hosts, or extra local processes — dial the
  coordinator's listener, handshake (wire + cache-schema version check),
  and then speak the same batch/result protocol.  Agents may join *late*:
  the pool folds every new connection into its work-stealing dispatch, so
  a worker that appears mid-campaign immediately starts pulling units
  from the shared queue.  The coordinator can also self-spawn local
  agents (``agents``/``spawn_agents``), which is how ``--pool-mode
  cluster`` works out of the box on one machine.

Determinism is untouched by construction: transports move ``RunSpec``
payloads and result dicts; every seed was derived in ``plan_campaign``
before the first byte hits a pipe or socket, so *where* a unit runs is
invisible in the campaign fingerprint.

Wire format (TCP): every frame is a 4-byte big-endian length followed by
that many bytes of UTF-8 JSON.  JSON rather than pickle keeps the
protocol inspectable, language-agnostic and safe to expose on a LAN
listener — a malicious frame can at worst fail validation.  Specs cross
the wire via ``RunSpec.to_dict``/``from_dict``.

Messages (``kind`` discriminated):

* agent → coordinator: ``hello {host, pid, wire, schema}``; per-unit
  ``ok {index, metrics, manifest}`` / ``hit {…}`` (served from the shared
  cache store) / ``err {index, error}``;
* coordinator → agent: ``welcome {cache}`` or ``reject {reason}``;
  ``batch {units: [{index, spec, digest}]}``; ``stop {}``.

A shared :class:`~repro.experiments.cachestore.CacheStore` spec rides in
the welcome: agents check it before executing a unit, so shards that
already computed a digest (another campaign, another generation) answer
from the store instead of re-simulating.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .cachestore import CLUSTER_REGISTRY_DIRNAME, make_store
from .config import CACHE_SCHEMA_VERSION

PathLike = Union[str, Path]

#: Bump when the TCP frame shapes change incompatibly; agents and
#: coordinators refuse to pair across versions at handshake time.
WIRE_VERSION = 1

#: Hard ceiling on one frame, so a stray connection writing garbage into
#: the length prefix cannot make the coordinator allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Per-socket I/O timeout: a peer that stalls mid-frame longer than this
#: is treated as dead (the unit requeues; see the pool loop).
SOCKET_TIMEOUT = 30.0

#: How long the coordinator waits for a dialing agent's hello before
#: dropping the connection (liveness probes connect and send nothing).
HANDSHAKE_TIMEOUT = 2.0

#: Names of the transports (``Transport.name``).
TRANSPORTS = ("pipe", "tcp")


class TransportError(RuntimeError):
    """A transport link violated the wire protocol (treated as link death)."""


# ---------------------------------------------------------------------------
# TCP framing


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    sock.sendall(struct.pack(">I", len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed JSON frame; EOFError on a closed peer."""
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        message = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable frame: {exc}")
    if not isinstance(message, dict) or "kind" not in message:
        raise TransportError("frame is not a kind-discriminated object")
    return message


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with a clear error."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must be HOST:PORT, got {text!r}")
    return host, int(port)


# ---------------------------------------------------------------------------
# Worker links (what the pool loop holds per connected worker)


class WorkerLink:
    """One connected worker, whatever carries its bytes.

    The pool loop waits on :meth:`fileno`, hands out work with
    :meth:`send_batch`, folds :meth:`recv` messages, and distinguishes
    *remote* links (``remote=True``: a dead connection requeues its units
    un-charged — the work may still be fine, only the wire died) from
    local forked workers (a dead pipe means the process crashed on the
    unit it was executing, which is charged exactly as PR 5 did).
    """

    host: Optional[str] = None
    pid: Optional[int] = None
    remote: bool = False
    #: Whether ``pid`` names a process on *this* host (safe for /proc RSS).
    pid_is_local: bool = False

    def fileno(self) -> int:
        raise NotImplementedError

    def send_batch(self, units: Sequence[Tuple[int, Any, str]]) -> None:
        """Dispatch ``[(index, spec, digest), ...]`` to the worker."""
        raise NotImplementedError

    def recv(self) -> Tuple[Any, ...]:
        """Next result message: ``("ok"|"hit", index, metrics, manifest)``
        or ``("err", index, error)``.  Raises ``EOFError``/``OSError``/
        :class:`TransportError` when the link is dead."""
        raise NotImplementedError

    def reap(self) -> None:
        """Clean up after a link that died on its own (EOF observed)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Forcibly sever the link (watchdog timeout)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Orderly shutdown: tell the worker to exit, release resources."""
        raise NotImplementedError

    @property
    def exitcode(self) -> Optional[int]:
        return None

    def describe(self) -> str:
        return f"{type(self).__name__}(host={self.host}, pid={self.pid})"


# eq=False keeps identity hashing: the pool loop uses links as dict keys
# and in ``multiprocessing.connection.wait`` sets.
@dataclass(eq=False)
class PipeLink(WorkerLink):
    """A worker forked from the coordinator, attached by a duplex pipe."""

    process: Any = None
    conn: Any = None

    def __post_init__(self) -> None:
        self.host = None
        self.pid = self.process.pid if self.process is not None else None
        self.remote = False
        self.pid_is_local = True

    def fileno(self) -> int:
        return self.conn.fileno()

    def send_batch(self, units: Sequence[Tuple[int, Any, str]]) -> None:
        # The PR 5 pipe wire shape, unchanged: (index, spec) tuples.
        self.conn.send(("batch", [(index, spec) for index, spec, _ in units]))

    def recv(self) -> Tuple[Any, ...]:
        return self.conn.recv()

    def reap(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.process.join()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
            self.process.kill()
            self.process.join()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode


@dataclass(eq=False)
class SocketLink(WorkerLink):
    """A remote worker agent attached over TCP (length-prefixed JSON)."""

    sock: Any = None
    agent_host: Optional[str] = None
    agent_pid: Optional[int] = None
    local: bool = False

    def __post_init__(self) -> None:
        self.host = self.agent_host
        self.pid = self.agent_pid
        self.remote = True
        self.pid_is_local = self.local
        if self.sock is not None:
            self.sock.settimeout(SOCKET_TIMEOUT)

    def fileno(self) -> int:
        return self.sock.fileno()

    def send_batch(self, units: Sequence[Tuple[int, Any, str]]) -> None:
        send_frame(self.sock, {
            "kind": "batch",
            "units": [
                {"index": index, "spec": spec.to_dict(), "digest": digest}
                for index, spec, digest in units
            ],
        })

    def recv(self) -> Tuple[Any, ...]:
        try:
            message = recv_frame(self.sock)
        except socket.timeout:
            raise TransportError(
                f"agent {self.host}:{self.pid} stalled mid-frame "
                f"(> {SOCKET_TIMEOUT:g}s)"
            )
        kind = message.get("kind")
        if kind in ("ok", "hit"):
            return (kind, int(message["index"]), message["metrics"],
                    message.get("manifest"))
        if kind == "err":
            return ("err", int(message["index"]), str(message.get("error")))
        raise TransportError(f"unexpected frame kind {kind!r} from agent")

    def reap(self) -> None:
        self._close()

    def kill(self) -> None:
        self._close()

    def stop(self) -> None:
        try:
            send_frame(self.sock, {"kind": "stop"})
        except OSError:
            pass
        self._close()

    def _close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def describe(self) -> str:
        return f"agent {self.agent_host}:{self.agent_pid}"


# ---------------------------------------------------------------------------
# Transports (how the pool loop obtains links)


class Transport:
    """Factory/acceptor of :class:`WorkerLink` for one campaign's pool."""

    name: str = "?"
    #: Units handed to one worker per dispatch (the work-stealing grain).
    prefetch: int = 1
    #: Whether the pool may call :meth:`spawn` to add workers itself.
    can_spawn: bool = False

    def open(self) -> bool:
        """Make the transport ready; True iff this call transitioned it."""
        return False

    def spawn(self) -> Optional[WorkerLink]:
        """Start one worker.  Returns its link when it attaches
        synchronously (pipes), or None when it will join later through
        :meth:`accept` (TCP agents)."""
        raise NotImplementedError

    @property
    def pending_spawns(self) -> int:
        """Spawned workers that have not joined (and not died) yet."""
        return 0

    def accept(self) -> List[WorkerLink]:
        """Newly joined workers (non-blocking)."""
        return []

    @property
    def waitables(self) -> List[Any]:
        """Extra objects for the pool's ``connection.wait`` set."""
        return []

    def close(self) -> None:
        pass

    def info(self) -> Dict[str, Any]:
        """Plain-data description for the journal/telemetry."""
        return {"kind": self.name}


class PipeTransport(Transport):
    """The PR 5 local pool: fork workers, speak over duplex pipes.

    Forking from the coordinator is a feature, not an implementation
    detail: workers inherit monkeypatches (the robustness tests patch
    ``campaign._execute_unit``) and the chaos hooks' environment.
    """

    name = "pipe"
    can_spawn = True

    def __init__(self) -> None:
        from .campaign import WARM_BATCH_MAX

        self.prefetch = WARM_BATCH_MAX

    def open(self) -> bool:
        return False  # nothing to set up

    def spawn(self) -> Optional[WorkerLink]:
        from .campaign import _pool_context, _warm_worker_main

        ctx = _pool_context()
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_warm_worker_main, args=(child,), daemon=True
        )
        process.start()
        child.close()
        return PipeLink(process=process, conn=parent)


@dataclass
class _AgentProc:
    """One coordinator-spawned local worker agent subprocess."""

    proc: Any
    joined: bool = False


class TcpTransport(Transport):
    """Length-prefixed-JSON TCP transport with late-joining worker agents.

    ``listen`` is the ``(host, port)`` to bind (port 0 picks a free one;
    :attr:`endpoint` reports the bound address).  With ``spawn_agents``
    (the default) the pool keeps itself at strength by launching local
    ``repro-muzha worker`` subprocesses; with ``spawn_agents=False`` the
    coordinator only waits for external agents to dial in.  ``cache_spec``
    (a :meth:`~repro.experiments.cachestore.CacheStore.describe` string)
    is offered to agents in the welcome so every shard shares one store —
    note a plain directory path only makes sense for same-host agents;
    use an ``http://`` store (:class:`~repro.experiments.cachestore.
    CacheServer`) across hosts.

    ``registry`` names a directory (conventionally
    ``<cache>/.cluster``) where the transport records coordinator/worker
    liveness files; they are removed on a clean :meth:`close`, so
    leftovers are exactly what ``repro-muzha doctor`` hunts as stale
    cluster artifacts.
    """

    name = "tcp"
    #: Smaller than the pipe pool's batch cap: remote agents keep at most
    #: a couple of units in flight, so a dead connection strands little
    #: and slow agents cannot hoard the tail of a campaign.
    prefetch = 2

    def __init__(
        self,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        spawn_agents: bool = True,
        cache_spec: Optional[str] = None,
        registry: Optional[PathLike] = None,
    ) -> None:
        self._listen = listen
        self.can_spawn = spawn_agents
        self.cache_spec = cache_spec
        self.registry = Path(registry) if registry is not None else None
        self._listener: Optional[socket.socket] = None
        self._agents: List[_AgentProc] = []
        self._registered: List[Path] = []
        self._hostname = socket.gethostname()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def endpoint(self) -> Optional[str]:
        if self._listener is None:
            return None
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def open(self) -> bool:
        if self._listener is not None:
            return False
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._listen)
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener
        self._register("coordinator", self._hostname, os.getpid())
        return True

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        for agent in self._agents:
            if agent.proc.poll() is None:
                agent.proc.terminate()
        deadline = time.monotonic() + 2.0
        for agent in self._agents:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                agent.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                agent.proc.kill()
                agent.proc.wait()
        self._agents = []
        for path in self._registered:
            try:
                path.unlink()
            except OSError:
                pass
        self._registered = []

    def _register(self, kind: str, host: str, pid: int) -> None:
        if self.registry is None:
            return
        try:
            self.registry.mkdir(parents=True, exist_ok=True)
            path = self.registry / f"{kind}-{host}-{pid}.json"
            path.write_text(json.dumps({
                "kind": kind,
                "host": host,
                "pid": pid,
                "endpoint": self.endpoint,
                "started": time.time(),
            }, sort_keys=True) + "\n", encoding="utf-8")
            self._registered.append(path)
        except OSError:  # registry is best-effort observability
            pass

    # -- agent management --------------------------------------------------------

    #: Agents that exited without ever joining, tolerated before ``spawn``
    #: refuses: without the cap, a broken agent command (bad interpreter,
    #: import error) would be respawned forever and hang the campaign.
    MAX_FAILED_SPAWNS = 5

    def spawn(self) -> Optional[WorkerLink]:
        if not self.can_spawn:
            return None
        assert self.endpoint is not None, "open() the transport before spawn()"
        failed = sum(
            1 for a in self._agents
            if not a.joined and a.proc.poll() is not None
        )
        if failed >= self.MAX_FAILED_SPAWNS:
            raise TransportError(
                f"{failed} worker agents exited before joining "
                f"{self.endpoint}; refusing to keep spawning "
                "(is `repro-muzha worker` runnable on this host?)"
            )
        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--connect", self.endpoint, "--retry", "30"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self._agents.append(_AgentProc(proc=proc))
        return None  # joins asynchronously through accept()

    @property
    def pending_spawns(self) -> int:
        return sum(
            1 for a in self._agents
            if not a.joined and a.proc.poll() is None
        )

    # -- accepting joiners -------------------------------------------------------

    @property
    def waitables(self) -> List[Any]:
        return [self._listener] if self._listener is not None else []

    def accept(self) -> List[WorkerLink]:
        links: List[WorkerLink] = []
        if self._listener is None:
            return links
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                break
            except OSError:  # pragma: no cover - listener torn down
                break
            link = self._handshake(sock)
            if link is not None:
                links.append(link)
        return links

    def _handshake(self, sock: socket.socket) -> Optional[WorkerLink]:
        sock.settimeout(HANDSHAKE_TIMEOUT)
        try:
            hello = recv_frame(sock)
            if hello.get("kind") != "hello":
                raise TransportError(
                    f"expected hello, got {hello.get('kind')!r}"
                )
            if hello.get("wire") != WIRE_VERSION:
                send_frame(sock, {
                    "kind": "reject",
                    "reason": f"wire version {hello.get('wire')!r} != "
                              f"{WIRE_VERSION}",
                })
                raise TransportError("wire version mismatch")
            if hello.get("schema") != CACHE_SCHEMA_VERSION:
                send_frame(sock, {
                    "kind": "reject",
                    "reason": f"cache schema {hello.get('schema')!r} != "
                              f"{CACHE_SCHEMA_VERSION} (mixed builds share "
                              "no cache)",
                })
                raise TransportError("cache schema mismatch")
            send_frame(sock, {"kind": "welcome", "cache": self.cache_spec})
        except (EOFError, OSError, TransportError, socket.timeout, ValueError):
            # Not a worker (a liveness probe, a stray connect) or a
            # mismatched build: drop the connection, keep the campaign.
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return None
        host = str(hello.get("host") or "?")
        pid = int(hello.get("pid") or 0) or None
        local = host == self._hostname
        if local and pid is not None:
            for agent in self._agents:
                if agent.proc.pid == pid:
                    agent.joined = True
        self._register("worker", host, pid or 0)
        return SocketLink(sock=sock, agent_host=host, agent_pid=pid,
                          local=local)

    def info(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {"kind": self.name}
        if self.endpoint is not None:
            info["endpoint"] = self.endpoint
        return info


# ---------------------------------------------------------------------------
# Worker agent (the remote end of a SocketLink)


def _connect_with_retry(endpoint: str, retry: float) -> socket.socket:
    """Dial the coordinator, retrying for up to ``retry`` seconds.

    Retrying lets operators start agents before (or while) the
    coordinator binds its listener — the usual order on a cluster where
    agents are long-lived and campaigns come and go.
    """
    host, port = parse_endpoint(endpoint)
    deadline = time.monotonic() + retry
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(1.0, delay * 2)


def run_worker_agent(
    connect: str,
    cache: Optional[str] = None,
    retry: float = 10.0,
) -> int:
    """Main loop of ``repro-muzha worker --connect HOST:PORT``.

    Dials the coordinator, handshakes, then executes unit batches until a
    ``stop`` frame (clean exit 0) or the connection drops (also exit 0:
    the coordinator owns campaign lifecycle; a vanished coordinator is a
    finished or killed campaign, not an agent error).  Before executing a
    unit the agent checks the shared cache store — its own ``cache`` spec
    if given, else the one the coordinator offered — and answers ``hit``
    frames for digests another shard already computed.

    Execution routes through ``campaign._execute_unit``, so the
    :data:`~repro.experiments.campaign.CRASH_ONCE_ENV` and
    :data:`~repro.experiments.campaign.BARRIER_ENV` chaos hooks work on
    remote agents exactly as on forked workers.
    """
    from . import campaign
    from .runner import RunSpec

    try:
        sock = _connect_with_retry(connect, retry)
    except OSError as exc:
        print(f"worker: cannot reach coordinator {connect}: {exc}",
              file=sys.stderr)
        return 1
    sock.settimeout(None)  # agents block indefinitely waiting for work
    try:
        send_frame(sock, {
            "kind": "hello",
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "wire": WIRE_VERSION,
            "schema": CACHE_SCHEMA_VERSION,
        })
        welcome = recv_frame(sock)
        if welcome.get("kind") == "reject":
            print(f"worker: coordinator rejected us: {welcome.get('reason')}",
                  file=sys.stderr)
            return 1
        if welcome.get("kind") != "welcome":
            print(f"worker: bad handshake reply {welcome.get('kind')!r}",
                  file=sys.stderr)
            return 1
        store = make_store(cache if cache is not None
                           else welcome.get("cache"))
        while True:
            try:
                message = recv_frame(sock)
            except (EOFError, OSError, TransportError):
                return 0  # coordinator gone: campaign over
            kind = message.get("kind")
            if kind == "stop":
                return 0
            if kind != "batch":
                continue  # ignore unknown frames from newer coordinators
            for unit in message.get("units", ()):
                index = int(unit["index"])
                digest = unit.get("digest")
                reply: Dict[str, Any]
                payload = store.get(digest) if (store and digest) else None
                if payload is not None:
                    reply = {"kind": "hit", "index": index,
                             "metrics": payload["result"],
                             "manifest": payload.get("manifest")}
                else:
                    try:
                        spec = RunSpec.from_dict(unit["spec"])
                        _, metrics, manifest = campaign._execute_unit(
                            (index, spec)
                        )
                        reply = {"kind": "ok", "index": index,
                                 "metrics": metrics, "manifest": manifest}
                    except BaseException as exc:
                        reply = {"kind": "err", "index": index,
                                 "error": f"{type(exc).__name__}: {exc}"}
                try:
                    send_frame(sock, reply)
                except OSError:
                    return 0  # coordinator gone mid-batch
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


__all__ = [
    "CLUSTER_REGISTRY_DIRNAME",
    "HANDSHAKE_TIMEOUT",
    "MAX_FRAME_BYTES",
    "PipeLink",
    "PipeTransport",
    "SOCKET_TIMEOUT",
    "SocketLink",
    "TRANSPORTS",
    "TcpTransport",
    "Transport",
    "TransportError",
    "WIRE_VERSION",
    "WorkerLink",
    "parse_endpoint",
    "recv_frame",
    "run_worker_agent",
    "send_frame",
]
