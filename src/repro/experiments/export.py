"""CSV export/import of experiment artefacts.

Every figure generator returns plain data; these writers persist them in a
stable CSV schema so the results can be replotted outside Python (the
paper's figures are line charts — any spreadsheet or gnuplot can rebuild
them from these files).

The matching ``read_*`` loaders parse those same schemas back into the
generator's data structures — the golden-figure regression tests compare
freshly computed results against the committed CSVs through them.  Loaders
validate as they go and raise :class:`ExportError` naming the offending
file and line on any malformed row.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .figures import CoexistencePoint, SweepPoint, SweepResult

PathLike = Union[str, Path]


class ExportError(ValueError):
    """A CSV artefact does not conform to its schema."""


def _open_writer(path: PathLike):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _rows(path: PathLike, header: Sequence[str], columns: int):
    """Yield (line_number, row) for every data row, validating the shape."""
    path = Path(path)
    try:
        handle = path.open("r", newline="")
    except OSError as exc:
        raise ExportError(f"{path}: cannot read ({exc})") from exc
    with handle:
        reader = csv.reader(handle)
        try:
            first = next(reader)
        except StopIteration:
            raise ExportError(f"{path}: empty file, expected header {list(header)}")
        if first != list(header):
            raise ExportError(
                f"{path}: bad header {first!r}, expected {list(header)}"
            )
        for line, row in enumerate(reader, start=2):
            if not row:
                continue  # trailing blank line
            if len(row) != columns:
                raise ExportError(
                    f"{path}:{line}: expected {columns} columns, got {len(row)}"
                )
            yield line, row


def _number(path: PathLike, line: int, field: str, value: str, kind=float):
    try:
        return kind(value)
    except ValueError:
        raise ExportError(
            f"{path}:{line}: {field} is not a valid {kind.__name__}: {value!r}"
        ) from None


def export_sweep_csv(sweep: SweepResult, path: PathLike) -> Path:
    """Figs 5.8–5.13 grid: one row per (hops, variant) point."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["window", "hops", "variant", "goodput_kbps", "goodput_stdev",
             "retransmits", "timeouts", "samples"]
        )
        for variant in sweep.variants:
            for hops in sweep.hops:
                point = sweep.points[(variant, hops)]
                writer.writerow(
                    [sweep.window, hops, variant,
                     f"{point.goodput_kbps:.3f}", f"{point.goodput_stdev:.3f}",
                     f"{point.retransmits:.3f}", f"{point.timeouts:.3f}",
                     point.samples]
                )
    return target


def export_series_csv(
    series: Sequence[Tuple[float, float]],
    path: PathLike,
    x_label: str = "time_s",
    y_label: str = "value",
) -> Path:
    """A single (x, y) series — cwnd traces, throughput dynamics, …"""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, y_label])
        for x, y in series:
            writer.writerow([f"{x:.6f}", f"{y:.6f}"])
    return target


def export_multi_series_csv(
    series_by_name: Dict[str, Sequence[Tuple[float, float]]],
    path: PathLike,
    x_label: str = "time_s",
) -> Path:
    """Several named series in long form: (name, x, y) rows."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, "value"])
        for name, series in series_by_name.items():
            for x, y in series:
                writer.writerow([name, f"{x:.6f}", f"{y:.6f}"])
    return target


def export_coexistence_csv(
    points: Iterable[CoexistencePoint],
    label_a: str,
    label_b: str,
    path: PathLike,
) -> Path:
    """Figs 5.16–5.18 rows."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["hops", "variant_a", "goodput_a_kbps", "variant_b",
             "goodput_b_kbps", "jain_index"]
        )
        for point in points:
            writer.writerow(
                [point.hops, label_a, f"{point.goodput_a_kbps:.3f}",
                 label_b, f"{point.goodput_b_kbps:.3f}", f"{point.fairness:.4f}"]
            )
    return target


def export_campaign_csv(result, path: PathLike) -> Path:
    """One row per campaign run: identity, seed, cache state, headline
    metrics.  ``result`` is a :class:`repro.experiments.campaign.CampaignResult`."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["scenario", "replication", "kind", "hops", "variants", "seed",
             "cached", "goodput_kbps", "retransmits", "timeouts"]
        )
        for record in result.records:
            run = record.run
            res = record.result
            writer.writerow(
                [run.scenario[:12], run.replication, run.spec.kind,
                 run.spec.hops, "+".join(run.spec.variants), run.seed,
                 int(record.cached), f"{res.total_goodput_kbps:.3f}",
                 sum(f.retransmits for f in res.flows),
                 sum(f.timeouts for f in res.flows)]
            )
    return target


# ---------------------------------------------------------------------------
# Readers — inverse of the writers above, schema-validated


SWEEP_HEADER = ["window", "hops", "variant", "goodput_kbps", "goodput_stdev",
                "retransmits", "timeouts", "samples"]


def read_sweep_csv(path: PathLike) -> SweepResult:
    """Parse a file written by :func:`export_sweep_csv` back to a
    :class:`SweepResult` (hops/variants ordered by first appearance)."""
    window: int = 0
    hops_order: List[int] = []
    variant_order: List[str] = []
    points: Dict[Tuple[str, int], SweepPoint] = {}
    for line, row in _rows(path, SWEEP_HEADER, len(SWEEP_HEADER)):
        row_window = _number(path, line, "window", row[0], int)
        if not points:
            window = row_window
        elif row_window != window:
            raise ExportError(
                f"{path}:{line}: mixed windows {window} and {row_window}"
            )
        hops = _number(path, line, "hops", row[1], int)
        variant = row[2]
        if variant not in variant_order:
            variant_order.append(variant)
        if hops not in hops_order:
            hops_order.append(hops)
        points[(variant, hops)] = SweepPoint(
            goodput_kbps=_number(path, line, "goodput_kbps", row[3]),
            goodput_stdev=_number(path, line, "goodput_stdev", row[4]),
            retransmits=_number(path, line, "retransmits", row[5]),
            timeouts=_number(path, line, "timeouts", row[6]),
            samples=_number(path, line, "samples", row[7], int),
        )
    if not points:
        raise ExportError(f"{path}: no data rows")
    return SweepResult(
        window=window, hops=tuple(sorted(hops_order)),
        variants=tuple(variant_order), points=points,
    )


def read_series_csv(path: PathLike) -> List[Tuple[float, float]]:
    """Parse a file written by :func:`export_series_csv` (any column
    labels, two numeric columns)."""
    path = Path(path)
    series: List[Tuple[float, float]] = []
    try:
        handle = path.open("r", newline="")
    except OSError as exc:
        raise ExportError(f"{path}: cannot read ({exc})") from exc
    with handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ExportError(f"{path}: empty file, expected a 2-column header")
        if len(header) != 2:
            raise ExportError(f"{path}: expected a 2-column header, got {header!r}")
        for line, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise ExportError(
                    f"{path}:{line}: expected 2 columns, got {len(row)}"
                )
            series.append(
                (_number(path, line, header[0], row[0]),
                 _number(path, line, header[1], row[1]))
            )
    return series


def read_multi_series_csv(path: PathLike) -> Dict[str, List[Tuple[float, float]]]:
    """Parse a file written by :func:`export_multi_series_csv` back into
    per-name series (insertion-ordered)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for line, row in _rows(path, ["series", "time_s", "value"], 3):
        series.setdefault(row[0], []).append(
            (_number(path, line, "time_s", row[1]),
             _number(path, line, "value", row[2]))
        )
    if not series:
        raise ExportError(f"{path}: no data rows")
    return series


def read_coexistence_csv(path: PathLike) -> Tuple[str, str, List[CoexistencePoint]]:
    """Parse a file written by :func:`export_coexistence_csv`; returns
    ``(label_a, label_b, points)``."""
    header = ["hops", "variant_a", "goodput_a_kbps", "variant_b",
              "goodput_b_kbps", "jain_index"]
    label_a = label_b = ""
    points: List[CoexistencePoint] = []
    for line, row in _rows(path, header, len(header)):
        if not points:
            label_a, label_b = row[1], row[3]
        elif (row[1], row[3]) != (label_a, label_b):
            raise ExportError(
                f"{path}:{line}: inconsistent variant labels "
                f"({row[1]!r}, {row[3]!r}) vs ({label_a!r}, {label_b!r})"
            )
        points.append(
            CoexistencePoint(
                hops=_number(path, line, "hops", row[0], int),
                goodput_a_kbps=_number(path, line, "goodput_a_kbps", row[2]),
                goodput_b_kbps=_number(path, line, "goodput_b_kbps", row[4]),
                fairness=_number(path, line, "jain_index", row[5]),
            )
        )
    if not points:
        raise ExportError(f"{path}: no data rows")
    return label_a, label_b, points
