"""CSV export of experiment artefacts.

Every figure generator returns plain data; these writers persist them in a
stable CSV schema so the results can be replotted outside Python (the
paper's figures are line charts — any spreadsheet or gnuplot can rebuild
them from these files).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .figures import CoexistencePoint, SweepResult

PathLike = Union[str, Path]


def _open_writer(path: PathLike):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def export_sweep_csv(sweep: SweepResult, path: PathLike) -> Path:
    """Figs 5.8–5.13 grid: one row per (hops, variant) point."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["window", "hops", "variant", "goodput_kbps", "goodput_stdev",
             "retransmits", "timeouts", "samples"]
        )
        for variant in sweep.variants:
            for hops in sweep.hops:
                point = sweep.points[(variant, hops)]
                writer.writerow(
                    [sweep.window, hops, variant,
                     f"{point.goodput_kbps:.3f}", f"{point.goodput_stdev:.3f}",
                     f"{point.retransmits:.3f}", f"{point.timeouts:.3f}",
                     point.samples]
                )
    return target


def export_series_csv(
    series: Sequence[Tuple[float, float]],
    path: PathLike,
    x_label: str = "time_s",
    y_label: str = "value",
) -> Path:
    """A single (x, y) series — cwnd traces, throughput dynamics, …"""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label, y_label])
        for x, y in series:
            writer.writerow([f"{x:.6f}", f"{y:.6f}"])
    return target


def export_multi_series_csv(
    series_by_name: Dict[str, Sequence[Tuple[float, float]]],
    path: PathLike,
    x_label: str = "time_s",
) -> Path:
    """Several named series in long form: (name, x, y) rows."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, "value"])
        for name, series in series_by_name.items():
            for x, y in series:
                writer.writerow([name, f"{x:.6f}", f"{y:.6f}"])
    return target


def export_coexistence_csv(
    points: Iterable[CoexistencePoint],
    label_a: str,
    label_b: str,
    path: PathLike,
) -> Path:
    """Figs 5.16–5.18 rows."""
    target = _open_writer(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["hops", "variant_a", "goodput_a_kbps", "variant_b",
             "goodput_b_kbps", "jain_index"]
        )
        for point in points:
            writer.writerow(
                [point.hops, label_a, f"{point.goodput_a_kbps:.3f}",
                 label_b, f"{point.goodput_b_kbps:.3f}", f"{point.fairness:.4f}"]
            )
    return target
