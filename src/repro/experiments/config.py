"""Experiment configuration: the paper's Table 5.1 parameters plus the
switches the figure generators expose."""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.drai import DraiParams
from ..faults import FaultPlan
# Canonical home of the content digest is the provenance module (manifests
# and the campaign cache must agree on it); re-exported here for callers.
from ..obs.provenance import stable_digest  # noqa: F401
from ..sim import units

#: Environment variable: when set to "1", benchmarks run paper-scale
#: configurations (30–50 s simulations, full hop sweeps, more seeds).
FULL_ENV_VAR = "REPRO_FULL"

#: Bump whenever a change to the simulator makes previously cached campaign
#: results stale (the campaign cache folds this into every content hash).
#: v2: cache entries became ``{"result": ..., "manifest": ...}`` envelopes.
#: v3: checksummed envelopes (corruption detection) + fault-plan configs.
#: v4: router-advice policy selection in configs + per-state DRAI metrics.
#: v5: vectorized PHY batch lane + error-model fast paths; the
#:     Gilbert–Elliott initial-state fix (the chain now really starts GOOD
#:     at t=0) makes pre-v5 cached results of GE-medium runs stale.
#:     ``phy_lane`` itself is *excluded* from config digests — lanes are
#:     result-invariant, so cache entries are shared across them.
CACHE_SCHEMA_VERSION = 5


def full_scale() -> bool:
    """Whether paper-scale benchmark configurations were requested."""
    return os.environ.get(FULL_ENV_VAR, "0") == "1"


@dataclass(frozen=True)
class Table51Parameters:
    """The paper's Table 5.1, as executable configuration."""

    number_of_nodes: Tuple[int, int] = (4, 32)  # range swept (hops h -> h+1)
    link_bandwidth_bps: float = units.mbps(2.0)
    transmission_range_m: float = 250.0
    mac: str = "802.11"
    routing: str = "AODV"
    ifq_capacity: int = 50
    packet_size_bytes: int = 1460

    def rows(self) -> list:
        """(parameter, value) rows, printable next to the paper's table."""
        return [
            ("Number of Nodes", f"{self.number_of_nodes[0]}~{self.number_of_nodes[1]}"),
            ("Link Bandwidth", f"{self.link_bandwidth_bps / 1e6:g}Mbps"),
            ("Transmission Range", f"{self.transmission_range_m:g} m"),
            ("MAC", self.mac),
            ("Routing", self.routing),
        ]


@dataclass
class ScenarioConfig:
    """Common knobs of every experiment run."""

    sim_time: float = 30.0
    seed: int = 1
    routing: str = "aodv"  # "aodv" | "static"
    window: int = 8
    mss: int = 1460
    ifq_capacity: int = 50
    drai_params: Optional[DraiParams] = None
    #: Router-advice policy name (``repro.core.policy`` registry); None =
    #: the paper's fuzzy quantiser, byte-identical to the pre-policy runs.
    policy: Optional[str] = None
    #: JSON-safe parameters for ``policy`` (the policy's params dataclass
    #: as a dict); None = the policy's defaults.
    policy_params: Optional[Dict[str, Any]] = None
    #: Per-frame random loss probability (0 = the paper's clean-medium runs).
    packet_error_rate: float = 0.0
    #: PHY fan-out execution lane: ``auto`` (batch when numpy is importable,
    #: scalar otherwise; honours the ``REPRO_PHY_LANE`` env override),
    #: ``batch`` (vectorized; requires numpy) or ``scalar`` (the reference
    #: path).  Lanes are byte-identical by contract — this knob trades
    #: speed, never results.
    phy_lane: str = "auto"
    #: Sampling period for throughput-dynamics series.
    sampler_interval: float = 1.0
    #: Fault-injection plan (crashes/blackouts/...); None = undisturbed run.
    faults: Optional[FaultPlan] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe), suitable for hashing and pickling.

        ``phy_lane`` is deliberately omitted: it is an execution knob, not
        an experiment parameter — lanes are byte-identical by contract, so
        config digests, derived run seeds and campaign cache keys must not
        depend on it (a result cached under one lane is the *same* result
        under the other).
        """
        payload = dataclasses.asdict(self)
        del payload["phy_lane"]
        if self.drai_params is not None:
            payload["drai_params"] = dataclasses.asdict(self.drai_params)
        # asdict() recurses into the plan's nested dataclasses but loses the
        # None-field elision FaultPlan.to_dict guarantees; use the canonical
        # form so config digests stay stable.
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioConfig":
        data = dict(payload)
        drai = data.get("drai_params")
        if drai is not None:
            data["drai_params"] = DraiParams(**drai)
        faults = data.get("faults")
        if faults is not None:
            data["faults"] = FaultPlan.from_dict(faults)
        return cls(**data)

    def replace(self, **changes: Any) -> "ScenarioConfig":
        """A copy with ``changes`` applied (config objects are shared)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SweepConfig:
    """Hop/seed grids for the Figure 5.8–5.13 sweeps."""

    hops: Sequence[int] = (4, 8, 16, 32)
    seeds: Sequence[int] = (1, 2, 3)
    sim_time: float = 30.0

    @staticmethod
    def for_scale(full: Optional[bool] = None) -> "SweepConfig":
        """Quick grid by default; paper-scale when REPRO_FULL=1."""
        if full is None:
            full = full_scale()
        if full:
            return SweepConfig(hops=(4, 8, 12, 16, 24, 32), seeds=(1, 2, 3, 4, 5), sim_time=30.0)
        return SweepConfig(hops=(4, 8, 16), seeds=(1, 2, 3), sim_time=15.0)


#: The four protocols the paper compares (Muzha + three baselines).
PAPER_VARIANTS: Tuple[str, ...] = ("muzha", "newreno", "sack", "vegas")
