"""Text rendering of experiment results: aligned tables and ASCII charts.

The benchmark harness prints these so ``pytest benchmarks/ --benchmark-only``
regenerates, in text form, the same rows/series the paper's figures plot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .figures import CoexistencePoint, SweepResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep(result: SweepResult, metric: str = "goodput") -> str:
    """Figs 5.8–5.13 as a table: one row per hop count, one column per
    variant.  ``metric`` is "goodput" (kbps) or "retransmits"."""
    headers = ["hops"] + list(result.variants)
    rows: List[List[object]] = []
    for hops in result.hops:
        row: List[object] = [hops]
        for variant in result.variants:
            point = result.points[(variant, hops)]
            if metric == "goodput":
                row.append(f"{point.goodput_kbps:8.1f}")
            elif metric == "retransmits":
                row.append(f"{point.retransmits:8.1f}")
            else:
                raise ValueError(f"unknown metric {metric!r}")
        rows.append(row)
    unit = "kbps" if metric == "goodput" else "count"
    title = f"window_={result.window}  ({metric}, {unit})"
    return format_table(headers, rows, title=title)


def format_coexistence(
    points: Sequence[CoexistencePoint], label_a: str, label_b: str
) -> str:
    """Figs 5.16–5.18 as a table."""
    headers = ["hops", f"{label_a} (kbps)", f"{label_b} (kbps)", "Jain index"]
    rows = [
        [p.hops, f"{p.goodput_a_kbps:8.1f}", f"{p.goodput_b_kbps:8.1f}", f"{p.fairness:.3f}"]
        for p in points
    ]
    return format_table(headers, rows, title=f"{label_a} vs {label_b} on h-hop cross")


def ascii_series(
    series: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 12,
    label: str = "",
) -> str:
    """Tiny ASCII line chart of an (x, y) series (for examples / benches)."""
    if not series:
        return f"{label}: (no data)"
    xs = [x for x, _ in series]
    ys = [y for _, y in series]
    y_max = max(ys) or 1.0
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in series:
        col = int((x - x_min) / span * (width - 1))
        row = int((1.0 - y / y_max) * (height - 1))
        grid[row][col] = "*"
    lines = [f"{label}  (max={y_max:.1f})"] if label else []
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_min:.1f} .. {x_max:.1f}")
    return "\n".join(lines)


def format_traces_summary(
    traces: Dict[str, List[Tuple[float, float]]], sim_time: float
) -> str:
    """Figs 5.2–5.7 summary: per-variant cwnd statistics and chart."""
    from ..stats.timeseries import time_average

    blocks: List[str] = []
    headers = ["variant", "mean cwnd", "max cwnd", "changes"]
    rows = []
    for variant, trace in traces.items():
        mean = time_average(trace, 0.0, sim_time)
        peak = max(v for _, v in trace)
        rows.append([variant, f"{mean:6.2f}", f"{peak:6.1f}", len(trace)])
    blocks.append(format_table(headers, rows, title="cwnd summary"))
    for variant, trace in traces.items():
        blocks.append(ascii_series(trace, label=f"cwnd: {variant}"))
    return "\n\n".join(blocks)
