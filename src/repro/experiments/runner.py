"""Scenario runners: build a network, attach flows, run, collect results.

Three scenario shapes cover every figure in the paper:

* :func:`run_chain` — h-hop chain, one or more (possibly staggered) flows
  end-to-end (Simulations 1, 2 and 3B);
* :func:`run_cross` — h-hop cross with one horizontal and one vertical flow
  (Simulation 3A);
* both return a :class:`RunResult` with per-flow goodput, retransmission
  counts, cwnd traces and optional throughput-dynamics series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.drai import DraiEstimator, install_drai
from ..phy.error_models import NoError, PacketErrorRate
from ..routing import install_aodv_routing, install_static_routing
from ..stats.fairness import jain_index
from ..stats.throughput import ThroughputSampler
from ..topology import Network, build_chain, build_cross
from ..traffic import FtpFlow, start_ftp
from .config import ScenarioConfig


@dataclass
class FlowResult:
    """Outcome of one flow."""

    variant: str
    goodput_kbps: float
    delivered_packets: int
    data_sent: int
    retransmits: int
    timeouts: int
    fast_retransmits: int
    start_time: float
    cwnd_trace: List[Tuple[float, float]]
    rate_series_kbps: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class RunResult:
    """Outcome of one scenario run."""

    flows: List[FlowResult]
    sim_time: float
    mac_drops: int
    link_failures: int

    @property
    def total_goodput_kbps(self) -> float:
        return sum(flow.goodput_kbps for flow in self.flows)

    @property
    def fairness(self) -> float:
        """Jain index over the flows' goodputs (Fig. 5.14)."""
        return jain_index([flow.goodput_kbps for flow in self.flows])


def _needs_drai(variants: Sequence[str]) -> bool:
    return any(v.startswith("muzha") for v in variants)


def _install_routing(network: Network, config: ScenarioConfig) -> None:
    if config.routing == "aodv":
        install_aodv_routing(network.nodes, network.sim)
    elif config.routing == "static":
        install_static_routing(network.nodes, network.channel)
    else:
        raise ValueError(f"unknown routing {config.routing!r}")


def _error_model(config: ScenarioConfig):
    if config.packet_error_rate > 0:
        return PacketErrorRate(config.packet_error_rate)
    return NoError()


def _finish(
    network: Network,
    flows: List[FtpFlow],
    samplers: List[Optional[ThroughputSampler]],
    config: ScenarioConfig,
) -> RunResult:
    network.sim.run(until=config.sim_time)
    results: List[FlowResult] = []
    for flow, sampler in zip(flows, samplers):
        active = max(config.sim_time - flow.start_time, 1e-9)
        results.append(
            FlowResult(
                variant=flow.variant,
                goodput_kbps=flow.goodput_kbps(active),
                delivered_packets=flow.sink.delivered_packets,
                data_sent=flow.sender.stats.data_sent,
                retransmits=flow.sender.stats.retransmits,
                timeouts=flow.sender.stats.timeouts,
                fast_retransmits=flow.sender.stats.fast_retransmits,
                start_time=flow.start_time,
                cwnd_trace=list(flow.sender.cwnd_trace),
                rate_series_kbps=sampler.rates_kbps() if sampler else [],
            )
        )
    mac_drops = sum(n.mac.counters.drops_retry_limit for n in network.nodes)
    link_failures = sum(
        n.routing.counters.link_failures for n in network.nodes if n.routing
    )
    return RunResult(
        flows=results,
        sim_time=config.sim_time,
        mac_drops=mac_drops,
        link_failures=link_failures,
    )


def run_chain(
    hops: int,
    variants: Sequence[str],
    config: Optional[ScenarioConfig] = None,
    starts: Optional[Sequence[float]] = None,
    record_dynamics: bool = False,
) -> RunResult:
    """Run ``len(variants)`` end-to-end flows over an h-hop chain.

    Flow ``i`` uses ``variants[i]``, starts at ``starts[i]`` (default 0) and
    runs node 0 -> node h on its own port pair.
    """
    config = config or ScenarioConfig()
    starts = list(starts or [0.0] * len(variants))
    if len(starts) != len(variants):
        raise ValueError("starts and variants must have equal length")
    network = build_chain(
        hops,
        seed=config.seed,
        error_model=_error_model(config),
        ifq_capacity=config.ifq_capacity,
    )
    _install_routing(network, config)
    if _needs_drai(variants):
        install_drai(network.nodes, network.sim, params=config.drai_params)
    src, dst = network.nodes[0], network.nodes[-1]
    flows: List[FtpFlow] = []
    samplers: List[Optional[ThroughputSampler]] = []
    for i, (variant, start) in enumerate(zip(variants, starts)):
        flow = start_ftp(
            network.sim,
            src,
            dst,
            variant=variant,
            window=config.window,
            mss=config.mss,
            sport=1000 + i,
            dport=2000 + i,
            start_time=start,
        )
        flows.append(flow)
        if record_dynamics:
            sampler = ThroughputSampler(
                network.sim, flow.sink, interval=config.sampler_interval
            )
            network.sim.at(start, sampler.start)
            samplers.append(sampler)
        else:
            samplers.append(None)
    return _finish(network, flows, samplers, config)


def run_cross(
    hops: int,
    variant_horizontal: str,
    variant_vertical: str,
    config: Optional[ScenarioConfig] = None,
    record_dynamics: bool = False,
) -> RunResult:
    """Run the Fig. 5.15 cross: one flow left->right, one top->bottom."""
    config = config or ScenarioConfig()
    network = build_cross(
        hops,
        seed=config.seed,
        error_model=_error_model(config),
        ifq_capacity=config.ifq_capacity,
    )
    _install_routing(network, config)
    variants = (variant_horizontal, variant_vertical)
    if _needs_drai(variants):
        install_drai(network.nodes, network.sim, params=config.drai_params)
    endpoints = [
        (network.left, network.right),
        (network.top, network.bottom),
    ]
    flows: List[FtpFlow] = []
    samplers: List[Optional[ThroughputSampler]] = []
    for i, (variant, (src, dst)) in enumerate(zip(variants, endpoints)):
        flow = start_ftp(
            network.sim,
            src,
            dst,
            variant=variant,
            window=config.window,
            mss=config.mss,
            sport=1000 + i,
            dport=2000 + i,
        )
        flows.append(flow)
        if record_dynamics:
            sampler = ThroughputSampler(
                network.sim, flow.sink, interval=config.sampler_interval
            ).start()
            samplers.append(sampler)
        else:
            samplers.append(None)
    return _finish(network, flows, samplers, config)
